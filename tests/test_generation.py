"""Tests for the automated generation + validation loop (extension)."""

import pytest

from repro.compiler.driver import Compiler
from repro.generation.builder import AutomatedSuiteBuilder
from repro.generation.model import (
    DEFAULT_DEFECT_RATES,
    CandidateTest,
    CodeGenSim,
    GenerationDefect,
)
from repro.runtime.executor import Executor


class TestCodeGenSim:
    def test_deterministic(self):
        a = CodeGenSim(flavor="acc", seed=1).generate("acc.reduction.add")
        b = CodeGenSim(flavor="acc", seed=1).generate("acc.reduction.add")
        assert a.test.source == b.test.source
        assert a.defect == b.defect

    def test_invalid_flavor(self):
        with pytest.raises(ValueError):
            CodeGenSim(flavor="cuda")

    def test_prompt_mentions_feature(self):
        gen = CodeGenSim(flavor="omp", seed=2)
        candidate = gen.generate("omp.reduction.add")
        assert "omp.reduction.add" in candidate.prompt
        assert "OpenMP" in candidate.prompt

    def test_feature_matching_template_preferred(self):
        gen = CodeGenSim(flavor="acc", seed=3)
        hits = 0
        for _ in range(10):
            candidate = gen.generate("acc.reduction.add")
            if "acc.reduction.add" in candidate.test.features:
                hits += 1
        assert hits >= 8  # only falls back when the rng picks oddly

    def test_clean_candidates_compile_and_pass(self):
        gen = CodeGenSim(flavor="acc", seed=4, defect_rates={})
        compiler = Compiler(model="acc")
        executor = Executor()
        for _ in range(6):
            candidate = gen.generate("acc.parallel-loop")
            assert candidate.defect is GenerationDefect.NONE
            compiled = compiler.compile(candidate.test.source, candidate.test.name)
            assert compiled.ok, compiled.stderr
            assert executor.run(compiled).returncode == 0

    def test_defect_mix_approximates_rates(self):
        gen = CodeGenSim(flavor="acc", seed=5)
        defects = [gen.generate("acc.parallel-loop").defect for _ in range(300)]
        clean = sum(1 for d in defects if d is GenerationDefect.NONE)
        expected_clean = 1.0 - sum(DEFAULT_DEFECT_RATES.values())
        assert abs(clean / 300 - expected_clean) < 0.1

    def test_compile_defects_fail_compilation(self):
        gen = CodeGenSim(
            flavor="acc", seed=6,
            defect_rates={GenerationDefect.COMPILE_SYNTAX: 1.0},
        )
        compiler = Compiler(model="acc")
        failures = 0
        for _ in range(8):
            candidate = gen.generate("acc.parallel-loop")
            if not compiler.compile(candidate.test.source, "c.c").ok:
                failures += 1
        assert failures >= 6

    def test_runtime_defects_compile_but_fail(self):
        gen = CodeGenSim(
            flavor="acc", seed=7,
            defect_rates={GenerationDefect.RUNTIME: 1.0},
        )
        compiler = Compiler(model="acc")
        executor = Executor()
        nonzero = 0
        for _ in range(8):
            candidate = gen.generate("acc.parallel-loop")
            compiled = compiler.compile(candidate.test.source, "c.c")
            if compiled.ok and executor.run(compiled).returncode != 0:
                nonzero += 1
        assert nonzero >= 5

    def test_missing_verification_runs_clean(self):
        gen = CodeGenSim(
            flavor="acc", seed=8,
            defect_rates={GenerationDefect.MISSING_VERIFICATION: 1.0},
        )
        compiler = Compiler(model="acc")
        executor = Executor()
        candidate = gen.generate("acc.parallel-loop")
        compiled = compiler.compile(candidate.test.source, "c.c")
        assert compiled.ok
        assert executor.run(compiled).returncode == 0
        assert not candidate.truly_valid


class TestAutomatedBuilder:
    @pytest.fixture(scope="class")
    def report(self):
        builder = AutomatedSuiteBuilder(flavor="acc", seed=9, candidates_per_feature=1)
        features = [
            "acc.parallel-loop", "acc.reduction.add", "acc.data.copy",
            "acc.atomic", "acc.update", "acc.enter-exit-data",
            "acc.private", "acc.kernels", "acc.if-clause", "acc.loop.collapse",
        ]
        return builder.build(features)

    def test_yield_reasonable(self, report):
        # ~66% of candidates are clean; the pipeline should accept most
        # of those and reject most defective ones
        assert 0.3 < report.yield_fraction <= 1.0

    def test_compile_defects_rejected_at_compile_stage(self, report):
        if report.rejected_by_stage:
            assert set(report.rejected_by_stage) <= {"compile", "execute", "judge"}

    def test_accepted_tests_mostly_clean(self, report):
        assert report.false_accepts <= max(2, report.candidates_total // 3)

    def test_suite_and_coverage(self, report):
        suite = report.suite("auto")
        assert len(suite) == len(report.accepted)
        coverage = report.coverage()
        assert coverage.tests_total == len(report.accepted)

    def test_render(self, report):
        text = report.render()
        assert "candidates accepted" in text
        assert "Feature coverage" in text
