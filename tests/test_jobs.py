"""The durable job queue: journal, recovery, HTTP API, SIGTERM drain.

Three layers:

* :class:`JobSpec` — submission-time validation (bad specs are HTTP
  400, never a queued job that fails later);
* :class:`JobManager` driven directly — journal writes, the state
  machine, restart recovery from a hand-built journal;
* the daemon as a real subprocess — SIGTERM runs "checkpoint then
  drain" (the job journals as ``checkpointed`` with a resumable work
  dir), a restart finishes the job to the same digest an uninterrupted
  run produces, and ``kill -9`` mid-drain loses nothing either.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.jobs import JobManager
from repro.service.protocol import JobSpec, ProtocolError
from repro.service.server import make_server
from repro.testing import faultinject

REPO_ROOT = Path(__file__).resolve().parents[1]

#: the campaign every job test runs: small, deterministic, judge-free
TINY_CAMPAIGN = CampaignConfig(
    seed=5, rounds=1, batch_size=4, seed_count=3,
    workers=1, judge_workers=1, triage="off",
)

#: a longer variant for the SIGTERM tests (must span several rounds so
#: the signal provably lands mid-run)
SLOW_CAMPAIGN = CampaignConfig(
    seed=5, rounds=4, batch_size=4, seed_count=3,
    workers=1, judge_workers=1, triage="off",
)


@pytest.fixture(autouse=True)
def _disarm_faults():
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.fixture(scope="module")
def tiny_digest() -> str:
    return Campaign(TINY_CAMPAIGN).run().digest()


@pytest.fixture(scope="module")
def slow_digest() -> str:
    return Campaign(SLOW_CAMPAIGN).run().digest()


def wait_until(predicate, timeout: float = 120.0, interval: float = 0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError("condition not reached")


# ----------------------------------------------------------------------
# JobSpec validation
# ----------------------------------------------------------------------


class TestJobSpec:
    def test_campaign_spec_roundtrip(self):
        spec = JobSpec.from_dict(
            {"kind": "campaign", "spec": TINY_CAMPAIGN.to_json()}
        )
        assert spec.kind == "campaign"
        assert CampaignConfig.from_json(spec.spec_dict()) == TINY_CAMPAIGN
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_experiment_spec_accepted(self):
        spec = JobSpec.from_dict(
            {"kind": "experiment",
             "spec": {"scale": "tiny", "artifacts": ["table3"]}}
        )
        assert spec.spec_dict()["artifacts"] == ["table3"]

    @pytest.mark.parametrize(
        "body",
        [
            "not a dict",
            {},
            {"kind": "bake-bread"},
            {"kind": "campaign", "spec": "nope"},
            {"kind": "campaign", "spec": {"batch_size": 0}},
            {"kind": "campaign", "spec": {"triage": "sometimes"}},
            {"kind": "experiment", "spec": {"scale": "galactic"}},
            {"kind": "experiment", "spec": {"artifacts": ["table99"]}},
        ],
    )
    def test_bad_specs_rejected_at_submission(self, body):
        with pytest.raises(ProtocolError):
            JobSpec.from_dict(body)


# ----------------------------------------------------------------------
# JobManager directly
# ----------------------------------------------------------------------


class TestJobManager:
    def test_submit_run_journal_and_artifacts(self, tmp_path, tiny_digest):
        manager = JobManager(tmp_path)
        manager.start()
        try:
            record = manager.submit("campaign", TINY_CAMPAIGN.to_json())
            assert record.id == "job-0001"
            assert record.state == "queued"
            done = wait_until(
                lambda: manager.get(record.id).state in ("done", "failed")
                and manager.get(record.id)
            )
            assert done.state == "done", done.error
            assert done.history == ["queued", "running", "done"]
            assert done.result["digest"] == tiny_digest

            journal = json.loads(
                (tmp_path / "job-0001" / "job.json").read_text()
            )
            assert journal["state"] == "done"
            assert journal["result"]["digest"] == tiny_digest

            artifacts = manager.artifacts(record.id)
            names = {entry["path"] for entry in artifacts["files"]}
            assert "campaign.json" in names
            assert "checkpoint.json" in names
        finally:
            assert manager.checkpoint_and_stop(timeout=30.0)

    def test_invalid_spec_becomes_failed_not_a_crash(self, tmp_path):
        manager = JobManager(tmp_path)
        manager.start()
        try:
            record = manager.submit("campaign", {"batch_size": 0})
            done = wait_until(
                lambda: manager.get(record.id).state in ("done", "failed")
                and manager.get(record.id)
            )
            assert done.state == "failed"
            assert "batch_size" in done.error
        finally:
            manager.checkpoint_and_stop(timeout=30.0)

    def test_get_unknown_job_raises(self, tmp_path):
        with pytest.raises(KeyError):
            JobManager(tmp_path).get("job-9999")

    def _write_journal(self, tmp_path, job_id: str, state: str) -> None:
        job_dir = tmp_path / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        (job_dir / "job.json").write_text(json.dumps({
            "id": job_id,
            "kind": "campaign",
            "spec": TINY_CAMPAIGN.to_json(),
            "state": state,
            "history": ["queued", state] if state != "queued" else ["queued"],
        }))

    def test_recovery_running_without_work_requeues(self, tmp_path, tiny_digest):
        self._write_journal(tmp_path, "job-0001", "running")
        manager = JobManager(tmp_path)
        record = manager.get("job-0001")
        assert record.state == "queued"
        assert record.history[-2:] == ["running", "queued"]
        manager.start()
        try:
            done = wait_until(
                lambda: manager.get("job-0001").state in ("done", "failed")
                and manager.get("job-0001")
            )
            assert done.state == "done", done.error
            assert done.result["digest"] == tiny_digest
        finally:
            manager.checkpoint_and_stop(timeout=30.0)

    def test_recovery_running_with_checkpoint_resumes(self, tmp_path, tiny_digest):
        """A journaled ``running`` job whose work dir holds a real
        checkpoint comes back as ``checkpointed`` and completes to the
        uninterrupted digest."""
        self._write_journal(tmp_path, "job-0001", "running")
        work = tmp_path / "job-0001" / "work"
        stop = threading.Event()
        stop.set()  # checkpoint straight after seeding
        partial = Campaign(TINY_CAMPAIGN).run(checkpoint_dir=str(work), stop=stop)
        assert partial.interrupted

        manager = JobManager(tmp_path)
        assert manager.get("job-0001").state == "checkpointed"
        manager.start()
        try:
            done = wait_until(
                lambda: manager.get("job-0001").state in ("done", "failed")
                and manager.get("job-0001")
            )
            assert done.state == "done", done.error
            assert done.result["digest"] == tiny_digest
        finally:
            manager.checkpoint_and_stop(timeout=30.0)

    def test_recovery_preserves_terminal_states_and_id_sequence(self, tmp_path):
        self._write_journal(tmp_path, "job-0001", "done")
        self._write_journal(tmp_path, "job-0002", "failed")
        manager = JobManager(tmp_path)
        assert [r.state for r in manager.list()] == ["done", "failed"]
        record = manager.submit("campaign", TINY_CAMPAIGN.to_json())
        assert record.id == "job-0003"
        snapshot = manager.snapshot()
        assert snapshot["total"] == 3
        assert snapshot["by_state"]["queued"] == 1


# ----------------------------------------------------------------------
# the HTTP face of jobs
# ----------------------------------------------------------------------


@pytest.fixture()
def jobs_server(tmp_path):
    server = make_server(
        port=0, max_latency=0.01, jobs_dir=str(tmp_path / "jobs")
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.service.drain(timeout=30.0)
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def client_for(server, **kwargs) -> ServiceClient:
    host, port = server.server_address[:2]
    return ServiceClient(host=host, port=port, **kwargs)


class TestJobsHTTP:
    def test_submit_poll_artifacts_roundtrip(self, jobs_server, tiny_digest):
        client = client_for(jobs_server)
        record = client.submit_job("campaign", TINY_CAMPAIGN.to_json())
        assert record["state"] == "queued"

        finished = client.wait_for_job(record["id"], timeout=180.0)
        assert finished["state"] == "done", finished.get("error")
        assert finished["result"]["digest"] == tiny_digest

        listed = client.jobs()
        assert [job["id"] for job in listed] == [record["id"]]

        artifacts = client.job_artifacts(record["id"])
        names = {entry["path"] for entry in artifacts["files"]}
        assert "campaign.json" in names

        health = client.healthz()
        assert health["jobs"]["by_state"]["done"] == 1

    def test_bad_spec_is_http_400(self, jobs_server):
        client = client_for(jobs_server)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_job("campaign", {"batch_size": 0})
        assert excinfo.value.status == 400

    def test_unknown_job_is_http_404(self, jobs_server):
        client = client_for(jobs_server)
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-9999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.job_artifacts("job-9999")
        assert excinfo.value.status == 404

    def test_jobs_disabled_is_http_503(self):
        server = make_server(port=0, max_latency=0.01)  # no jobs_dir
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = client_for(server, max_retries=0)
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.jobs()
            assert excinfo.value.status == 503
            assert "jobs API disabled" in str(excinfo.value)
        finally:
            server.service.drain(timeout=10.0)
            server.shutdown()
            server.server_close()
            thread.join(10.0)


# ----------------------------------------------------------------------
# the daemon as a process: checkpoint-then-drain, kill -9 mid-drain
# ----------------------------------------------------------------------


def _spawn_daemon(
    jobs_dir: Path, fault: str | None = None, extra: tuple[str, ...] = ()
) -> tuple:
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    env.pop(faultinject.ENV_VAR, None)
    if fault is not None:
        env[faultinject.ENV_VAR] = fault
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--jobs-dir", str(jobs_dir), "--max-latency-ms", "5", "--no-cache",
            *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", banner)
    assert match, f"no address in serve banner: {banner!r}"
    return proc, int(match.group(1))


def _finish(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.communicate(timeout=10)


@pytest.mark.parametrize(
    "drain_fault,expected_rc",
    [
        # clean SIGTERM: checkpoint, drain, exit 0
        (None, 0),
        # kill -9 right after the checkpoint, mid-drain: the journal and
        # work dir must already hold everything a restart needs
        ("drain:mid=kill", -9),
    ],
    ids=["sigterm-drain", "kill-mid-drain"],
)
def test_sigterm_checkpoints_then_restart_completes(
    tmp_path, slow_digest, drain_fault, expected_rc
):
    jobs_dir = tmp_path / "jobs"
    # slow each round down so SIGTERM provably lands mid-campaign
    fault = "campaign:post-round=sleep:0.6"
    if drain_fault:
        fault += "," + drain_fault
    proc, port = _spawn_daemon(jobs_dir, fault=fault)
    try:
        client = ServiceClient(port=port, timeout=30)
        record = client.submit_job("campaign", SLOW_CAMPAIGN.to_json())
        job_id = record["id"]
        journal = jobs_dir / job_id / "job.json"
        checkpoint = jobs_dir / job_id / "work" / "checkpoint.json"

        wait_until(
            lambda: checkpoint.exists()
            and json.loads(journal.read_text())["state"] == "running",
            timeout=60.0,
        )
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == expected_rc

        # the journal records the interruption, not a torn mid-state
        journaled = json.loads(journal.read_text())
        assert journaled["state"] == "checkpointed"
        assert json.loads(checkpoint.read_text())["config"]["rounds"] == 4
    finally:
        _finish(proc)

    # a fresh daemon on the same journal resumes and finishes the job
    proc2, port2 = _spawn_daemon(jobs_dir)
    try:
        client = ServiceClient(port=port2, timeout=30)
        finished = client.wait_for_job(job_id, timeout=180.0)
        assert finished["state"] == "done", finished.get("error")
        assert finished["result"]["digest"] == slow_digest
        assert "checkpointed" in finished["history"]
        proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=60) == 0
    finally:
        _finish(proc2)


# ----------------------------------------------------------------------
# worker-pool faults against a real daemon
# ----------------------------------------------------------------------


def test_worker_killed_mid_batch_client_gets_control_verdicts(
    tmp_path, valid_acc_source
):
    """The acceptance scenario end to end: a pre-forked worker is
    SIGKILLed between executing a batch and reporting it.  The client
    must still get a 200 whose verdicts match the in-process executable
    spec (``workers=0``), and ``/v1/stats`` must count the restart."""
    from repro.service.protocol import ValidateRequest
    from repro.service.server import ValidationService

    # control digest from the single-process spec, no HTTP involved
    control_service = ValidationService(workers=0)
    try:
        control = []
        for name in ("a.c", "b.c"):
            response = control_service.submit(
                ValidateRequest(files=((name, valid_acc_source),))
            ).result(timeout=60.0)
            control.append(response["verdicts"])
    finally:
        control_service.drain(timeout=30.0)

    proc, port = _spawn_daemon(
        tmp_path / "jobs",
        fault="worker:pre-result@2=kill",
        extra=("--workers", "1"),
    )
    try:
        client = ServiceClient(port=port, timeout=60)
        served = []
        for name in ("a.c", "b.c"):
            # the second batch dies mid-flight and is retried on the
            # respawned worker; the client just sees a normal 200
            served.append(client.validate({name: valid_acc_source})["verdicts"])
        workers = client.stats()["service"]["workers"]
        assert served == control
        assert workers["restarts"] == 1
        assert workers["batches_dispatched"] == 2
        assert workers["alive"] == 1
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        _finish(proc)


def test_sigkill_daemon_with_workers_still_recovers_jobs(tmp_path, slow_digest):
    """kill -9 on a pooled daemon (no drain, orphaned workers) must
    lose at most one round: a restart on the same journal resumes the
    job to the uninterrupted digest, pool and all."""
    jobs_dir = tmp_path / "jobs"
    proc, port = _spawn_daemon(
        jobs_dir,
        fault="campaign:post-round=sleep:0.6",
        extra=("--workers", "1"),
    )
    try:
        client = ServiceClient(port=port, timeout=30)
        job_id = client.submit_job("campaign", SLOW_CAMPAIGN.to_json())["id"]
        checkpoint = jobs_dir / job_id / "work" / "checkpoint.json"
        wait_until(checkpoint.exists, timeout=60.0)
        proc.kill()  # SIGKILL: no checkpoint_and_stop, no pool close
        proc.wait(timeout=30)
    finally:
        _finish(proc)

    proc2, port2 = _spawn_daemon(jobs_dir, extra=("--workers", "1"))
    try:
        client = ServiceClient(port=port2, timeout=30)
        finished = client.wait_for_job(job_id, timeout=180.0)
        assert finished["state"] == "done", finished.get("error")
        assert finished["result"]["digest"] == slow_digest
        proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=60) == 0
    finally:
        _finish(proc2)
