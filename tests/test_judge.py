"""Unit tests for the judge layer: parser, prompts, agent, front-ends."""

import pytest

from repro.corpus.generator import TestFile
from repro.judge.agent import ToolReport, ToolRunner
from repro.judge.criteria import criteria_text
from repro.judge.llmj import AgentLLMJ, DirectLLMJ
from repro.judge.parser import Verdict, parse_judgment
from repro.judge.prompts import agent_direct_prompt, agent_indirect_prompt, direct_prompt
from repro.llm.model import DeepSeekCoderSim


class TestJudgmentParser:
    def test_strict_valid(self):
        parsed = parse_judgment("... FINAL JUDGEMENT: valid")
        assert parsed.verdict is Verdict.VALID
        assert parsed.strict

    def test_strict_invalid(self):
        parsed = parse_judgment("blah\nFINAL JUDGEMENT: invalid\n")
        assert parsed.verdict is Verdict.INVALID
        assert parsed.strict

    def test_correct_vocabulary(self):
        assert parse_judgment("FINAL JUDGEMENT: correct").verdict is Verdict.VALID
        assert parse_judgment("FINAL JUDGEMENT: incorrect").verdict is Verdict.INVALID

    def test_last_occurrence_wins(self):
        text = "FINAL JUDGEMENT: valid ... on reflection FINAL JUDGEMENT: invalid"
        assert parse_judgment(text).verdict is Verdict.INVALID

    def test_loose_case_insensitive(self):
        parsed = parse_judgment("Final judgement: Valid")
        assert parsed.verdict is Verdict.VALID
        assert not parsed.strict

    def test_loose_judgment_spelling(self):
        parsed = parse_judgment("FINAL JUDGMENT: invalid")
        assert parsed.verdict is Verdict.INVALID
        assert not parsed.strict

    def test_keyword_fallback_negative_priority(self):
        parsed = parse_judgment("In summary the test is invalid.")
        assert parsed.verdict is Verdict.INVALID

    def test_keyword_fallback_positive(self):
        parsed = parse_judgment("I conclude the test is valid.")
        assert parsed.verdict is Verdict.VALID

    def test_no_verdict(self):
        parsed = parse_judgment("I cannot decide.")
        assert parsed.verdict is None
        assert not parsed.ok

    def test_invalid_not_matched_as_valid(self):
        # 'invalid' contains 'valid': negatives must win
        assert parse_judgment("this is invalid").verdict is Verdict.INVALID

    def test_keyword_scan_limited_to_tail(self):
        text = "the valid range of inputs\n" + "x\n" * 10 + "no verdict here"
        assert parse_judgment(text).verdict is None


class TestPrompts:
    def test_criteria_parameterized_by_flavor(self):
        acc = criteria_text("acc")
        omp = criteria_text("omp")
        assert "OpenACC" in acc and "OpenACC" not in omp
        assert "OpenMP" in omp

    def test_direct_prompt_contract(self, valid_acc_source):
        prompt = direct_prompt(valid_acc_source, "acc")
        assert 'FINAL JUDGEMENT: correct' in prompt
        assert "Here is the code:" in prompt
        assert valid_acc_source.strip() in prompt

    def test_agent_direct_prompt_embeds_tool_info(self, valid_acc_source):
        prompt = agent_direct_prompt(
            valid_acc_source, "acc", 1, "an error", "out", 0, "", "PASSED"
        )
        assert "Compiler return code: 1" in prompt
        assert "Compiler STDERR: an error" in prompt
        assert "Return code: 0" in prompt
        assert '"FINAL JUDGEMENT: valid"' in prompt

    def test_agent_prompt_handles_not_run(self, valid_acc_source):
        prompt = agent_direct_prompt(
            valid_acc_source, "acc", 1, "err", "", None, None, None
        )
        assert "could not be run" in prompt

    def test_indirect_prompt_starts_with_describe(self, valid_omp_source):
        prompt = agent_indirect_prompt(
            valid_omp_source, "omp", 0, "", "", 0, "", ""
        )
        assert prompt.startswith("Describe what the below OpenMP program")
        assert "Here is the code for you to analyze:" in prompt


class TestToolRunner:
    def test_collect_valid(self, valid_acc_source):
        runner = ToolRunner("acc")
        report = runner.collect(TestFile("t.c", "c", "acc", valid_acc_source, "x"))
        assert report.compiled
        assert report.ran_clean
        assert "PASSED" in report.run_stdout

    def test_collect_compile_failure_skips_run(self, valid_acc_source):
        broken = valid_acc_source.replace("{", "", 1)
        runner = ToolRunner("acc")
        report = runner.collect(TestFile("t.c", "c", "acc", broken, "x"))
        assert not report.compiled
        assert report.run_rc is None

    def test_output_capped(self, valid_acc_source):
        src = valid_acc_source.replace('printf("PASSED\\n");', 'for (int k = 0; k < 500; k++) { printf("a very long line of output text\\n"); }')
        runner = ToolRunner("acc")
        report = runner.collect(TestFile("t.c", "c", "acc", src, "x"))
        assert len(report.run_stdout) <= 2100

    def test_diagnostic_codes_propagated(self, valid_acc_source):
        broken = valid_acc_source.replace("parallel loop", "paralel loop")
        report = ToolRunner("acc").collect(TestFile("t.c", "c", "acc", broken, "x"))
        assert "bad-directive" in report.diagnostic_codes


class TestJudges:
    def test_direct_judge_returns_result(self, model, valid_acc_source):
        judge = DirectLLMJ(model, "acc")
        result = judge.judge(TestFile("t.c", "c", "acc", valid_acc_source, "x"))
        assert result.verdict is not None
        assert result.prompt_mode == "direct"
        assert result.prompt_tokens > 0

    def test_agent_judge_collects_tools(self, model, valid_acc_source):
        judge = AgentLLMJ(model, "acc", kind="direct")
        result = judge.judge(TestFile("t.c", "c", "acc", valid_acc_source, "x"))
        assert result.tool_report is not None
        assert result.prompt_mode == "agent-direct"

    def test_agent_judge_accepts_prebuilt_report(self, model, valid_acc_source):
        test = TestFile("t.c", "c", "acc", valid_acc_source, "x")
        report = ToolRunner("acc").collect(test)
        judge = AgentLLMJ(model, "acc", kind="indirect")
        result = judge.judge(test, report)
        assert result.prompt_mode == "agent-indirect"

    def test_invalid_flavor_rejected(self, model):
        with pytest.raises(ValueError):
            DirectLLMJ(model, "cuda")

    def test_invalid_kind_rejected(self, model):
        with pytest.raises(ValueError):
            AgentLLMJ(model, "acc", kind="sideways")

    def test_retry_on_malformed(self, model, valid_acc_source):
        """Across many files, some first attempts are malformed and the
        judge must retry to a strict parse."""
        judge = DirectLLMJ(model, "acc", max_retries=2)
        retried = 0
        for i in range(60):
            source = valid_acc_source.replace("3.0", f"{i + 2}.0")
            result = judge.judge(TestFile(f"t{i}.c", "c", "acc", source, "x"))
            assert result.verdict is not None
            if result.attempts > 1:
                retried += 1
        assert retried >= 1

    def test_deterministic_verdicts(self, valid_acc_source):
        test = TestFile("t.c", "c", "acc", valid_acc_source, "x")
        r1 = DirectLLMJ(DeepSeekCoderSim(seed=9), "acc").judge(test)
        r2 = DirectLLMJ(DeepSeekCoderSim(seed=9), "acc").judge(test)
        assert r1.verdict == r2.verdict
        assert r1.response == r2.response

    def test_simulated_seconds_positive(self, model, valid_acc_source):
        result = DirectLLMJ(model, "acc").judge(
            TestFile("t.c", "c", "acc", valid_acc_source, "x")
        )
        assert result.simulated_seconds > 0
