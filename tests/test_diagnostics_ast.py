"""Unit tests for diagnostics and AST helpers."""

import pytest

from repro.compiler import astnodes as ast
from repro.compiler.diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    Severity,
    SourceLocation,
    TooManyErrors,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR < Severity.FATAL

    def test_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.WARNING.label == "warning"


class TestDiagnostic:
    def test_render_with_location(self):
        diag = Diagnostic(
            Severity.ERROR, "bad thing", SourceLocation("f.c", 3, 7), "syntax"
        )
        assert diag.render() == "f.c:3:7: error: bad thing [-Wsyntax]"

    def test_render_without_location(self):
        diag = Diagnostic(Severity.WARNING, "meh", None, "w")
        assert diag.render().startswith("warning: meh")


class TestEngine:
    def test_counts(self):
        engine = DiagnosticEngine()
        engine.warn("w1")
        engine.error("e1")
        engine.error("e2")
        assert engine.warning_count == 1
        assert engine.error_count == 2
        assert engine.has_errors

    def test_error_limit_raises(self):
        engine = DiagnosticEngine(error_limit=3)
        with pytest.raises(TooManyErrors):
            for i in range(10):
                engine.error(f"e{i}")

    def test_codes_first_seen_order(self):
        engine = DiagnosticEngine()
        engine.error("a", code="one")
        engine.error("b", code="two")
        engine.error("c", code="one")
        assert engine.codes() == ["one", "two"]

    def test_render_stderr_summary(self):
        engine = DiagnosticEngine()
        engine.error("x")
        assert "1 error generated." in engine.render_stderr()
        engine.clear()
        engine.error("x")
        engine.error("y")
        assert "2 errors generated." in engine.render_stderr()

    def test_warning_only_summary(self):
        engine = DiagnosticEngine()
        engine.warn("w")
        assert "1 warning generated." in engine.render_stderr()


LOC = SourceLocation("t.c", 1, 1)


def _sample_function() -> ast.FunctionDef:
    # int f() { if (x) { y = 1; } for (i = 0; i < 3; i++) z += i; return q; }
    body = ast.Compound(
        LOC,
        [
            ast.If(
                LOC,
                ast.Identifier(LOC, "x"),
                ast.Compound(
                    LOC,
                    [ast.ExprStmt(LOC, ast.Assignment(LOC, "=", ast.Identifier(LOC, "y"), ast.IntLiteral(LOC, 1)))],
                ),
                None,
            ),
            ast.For(
                LOC,
                ast.ExprStmt(LOC, ast.Assignment(LOC, "=", ast.Identifier(LOC, "i"), ast.IntLiteral(LOC, 0))),
                ast.BinaryOp(LOC, "<", ast.Identifier(LOC, "i"), ast.IntLiteral(LOC, 3)),
                ast.UnaryOp(LOC, "++", ast.Identifier(LOC, "i"), prefix=False),
                ast.ExprStmt(LOC, ast.Assignment(LOC, "+=", ast.Identifier(LOC, "z"), ast.Identifier(LOC, "i"))),
            ),
            ast.Return(LOC, ast.Identifier(LOC, "q")),
        ],
    )
    return ast.FunctionDef("f", ast.INT, [], body, LOC)


class TestWalkers:
    def test_walk_statements_preorder(self):
        fn = _sample_function()
        kinds = [type(s).__name__ for s in ast.walk_statements(fn.body)]
        assert kinds[0] == "Compound"
        assert "If" in kinds and "For" in kinds and "Return" in kinds

    def test_walk_expressions_finds_identifiers(self):
        fn = _sample_function()
        names = {
            e.name
            for e in ast.walk_expressions(fn.body)
            if isinstance(e, ast.Identifier)
        }
        assert {"x", "y", "i", "z", "q"} <= names

    def test_walk_covers_directive_construct(self):
        directive = ast.DirectiveStmt(
            LOC,
            None,
            ast.ExprStmt(LOC, ast.Identifier(LOC, "hidden")),
        )
        names = {
            e.name
            for e in ast.walk_expressions(directive)
            if isinstance(e, ast.Identifier)
        }
        assert "hidden" in names


class TestCType:
    def test_pointer_navigation(self):
        t = ast.CType("double", 2)
        assert t.pointee().pointers == 1
        assert t.pointer_to().pointers == 3

    def test_pointee_of_scalar_raises(self):
        with pytest.raises(ValueError):
            ast.CType("int").pointee()

    def test_classification(self):
        assert ast.CType("double").is_floating
        assert ast.CType("int").is_integral
        assert not ast.CType("double", 1).is_floating
        assert ast.CType("void").is_void

    def test_str(self):
        assert str(ast.CType("double", 1)) == "double*"
        assert str(ast.CType("int", 0, const=True)) == "const int"

    def test_translation_unit_function_lookup(self):
        unit = ast.TranslationUnit("t.c")
        fn = _sample_function()
        unit.functions.append(fn)
        assert unit.function("f") is fn
        assert unit.function("missing") is None
        proto = ast.FunctionDef("g", ast.INT, [], None, LOC)
        unit.functions.append(proto)
        assert unit.function("g") is None  # prototypes don't count
