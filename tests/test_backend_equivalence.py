"""Differential suite: ALL registered backends must be byte-identical
— return code, stdout, stderr, fault AND step count — over the full
template corpus, a mutant sample, and targeted slot-resolution edge
cases.

The walk backend is the executable spec; the closure backend
(:mod:`repro.runtime.compilebody`) and the codegen backend
(:mod:`repro.runtime.codegen`) are the fast paths.  Any drift between
them silently corrupts cached results (the execute cache deliberately
does not key on the backend), so equality here is a hard invariant.
The suite derives its backend list from ``EXECUTION_BACKENDS`` — a
newly registered backend is pulled into every assertion automatically.
"""

from __future__ import annotations

import pytest

from repro.compiler.driver import Compiler
from repro.runtime import EXECUTION_BACKENDS
from repro.runtime.executor import ExecutionResult, Executor

#: every backend that must match the walker (the executable spec)
FAST_BACKENDS = tuple(b for b in EXECUTION_BACKENDS if b != "walk")


def run_each(source: str, flavor: str = "acc", filename: str = "t.c",
             step_limit: int = 2_000_000) -> dict[str, ExecutionResult]:
    compiled = Compiler(model=flavor).compile(source, filename)
    assert compiled.ok, compiled.stderr
    return {
        backend: Executor(step_limit=step_limit, backend=backend).run(compiled)
        for backend in EXECUTION_BACKENDS
    }


def run_both(source: str, flavor: str = "acc", filename: str = "t.c",
             step_limit: int = 2_000_000) -> tuple[ExecutionResult, ...]:
    """All backends' results, walk first (kept for test readability)."""
    results = run_each(source, flavor, filename, step_limit)
    return tuple(results[b] for b in EXECUTION_BACKENDS)


def assert_identical(source: str, flavor: str = "acc", filename: str = "t.c",
                     step_limit: int = 2_000_000) -> ExecutionResult:
    results = run_each(source, flavor, filename, step_limit)
    walk = results["walk"]
    for backend in FAST_BACKENDS:
        assert results[backend] == walk, (
            f"backend drift:\n  walk:    {walk}\n  {backend}: {results[backend]}"
        )
    return walk


# ----------------------------------------------------------------------
# corpus-wide equivalence
# ----------------------------------------------------------------------


class TestCorpusEquivalence:
    def _check_population(self, tests, flavor):
        compiler = Compiler(model=flavor)
        executors = {b: Executor(backend=b) for b in EXECUTION_BACKENDS}
        checked = 0
        for test in tests:
            compiled = compiler.compile(test.source, test.name)
            if not compiled.ok or compiled.unit is None:
                continue
            walk = executors["walk"].run(compiled)
            for backend in FAST_BACKENDS:
                result = executors[backend].run(compiled)
                assert result == walk, (
                    f"{test.name}:\n  walk:    {walk}\n  {backend}: {result}"
                )
            checked += 1
        assert checked > 0

    def test_acc_templates(self, acc_corpus):
        self._check_population(acc_corpus, "acc")

    def test_omp_templates(self, omp_corpus):
        self._check_population(omp_corpus, "omp")

    def test_fortran_templates(self, fortran_corpus):
        self._check_population(fortran_corpus, "acc")

    def test_acc_mutants(self, acc_probed):
        self._check_population(list(acc_probed), "acc")

    def test_omp_mutants(self, omp_probed):
        self._check_population(list(omp_probed), "omp")


# ----------------------------------------------------------------------
# slot resolution
# ----------------------------------------------------------------------


class TestSlotResolution:
    def test_block_shadowing(self):
        result = assert_identical(r"""
            #include <stdio.h>
            int main() {
                int x = 1;
                { int x = 2; printf("inner=%d\n", x); x = 3; }
                printf("outer=%d\n", x);
                return 0;
            }
        """)
        assert result.stdout == "inner=2\nouter=1\n"

    def test_init_references_shadowed_outer(self):
        # `int x = x + 1;` in an inner block reads the OUTER x: the new
        # binding only exists after its own initializer runs
        result = assert_identical(r"""
            #include <stdio.h>
            int main() {
                int x = 5;
                { int x = x + 1; printf("%d\n", x); }
                printf("%d\n", x);
                return 0;
            }
        """)
        assert result.stdout == "6\n5\n"

    def test_for_init_scope(self):
        result = assert_identical(r"""
            #include <stdio.h>
            int main() {
                int i = 99;
                int total = 0;
                for (int i = 0; i < 4; i++) { total += i; }
                printf("i=%d total=%d\n", i, total);
                return 0;
            }
        """)
        assert result.stdout == "i=99 total=6\n"

    def test_loop_body_redeclaration_each_iteration(self):
        result = assert_identical(r"""
            #include <stdio.h>
            int main() {
                int total = 0;
                for (int i = 0; i < 3; i++) {
                    int fresh = 0;
                    fresh += 10;
                    total += fresh;
                }
                printf("%d\n", total);
                return 0;
            }
        """)
        assert result.stdout == "30\n"

    def test_param_shadows_global(self):
        result = assert_identical(r"""
            #include <stdio.h>
            int g = 7;
            int probe(int g) { return g * 2; }
            int main() { printf("%d %d\n", probe(3), g); return 0; }
        """)
        assert result.stdout == "6 7\n"

    def test_global_read_write(self):
        result = assert_identical(r"""
            #include <stdio.h>
            int counter = 0;
            void bump() { counter = counter + 2; }
            int main() { bump(); bump(); printf("%d\n", counter); return 0; }
        """)
        assert result.stdout == "4\n"

    def test_recursion(self):
        result = assert_identical(r"""
            int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
            int main() { return fib(12); }
        """)
        assert result.returncode == 144

    def test_stack_overflow_fault_identical(self):
        # the interpreter raises the host recursion limit so its own
        # depth-200 guard is the binding constraint in BOTH backends
        # (the walker burns ~15 host frames per C call)
        result = assert_identical(r"""
            #include <stdio.h>
            int deep(int n) { return n == 0 ? 0 : deep(n - 1); }
            int main() { printf("go\n"); return deep(1000); }
        """)
        assert result.returncode == 139
        assert result.fault == "stack overflow (recursion too deep)"
        assert result.stdout == "go\n"

    def test_step_limit_identical_at_timeout(self):
        results = run_each(
            "int main() { int i = 0; while (1) { i = i + 1; } return i; }",
            step_limit=5_000,
        )
        walk = results["walk"]
        for backend in FAST_BACKENDS:
            assert results[backend] == walk
        assert walk.timed_out and walk.steps == 5_001

    def test_incdec_coerces_int_in_float_slot(self):
        # a missing double argument binds as int 0; ++ must coerce the
        # stored value to float exactly like the walker does, or later
        # division flips from float to truncating-int semantics
        result = assert_identical(r"""
            #include <stdio.h>
            double half(double x) { x++; return x / 2; }
            int main() { printf("%g\n", half()); return 0; }
        """)
        assert result.stdout == "0.5\n"

    def test_missing_arguments_default_zero(self):
        result = assert_identical(r"""
            #include <stdio.h>
            int f(int a, int b) { return a + b; }
            int main() { printf("%d\n", f(5)); return 0; }
        """)
        assert result.stdout == "5\n"


# ----------------------------------------------------------------------
# directive semantics (pre-parsed plans vs per-execution walker)
# ----------------------------------------------------------------------


class TestDirectiveEquivalence:
    def test_private_clause_on_compute_region(self):
        # acc compute regions leave private scalars writable (the
        # snapshot machinery skips them) — whatever the semantics, both
        # backends must agree byte-for-byte
        result = assert_identical(r"""
            #include <stdio.h>
            #include <openacc.h>
            int main() {
                double t = 42.0;
                double a[8];
                #pragma acc parallel loop private(t)
                for (int i = 0; i < 8; i++) { t = i * 2.0; a[i] = t; }
                printf("t=%g a7=%g\n", t, a[7]);
                return 0;
            }
        """)
        assert result.stdout == "t=14 a7=14\n"

    def test_reduction_var_stays_shared(self):
        result = assert_identical(r"""
            #include <stdio.h>
            #include <openacc.h>
            int main() {
                int s = 0;
                #pragma acc parallel loop reduction(+:s)
                for (int i = 0; i < 10; i++) { s += i; }
                printf("%d\n", s);
                return 0;
            }
        """)
        assert result.stdout == "45\n"

    def test_firstprivate_scalar_snapshot_in_compute_region(self):
        # scalars written inside an offloaded region default to
        # firstprivate: the write is not visible after the region
        result = assert_identical(r"""
            #include <stdio.h>
            #include <openacc.h>
            int main() {
                double scale = 1.5;
                double a[4];
                #pragma acc parallel loop copyout(a[0:4])
                for (int i = 0; i < 4; i++) { scale = 2.0; a[i] = i * scale; }
                printf("scale=%g a3=%g\n", scale, a[3]);
                return 0;
            }
        """)
        assert result.stdout == "scale=1.5 a3=6\n"

    def test_data_clause_create_yields_stale_results(self):
        # broken data movement must fail the self-check identically
        result = assert_identical(r"""
            #include <stdio.h>
            #include <openacc.h>
            #define N 16
            int main() {
                double a[N]; double b[N];
                int err = 0;
                for (int i = 0; i < N; i++) { a[i] = i + 1.0; b[i] = 0.0; }
                #pragma acc parallel loop create(a[0:N]) copyout(b[0:N])
                for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0; }
                for (int i = 0; i < N; i++) {
                    if (b[i] != (i + 1.0) * 2.0) err++;
                }
                printf("err=%d\n", err);
                return err ? 1 : 0;
            }
        """)
        assert result.returncode == 1  # stale device data, both backends

    def test_if_clause_false_runs_on_host(self):
        result = assert_identical(r"""
            #include <stdio.h>
            #include <openacc.h>
            int main() {
                int use_gpu = 0;
                double x = 3.0;
                #pragma acc parallel if(use_gpu)
                { x = x * 2.0; }
                printf("%g\n", x);
                return 0;
            }
        """)
        # host execution: the write IS visible (no firstprivate snapshot)
        assert result.stdout == "6\n"

    def test_omp_target_map_tofrom(self):
        result = assert_identical(r"""
            #include <stdio.h>
            #include <omp.h>
            #define N 8
            int main() {
                double a[N];
                for (int i = 0; i < N; i++) a[i] = i;
                #pragma omp target teams distribute parallel for map(tofrom: a[0:N])
                for (int i = 0; i < N; i++) a[i] = a[i] + 0.5;
                printf("%g %g\n", a[0], a[7]);
                return 0;
            }
        """, flavor="omp")
        assert result.stdout == "0.5 7.5\n"

    def test_omp_host_parallel_private_restore(self):
        result = assert_identical(r"""
            #include <stdio.h>
            #include <omp.h>
            int main() {
                int t = 9;
                int total = 0;
                #pragma omp parallel for private(t)
                for (int i = 0; i < 4; i++) { t = i; total += t; }
                printf("t=%d total=%d\n", t, total);
                return 0;
            }
        """, flavor="omp")
        assert result.stdout == "t=9 total=6\n"

    def test_enter_exit_data(self):
        result = assert_identical(r"""
            #include <stdio.h>
            #include <openacc.h>
            #define N 8
            int main() {
                double a[N];
                for (int i = 0; i < N; i++) a[i] = i;
                #pragma acc enter data copyin(a[0:N])
                #pragma acc parallel loop present(a[0:N])
                for (int i = 0; i < N; i++) a[i] = a[i] * 3.0;
                #pragma acc exit data copyout(a[0:N])
                printf("%g\n", a[5]);
                return 0;
            }
        """)
        assert result.stdout == "15\n"


# ----------------------------------------------------------------------
# fault paths
# ----------------------------------------------------------------------


class TestFaultEquivalence:
    @pytest.mark.parametrize("source,rc", [
        ("int main() { int a[4]; return a[9]; }", 139),
        ("int main() { int *p; return *p; }", 139),
        ("int main() { int x = 1; int y = 0; return x / y; }", 136),
        ("int main() { int x = 7; return x % 0; }", 136),
        ('#include <stdlib.h>\nint main() { double *p = malloc(8); free(p); free(p); return 0; }', 139),
        ("int missing_function();\nint main() { return missing_function(); }", 127),
    ])
    def test_fault_triple_identical(self, source, rc):
        results = run_each(source)
        walk = results["walk"]
        for backend in FAST_BACKENDS:
            assert results[backend] == walk
        assert walk.returncode == rc

    def test_fault_mid_output_keeps_partial_stdout(self):
        result = assert_identical(r"""
            #include <stdio.h>
            int main() {
                int a[4];
                printf("before\n");
                a[17] = 3;
                printf("after\n");
                return 0;
            }
        """)
        assert result.returncode == 139
        assert result.stdout == "before\n"
