"""The beyond-the-paper Fortran Part-Two extension."""

import pytest

from repro.experiments import ExperimentConfig, Experiments


@pytest.fixture(scope="module")
def fortran_result():
    exp = Experiments(ExperimentConfig(scale="tiny", seed=19, model_seed=23))
    return exp.fortran_extension()


class TestFortranExtension:
    def test_produces_reports(self, fortran_result):
        assert len(fortran_result.reports) == 4
        assert "Fortran" in fortran_result.title

    def test_pipeline_catches_compile_detectable_issues(self, fortran_result):
        pipeline1 = fortran_result.reports[0]
        row1 = pipeline1.row_for(1)
        if row1 is not None:
            assert row1.accuracy == 1.0

    def test_valid_fortran_mostly_passes(self, fortran_result):
        llmj1 = fortran_result.reports[2]
        assert llmj1.accuracy_for(5) > 0.6

    def test_no_paper_counterpart(self, fortran_result):
        assert fortran_result.paper is None
