"""Unit tests for the compiler driver and the executor."""

from repro.compiler.driver import Compiler, detect_language
from repro.runtime.executor import Executor


class TestLanguageDetection:
    def test_c(self):
        assert detect_language("foo.c") == "c"

    def test_cpp_variants(self):
        for ext in (".cpp", ".cxx", ".cc"):
            assert detect_language(f"x{ext}") == "c++"

    def test_fortran_variants(self):
        for ext in (".f90", ".F90", ".f95", ".f"):
            assert detect_language(f"x{ext}") == "fortran"

    def test_default_is_c(self):
        assert detect_language("strange.txt") == "c"


class TestDriver:
    def test_model_validation(self):
        import pytest

        with pytest.raises(ValueError):
            Compiler(model="cuda")

    def test_name_property(self):
        assert "nvc" in Compiler(model="acc").name
        assert "clang" in Compiler(model="omp").name

    def test_acc_defines_openacc_macro(self, valid_acc_source):
        source = "#ifndef _OPENACC\n#error no acc\n#endif\nint main() { return 0; }"
        assert Compiler(model="acc").compile(source, "t.c").ok

    def test_omp_defines_openmp_macro(self):
        source = "#ifndef _OPENMP\n#error no omp\n#endif\nint main() { return 0; }"
        assert Compiler(model="omp").compile(source, "t.c").ok
        assert not Compiler(model="acc").compile(source, "t.c").ok

    def test_returncode_zero_on_success(self, valid_acc_source, acc_compiler):
        result = acc_compiler.compile(valid_acc_source, "t.c")
        assert result.returncode == 0
        assert result.ok
        assert result.stderr == ""

    def test_returncode_nonzero_on_error(self, acc_compiler):
        result = acc_compiler.compile("int main() { x = 1; return 0; }", "t.c")
        assert result.returncode != 0
        assert "error" in result.stderr

    def test_error_summary_line(self, acc_compiler):
        result = acc_compiler.compile("int main() { x = 1; y = 2; return 0; }", "t.c")
        assert "errors generated." in result.stderr

    def test_compile_never_raises_on_garbage(self, acc_compiler):
        for garbage in ("", "@@@@", "{{{{{{", "int int int", "\x01\x02", "a" * 10000):
            result = acc_compiler.compile(garbage, "g.c")
            assert isinstance(result.returncode, int)

    def test_error_limit_caps_cascades(self, acc_compiler):
        source = "int main() {\n" + "\n".join(f"q{i} = {i};" for i in range(100)) + "\nreturn 0; }"
        result = acc_compiler.compile(source, "t.c")
        assert result.error_count <= 21


class TestExecutor:
    def test_cannot_execute_failed_compile(self, acc_compiler, executor):
        compiled = acc_compiler.compile("not a program", "t.c")
        result = executor.run(compiled)
        assert result.returncode == 126
        assert result.fault == "not-compiled"

    def test_valid_program_runs(self, acc_compiler, executor, valid_acc_source):
        compiled = acc_compiler.compile(valid_acc_source, "t.c")
        result = executor.run(compiled)
        assert result.ok
        assert "PASSED" in result.stdout
        assert result.steps > 0

    def test_step_budget_respected(self, acc_compiler):
        compiled = acc_compiler.compile(
            "int main() { while (1) { } return 0; }", "t.c"
        )
        result = Executor(step_limit=5_000).run(compiled)
        assert result.timed_out
        assert result.returncode == 124
