"""Stress tests: seeds x mutators over real corpora, and totality of the
full judging path over arbitrary probe outputs."""

import random

import pytest

from repro.compiler.driver import Compiler
from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.judge.llmj import AgentLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.probing.mutators import MutationError, mutator_for_issue
from repro.probing.prober import NegativeProber
from repro.runtime.executor import Executor


@pytest.mark.parametrize("issue", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mutator_output_differs_and_is_handled(acc_corpus, issue, seed):
    """Every mutation changes the source, and the toolchain copes."""
    rng = random.Random(seed)
    compiler = Compiler(model="acc")
    executor = Executor(step_limit=500_000)
    for test in list(acc_corpus)[:6]:
        mutator = mutator_for_issue(issue)
        try:
            mutated = mutator.mutate(test, rng)
        except MutationError:
            continue
        assert mutated.source != test.source or issue == 3
        compiled = compiler.compile(mutated.source, mutated.name)
        if compiled.ok:
            result = executor.run(compiled)
            assert isinstance(result.returncode, int)


def test_mutation_ground_truth_holds_under_reprobing(acc_corpus):
    """Probing twice with different seeds keeps the invariants: half
    unchanged, mutants marked 0-4, names tagged."""
    suite = TestSuite("stress", "acc", list(acc_corpus))
    for seed in (10, 20, 30):
        probed = NegativeProber(seed=seed).probe(suite)
        counts = probed.issue_counts()
        assert sum(counts.values()) == len(suite)
        for test in probed:
            if test.issue in (None, 5):
                assert "__issue" not in test.name or "__issue5" in test.name
            else:
                assert f"__issue{test.issue}" in test.name


def test_full_judge_path_total_over_mixed_population():
    """compile -> run -> prompt -> generate -> parse never raises, for
    any probe output, including pathological mutants."""
    files = CorpusGenerator(seed=41).generate("omp", 10, languages=("c",))
    probed = NegativeProber(seed=42).probe(TestSuite("t", "omp", files))
    judge = AgentLLMJ(DeepSeekCoderSim(seed=43), "omp", kind="indirect")
    for test in probed:
        result = judge.judge(test)
        assert result.verdict is not None
        assert "FINAL" in result.response or not result.strict_parse


def test_generator_rejects_impossible_validation():
    """With validation on and templates sabotaged by a absurd step
    limit, generation fails loudly instead of silently shrinking."""
    from repro.corpus.generator import CorpusValidationError

    generator = CorpusGenerator(seed=1, step_limit=10)  # nothing can run
    with pytest.raises(CorpusValidationError):
        generator.generate("acc", 4, languages=("c",))
