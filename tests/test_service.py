"""The serving layer: protocol, batching, backpressure, drain, identity.

Batching mechanics are driven through :class:`MicroBatcher` with toy
runners (no HTTP); the HTTP contract is exercised against a real
``ThreadingHTTPServer`` on an ephemeral port via the stdlib client.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import TestsuiteValidator
from repro.service.batching import BatcherClosed, BatchQueueFull, MicroBatcher
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.protocol import (
    JudgeRequest,
    ProtocolError,
    ValidateOptions,
    ValidateRequest,
    decode_verdict,
    encode_verdict,
)
from repro.service.server import make_server


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_validate_request_roundtrip(self):
        request = ValidateRequest(
            files=(("a.c", "int main(){return 0;}"), ("b.c", "x")),
            options=ValidateOptions(flavor="omp", judge="indirect", early_exit=False),
        )
        assert ValidateRequest.from_dict(request.to_dict()) == request

    def test_single_file_shorthand(self):
        request = ValidateRequest.from_dict({"name": "a.c", "source": "s"})
        assert request.files == (("a.c", "s"),)
        assert request.options == ValidateOptions()

    def test_files_list_form(self):
        request = ValidateRequest.from_dict(
            {"files": [{"name": "a.c", "source": "s"}]}
        )
        assert request.files == (("a.c", "s"),)

    def test_judge_request_roundtrip(self):
        request = JudgeRequest(
            name="a.c", source="s", flavor="omp", judge="indirect",
            report={"compile_rc": 0, "run_rc": 1},
        )
        assert JudgeRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize(
        "body",
        [
            "not a dict",
            {},
            {"files": {}},
            {"files": "nope"},
            {"files": {"a.c": 42}},
            {"files": {"": "s"}},
            {"name": "a.c"},  # shorthand missing source
            {"files": {"a.c": "s"}, "options": {"flavor": "rust"}},
            {"files": {"a.c": "s"}, "options": {"early_exit": "yes"}},
            {"files": [{"name": "a.c"}]},
        ],
    )
    def test_malformed_validate_requests_rejected(self, body):
        with pytest.raises(ProtocolError):
            ValidateRequest.from_dict(body)

    @pytest.mark.parametrize(
        "report",
        [
            {"compile_rc": "0"},
            {"compile_rc": 0, "run_rc": "1"},
            {"compile_rc": 0, "diagnostic_codes": "E123"},  # would char-split
            {"compile_rc": 0, "diagnostic_codes": [1, 2]},
            {"compile_rc": 0, "compile_stderr": 7},
        ],
    )
    def test_malformed_judge_reports_rejected(self, report):
        with pytest.raises(ProtocolError):
            JudgeRequest.from_dict({"name": "a.c", "source": "s", "report": report})

    def test_per_request_file_cap(self):
        files = {f"t{i}.c": "s" for i in range(17)}
        with pytest.raises(ProtocolError, match="at most 16"):
            ValidateRequest.from_dict({"files": files})

    def test_duplicate_names_within_request_rejected(self):
        with pytest.raises(ProtocolError, match="duplicate"):
            ValidateRequest.from_dict(
                {"files": [{"name": "a.c", "source": "1"}, {"name": "a.c", "source": "2"}]}
            )

    def test_verdict_roundtrip(self, valid_acc_source):
        report = TestsuiteValidator(flavor="acc").validate_sources(
            {"good.c": valid_acc_source}
        )
        judged = report.files[0]
        assert decode_verdict(encode_verdict(judged)) == judged


# ----------------------------------------------------------------------
# micro-batching (toy runners, no HTTP)
# ----------------------------------------------------------------------


def collecting_runner(batches):
    def run(key, payloads):
        batches.append((key, list(payloads)))
        return [(key, payload) for payload in payloads]
    return run


class TestMicroBatcher:
    def test_size_cutoff_dispatches_full_batch(self):
        batches = []
        # the 10s latency window means only the size cutoff can fire
        batcher = MicroBatcher(
            collecting_runner(batches), max_batch_size=3, max_latency=10.0, capacity=8
        )
        futures = [batcher.submit("k", i) for i in range(3)]
        assert [f.result(10.0) for f in futures] == [("k", 0), ("k", 1), ("k", 2)]
        assert batches == [("k", [0, 1, 2])]
        snapshot = batcher.snapshot()
        assert snapshot["size_cutoffs"] == 1
        assert snapshot["latency_cutoffs"] == 0
        assert snapshot["largest_batch"] == 3
        batcher.close()

    def test_latency_cutoff_flushes_partial_batch(self):
        batches = []
        batcher = MicroBatcher(
            collecting_runner(batches), max_batch_size=8, max_latency=0.05, capacity=8
        )
        future = batcher.submit("k", "lonely")
        assert future.result(10.0) == ("k", "lonely")
        snapshot = batcher.snapshot()
        assert snapshot["latency_cutoffs"] >= 1
        assert snapshot["largest_batch"] == 1
        batcher.close()

    def test_incompatible_keys_never_share_a_batch(self):
        batches = []
        # a long window would happily batch a+a, but b sits between them
        batcher = MicroBatcher(
            collecting_runner(batches), max_batch_size=8, max_latency=2.0, capacity=8
        )
        futures = [batcher.submit("a", 1), batcher.submit("b", 2), batcher.submit("a", 3)]
        for future in futures:
            future.result(10.0)
        # the "b" item cut both neighbouring "a" batches short
        assert batches == [("a", [1]), ("b", [2]), ("a", [3])]
        assert batcher.snapshot()["key_cutoffs"] >= 2
        batcher.close()

    def test_backpressure_raises_queue_full(self):
        gate = threading.Event()

        def gated(key, payloads):
            gate.wait(10.0)
            return list(payloads)

        batcher = MicroBatcher(gated, max_batch_size=1, max_latency=0.0, capacity=2)
        inflight = batcher.submit("k", "a")  # popped by the collector, blocks
        time.sleep(0.1)
        queued = [batcher.submit("k", "b"), batcher.submit("k", "c")]
        with pytest.raises(BatchQueueFull) as excinfo:
            batcher.submit("k", "overflow")
        assert excinfo.value.capacity == 2
        assert excinfo.value.retry_after > 0
        assert batcher.snapshot()["rejected"] == 1
        gate.set()
        for future in [inflight, *queued]:
            assert future.result(10.0) in ("a", "b", "c")
        batcher.close()

    def test_runner_exception_fails_the_whole_batch(self):
        def explode(key, payloads):
            raise RuntimeError("boom")

        batcher = MicroBatcher(explode, max_batch_size=4, max_latency=0.01, capacity=8)
        future = batcher.submit("k", "x")
        with pytest.raises(RuntimeError, match="boom"):
            future.result(10.0)
        assert batcher.snapshot()["failed"] == 1
        batcher.close()

    def test_result_miscount_is_an_error_not_a_hang(self):
        batcher = MicroBatcher(
            lambda key, payloads: [], max_batch_size=2, max_latency=0.01, capacity=8
        )
        future = batcher.submit("k", "x")
        with pytest.raises(RuntimeError, match="0 results"):
            future.result(10.0)
        batcher.close()

    def test_close_drains_queued_work(self):
        gate = threading.Event()
        done = []

        def gated(key, payloads):
            gate.wait(10.0)
            done.extend(payloads)
            return list(payloads)

        batcher = MicroBatcher(gated, max_batch_size=1, max_latency=0.0, capacity=8)
        futures = [batcher.submit("k", i) for i in range(4)]
        gate.set()
        assert batcher.close(drain=True, timeout=10.0)
        assert sorted(f.result(0.1) for f in futures) == [0, 1, 2, 3]
        assert sorted(done) == [0, 1, 2, 3]
        with pytest.raises(BatcherClosed):
            batcher.submit("k", "late")

    def test_close_without_drain_fails_queued_futures(self):
        gate = threading.Event()

        def gated(key, payloads):
            gate.wait(10.0)
            return list(payloads)

        batcher = MicroBatcher(gated, max_batch_size=1, max_latency=0.0, capacity=8)
        inflight = batcher.submit("k", "a")
        time.sleep(0.1)
        queued = batcher.submit("k", "b")
        closer = threading.Thread(target=lambda: batcher.close(drain=False, timeout=10.0))
        closer.start()
        time.sleep(0.1)
        gate.set()
        closer.join(10.0)
        assert inflight.result(10.0) == "a"  # already dispatched: completes
        with pytest.raises(BatcherClosed):
            queued.result(10.0)


class TestConcurrencyStress:
    """32 simultaneous clients — well beyond what the rest of the suite
    drives — against the dispatcher-threaded batcher: every future must
    resolve exactly once with its own payload's result, and 429s may
    appear only when the admission queue is genuinely at capacity."""

    def test_32_clients_no_lost_or_duplicated_futures(self):
        def runner(key, payloads):
            time.sleep(0.001)  # enough to overlap dispatchers
            return [("done", payload) for payload in payloads]

        batcher = MicroBatcher(
            runner,
            max_batch_size=4,
            max_latency=0.002,
            capacity=512,
            dispatch_workers=4,
        )
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def client(cid: int) -> None:
            try:
                futures = [batcher.submit("k", (cid, n)) for n in range(8)]
                results[cid] = [future.result(60.0) for future in futures]
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(cid,)) for cid in range(32)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors
        # exactly-once, in submission order, tied to the right client
        for cid in range(32):
            assert results[cid] == [("done", (cid, n)) for n in range(8)]
        snapshot = batcher.snapshot()
        assert snapshot["submitted"] == 256
        assert snapshot["completed"] == 256
        assert snapshot["rejected"] == 0
        assert snapshot["failed"] == 0
        assert batcher.close()
        assert batcher.snapshot()["queue_depth"] == 0

    def test_429_only_when_genuinely_full(self):
        gate = threading.Event()

        def gated(key, payloads):
            gate.wait(30.0)
            return list(payloads)

        batcher = MicroBatcher(
            gated, max_batch_size=1, max_latency=0.0, capacity=2, dispatch_workers=2
        )
        admitted = []
        try:
            with pytest.raises(BatchQueueFull) as excinfo:
                # the dispatch pipeline absorbs a few batches before the
                # admission queue can back up, so keep submitting until
                # the bound actually bites
                for n in range(64):
                    admitted.append(batcher.submit("k", n))
                    time.sleep(0.005)
            # rejection happened at genuine capacity, not before
            assert excinfo.value.depth == excinfo.value.capacity == 2
            assert len(admitted) >= 2
        finally:
            gate.set()
        assert sorted(future.result(30.0) for future in admitted) == sorted(
            range(len(admitted))
        )
        # pressure released: the queue admits again
        assert batcher.submit("k", "after").result(30.0) == "after"
        snapshot = batcher.snapshot()
        assert snapshot["rejected"] == 1
        assert snapshot["failed"] == 0
        batcher.close()


# ----------------------------------------------------------------------
# HTTP service
# ----------------------------------------------------------------------


@pytest.fixture()
def service_server():
    """A live daemon on an ephemeral port, torn down after the test."""
    server = make_server(port=0, max_latency=0.01)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.service.drain(timeout=10.0)
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def client_for(server, **kwargs) -> ServiceClient:
    host, port = server.server_address[:2]
    return ServiceClient(host=host, port=port, **kwargs)


class TestHTTPService:
    def test_healthz(self, service_server):
        health = client_for(service_server).healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_validate_roundtrip_and_stats(self, service_server, valid_acc_source):
        client = client_for(service_server)
        response = client.validate({"good.c": valid_acc_source})
        assert response["summary"] == {"total": 1, "valid": 1, "invalid": 0}
        assert response["verdicts"][0]["verdict"] == "valid"
        assert response["verdicts"][0]["stage"] == "judge"
        assert set(response["timings"]) == {"queued_ms", "wall_ms", "stages"}
        assert response["timings"]["stages"]["compile"]["processed"] == 1

        stats = client.stats()
        assert stats["service"]["validate_requests"] == 1
        assert stats["service"]["batching"]["completed"] == 1
        assert stats["pipeline"]["files_total"] == 1
        assert stats["pipeline"]["stages"]["judge"]["processed"] == 1

    def test_lifetime_stats_walls_sum_across_batches(
        self, service_server, valid_acc_source
    ):
        """Sequential batches sum their walls, so lifetime throughput is
        files over the whole serving period — not over the slowest batch."""
        client = client_for(service_server)
        client.validate({"one.c": valid_acc_source})
        wall_after_one = client.stats()["pipeline"]["wall_seconds"]
        client.validate({"two.c": valid_acc_source})
        wall_after_two = client.stats()["pipeline"]["wall_seconds"]
        assert wall_after_two > wall_after_one

    def test_judge_endpoint(self, service_server, valid_acc_source):
        client = client_for(service_server)
        response = client.judge("good.c", valid_acc_source)
        assert response["says_valid"] is True
        assert response["result"]["prompt_mode"] == "agent-direct"
        stats = client.stats()
        assert stats["service"]["judge_requests"] == 1

    def test_judge_with_supplied_report(self, service_server, valid_acc_source):
        client = client_for(service_server)
        response = client.judge(
            "good.c", valid_acc_source,
            report={"compile_rc": 1, "compile_stderr": "error: nope"},
        )
        assert response["result"]["tool_report"]["compile_rc"] == 1

    def test_malformed_body_is_400(self, service_server):
        client = client_for(service_server)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/validate", {"files": "nope"})
        assert excinfo.value.status == 400

    def test_unknown_path_is_404(self, service_server):
        client = client_for(service_server)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_concurrent_clients_get_byte_identical_verdicts(
        self, service_server, valid_acc_source
    ):
        """The serving contract: batching must not change any verdict."""
        client = client_for(service_server)
        broken = valid_acc_source.replace("{", "", 1)
        sources = {
            f"case{i}.c": valid_acc_source.replace("3.0", f"{i + 2}.0")
            for i in range(6)
        }
        sources["broken.c"] = broken

        responses: dict[str, dict] = {}
        errors: list[Exception] = []

        def hit(name: str, source: str) -> None:
            try:
                responses[name] = client.validate({name: source})
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(name, source))
            for name, source in sources.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors

        direct = TestsuiteValidator(flavor="acc").validate_sources(sources)
        for name in sources:
            expected = [encode_verdict(direct.verdict_for(name))]
            assert responses[name]["verdicts"] == expected, name

        # concurrency actually exercised the batcher
        snapshot = service_server.service.batcher.snapshot()
        assert snapshot["completed"] == len(sources)

    def test_same_name_different_content_stays_correct(
        self, service_server, valid_acc_source
    ):
        """Colliding names split into chunks, never cross-contaminate."""
        client = client_for(service_server)
        variant = valid_acc_source.replace("{", "", 1)  # invalid variant

        results: dict[str, dict] = {}

        def hit(tag: str, source: str) -> None:
            results[tag] = client.validate({"same.c": source})

        threads = [
            threading.Thread(target=hit, args=("good", valid_acc_source)),
            threading.Thread(target=hit, args=("bad", variant)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)

        assert results["good"]["verdicts"][0]["verdict"] == "valid"
        assert results["bad"]["verdicts"][0]["verdict"] == "invalid"
        assert results["bad"]["verdicts"][0]["stage"] == "compile"

    def test_429_backpressure_and_retry_after(self, valid_acc_source):
        server = make_server(port=0, queue_capacity=1, max_batch_size=1, max_latency=0.0)
        service = server.service
        gate = threading.Event()
        inner = service.batcher.runner

        def gated(key, payloads):
            gate.wait(20.0)
            return inner(key, payloads)

        service.batcher.runner = gated
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            fast_fail = ServiceClient(host=host, port=port, max_retries=0)
            background: list = []

            def occupy():
                background.append(fast_fail.validate({"a.c": valid_acc_source}))

            holders = [threading.Thread(target=occupy) for _ in range(2)]
            # sequence the holders so the first is in-flight (popped by
            # the collector) before the second takes the only queue slot
            holders[0].start()
            deadline = time.monotonic() + 5.0
            while service.batcher.snapshot()["batches"] < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            holders[1].start()
            while service.batcher.depth < 1 and time.monotonic() < deadline:
                time.sleep(0.01)

            with pytest.raises(ServiceUnavailable) as excinfo:
                fast_fail.validate({"b.c": valid_acc_source})
            assert excinfo.value.status == 429
            assert float(excinfo.value.body["retry_after"]) > 0

            # a retrying client rides out the pressure once the gate opens
            retrying = ServiceClient(host=host, port=port, max_retries=5)
            threading.Timer(0.2, gate.set).start()
            response = retrying.validate({"c.c": valid_acc_source})
            assert response["summary"]["valid"] == 1
            for holder in holders:
                holder.join(20.0)
            assert len(background) == 2
        finally:
            gate.set()
            service.drain(timeout=10.0)
            server.shutdown()
            server.server_close()
            thread.join(10.0)

    def test_clean_drain_completes_queued_work_and_flushes_cache(
        self, tmp_path, valid_acc_source
    ):
        from repro.cache.bundle import PipelineCache

        cache = PipelineCache(cache_dir=tmp_path / "cache")
        server = make_server(port=0, cache=cache, max_latency=0.01)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(host=host, port=port)
        response = client.validate({"good.c": valid_acc_source})
        assert response["summary"]["valid"] == 1

        server.drain_and_shutdown(timeout=10.0)
        server.server_close()
        thread.join(10.0)

        # drain flushed the persistent namespaces to disk
        assert (tmp_path / "cache" / "execute.json").is_file()
        assert (tmp_path / "cache" / "judge.json").is_file()
        # and the daemon no longer admits work
        health = server.service.health()
        assert health["status"] == "draining"

    def test_post_validate_during_drain_is_503(self, valid_acc_source):
        server = make_server(port=0, max_latency=0.01)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(host=host, port=port)
            server.service.drain(timeout=10.0)
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.validate({"a.c": valid_acc_source})
            assert excinfo.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            thread.join(10.0)

    def test_serve_cli_sigterm_drains_and_flushes(self, tmp_path, valid_acc_source):
        """The daemon as a real process: ``llm4vv serve`` + SIGTERM.

        TERM must map onto the graceful path — drain the batcher, flush
        the cache to disk, exit 0 — not kill the process mid-write.
        """
        repo_root = Path(__file__).resolve().parents[1]
        env = {**os.environ, "PYTHONPATH": str(repo_root / "src")}
        cache_dir = tmp_path / "cache"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", "--port", "0",
                "--cache-dir", str(cache_dir), "--max-latency-ms", "5",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[^:]+:(\d+)", banner)
            assert match, f"no address in serve banner: {banner!r}"
            client = ServiceClient(port=int(match.group(1)), timeout=30)
            response = client.validate({"good.c": valid_acc_source})
            assert response["summary"]["valid"] == 1

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            # the drain flushed warm results for the next process
            assert (cache_dir / "execute.json").is_file()
            assert (cache_dir / "judge.json").is_file()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=10)

    def test_warm_cache_hits_show_in_stats(self, valid_acc_source):
        from repro.cache.bundle import PipelineCache

        server = make_server(port=0, cache=PipelineCache(), max_latency=0.01)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = client_for(server)
            client.validate({"good.c": valid_acc_source})
            cold = client.stats()["cache"]
            client.validate({"good.c": valid_acc_source})
            warm = client.stats()["cache"]
            assert warm["hits"] > cold["hits"]
        finally:
            server.service.drain(timeout=10.0)
            server.shutdown()
            server.server_close()
            thread.join(10.0)


class TestHTTPServiceUnderPool:
    """The full HTTP stack over a 2-process worker pool, hammered by 32
    concurrent clients — the serving path CI's service-smoke job boots."""

    def test_32_concurrent_clients_against_pooled_daemon(self, valid_acc_source):
        server = make_server(
            port=0, max_latency=0.005, workers=2, queue_capacity=128
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        responses: dict[int, dict] = {}
        errors: list[BaseException] = []

        def hit(cid: int) -> None:
            try:
                client = client_for(server, timeout=120.0)
                responses[cid] = client.validate({f"client{cid}.c": valid_acc_source})
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        try:
            clients = [
                threading.Thread(target=hit, args=(cid,)) for cid in range(32)
            ]
            for worker in clients:
                worker.start()
            for worker in clients:
                worker.join(120.0)
            assert not errors
            for cid in range(32):
                assert responses[cid]["summary"] == {
                    "total": 1, "valid": 1, "invalid": 0,
                }
            stats = client_for(server).stats()
        finally:
            server.service.drain(timeout=30.0)
            server.shutdown()
            server.server_close()
            thread.join(10.0)
        service = stats["service"]
        assert service["validate_requests"] == 32
        assert service["batching"]["submitted"] == 32
        assert service["batching"]["completed"] == 32
        assert service["batching"]["failed"] == 0
        assert service["workers"]["configured"] == 2
        assert service["workers"]["alive"] == 2
        assert service["workers"]["batches_dispatched"] >= 1
        # every file validated exactly once, across however many batches
        assert stats["pipeline"]["stages"]["compile"]["processed"] == 32


class TestClientRetry:
    """The retry loop itself, with ``_roundtrip`` stubbed out — no
    sockets, so each case pins down exactly how many attempts and
    sleeps a failure mode costs."""

    @staticmethod
    def _patched(monkeypatch, client, outcomes):
        """Feed ``outcomes`` (exception instances or (status, headers,
        payload) tuples) to successive attempts; record sleeps."""
        attempts = []
        sleeps = []

        def roundtrip(method, path, body):
            attempts.append(path)
            outcome = outcomes[min(len(attempts), len(outcomes)) - 1]
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        monkeypatch.setattr(client, "_roundtrip", roundtrip)
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        return attempts, sleeps

    def test_connection_errors_backoff_then_reraise(self, monkeypatch):
        client = ServiceClient(max_retries=3, backoff_base=0.01)
        attempts, sleeps = self._patched(
            monkeypatch, client, [ConnectionRefusedError("daemon down")]
        )
        with pytest.raises(ConnectionRefusedError):
            client.healthz()
        assert len(attempts) == 4  # initial try + max_retries
        assert len(sleeps) == 3
        assert all(s > 0 for s in sleeps)

    def test_503_retries_until_the_daemon_returns(self, monkeypatch):
        client = ServiceClient(max_retries=3, backoff_base=0.01)
        attempts, sleeps = self._patched(
            monkeypatch, client,
            [
                (503, {}, {"error": "draining"}),
                ConnectionResetError("restarting"),
                (200, {}, {"status": "ok"}),
            ],
        )
        assert client.healthz() == {"status": "ok"}
        assert len(attempts) == 3
        assert len(sleeps) == 2

    def test_429_sleeps_for_the_server_hint(self, monkeypatch):
        client = ServiceClient(max_retries=2)
        attempts, sleeps = self._patched(
            monkeypatch, client,
            [(429, {"Retry-After": "0.07"}, {}), (200, {}, {})],
        )
        client.healthz()
        assert sleeps == [0.07]

    def test_max_elapsed_caps_the_retry_budget(self, monkeypatch):
        client = ServiceClient(max_retries=50, max_elapsed=0.0)
        attempts, _ = self._patched(
            monkeypatch, client, [ConnectionRefusedError("down")]
        )
        with pytest.raises(ConnectionRefusedError):
            client.healthz()
        assert len(attempts) == 1  # budget exhausted before any retry

    def test_backoff_is_jittered_and_capped(self):
        client = ServiceClient(backoff_base=0.05)
        first = [client._backoff(1) for _ in range(50)]
        assert all(0.025 <= s < 0.05 for s in first)
        assert len(set(first)) > 1, "no jitter"
        assert all(client._backoff(20) <= 2.0 for _ in range(10))

    def test_backoff_seed_makes_retry_timing_deterministic(self):
        schedule = [
            ServiceClient(backoff_seed=7)._backoff(attempt) for attempt in (1, 2, 3, 4)
        ]
        assert schedule == [
            ServiceClient(backoff_seed=7)._backoff(attempt) for attempt in (1, 2, 3, 4)
        ]
        assert schedule != [
            ServiceClient(backoff_seed=8)._backoff(attempt) for attempt in (1, 2, 3, 4)
        ]

    def test_backoff_never_touches_the_global_rng(self):
        """Client jitter must come from a private Random: retrying mid-
        experiment cannot perturb application-level seeding, and two
        unseeded clients still jitter independently."""
        import random as global_random

        global_random.seed(1234)
        expected = [global_random.random() for _ in range(3)]
        global_random.seed(1234)
        client = ServiceClient()
        for attempt in (1, 2, 3, 4, 5):
            client._backoff(attempt)
        assert [global_random.random() for _ in range(3)] == expected
        assert ServiceClient()._backoff(1) != ServiceClient()._backoff(1)


class TestGetErrorHandling:
    def test_stats_failure_answers_500_not_dropped_socket(self, service_server, monkeypatch):
        """do_GET must mirror do_POST's catch-all: an exception inside a
        stats provider becomes an HTTP 500, not an empty reply."""
        def boom():
            raise RuntimeError("stats provider broke")

        monkeypatch.setattr(service_server.service, "stats_snapshot", boom)
        client = client_for(service_server)
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.status == 500
        assert "internal error" in str(excinfo.value)

    def test_fuzz_stats_endpoint(self, service_server):
        snap = client_for(service_server).fuzz_stats()
        assert set(snap) >= {"campaigns", "executions", "discrepancies"}


class TestServeBindErrors:
    def test_port_in_use_exits_2_with_message(self, capsys):
        from repro.cli import main as cli_main

        blocker = make_server(port=0)
        try:
            host, port = blocker.server_address[:2]
            rc = cli_main(["serve", "--port", str(port), "--no-cache"])
            assert rc == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.server_close()
