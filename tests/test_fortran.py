"""Unit tests for the Fortran-lite front-end."""

from repro.compiler.driver import Compiler
from repro.runtime.executor import Executor


def compile_f(source: str):
    return Compiler(model="acc").compile(source, "t.f90")


def run_f(source: str):
    compiled = compile_f(source)
    assert compiled.ok, compiled.stderr
    return Executor().run(compiled)


class TestFortranBasics:
    def test_valid_program_compiles_and_passes(self, valid_f90_source):
        result = run_f(valid_f90_source)
        assert result.returncode == 0
        assert "PASSED" in result.stdout

    def test_missing_program_statement(self):
        result = compile_f("  implicit none\n  print *, 1\nend program\n")
        assert result.has_code("no-main")

    def test_missing_end_program(self):
        result = compile_f("program p\n  implicit none\n  print *, 1\n")
        assert result.has_code("unbalanced-block")

    def test_stop_code_becomes_return_code(self):
        result = run_f("program p\n  implicit none\n  stop 3\nend program p\n")
        assert result.returncode == 3

    def test_print_output(self):
        result = run_f('program p\n  implicit none\n  print *, "hello"\nend program p\n')
        assert "hello" in result.stdout


class TestFortranBlocks:
    def test_unbalanced_do(self):
        src = "program p\n  implicit none\n  integer :: i\n  do i = 1, 3\n    print *, i\nend program p\n"
        result = compile_f(src)
        assert result.has_code("unbalanced-block")

    def test_end_do_without_do(self):
        src = "program p\n  implicit none\n  end do\nend program p\n"
        result = compile_f(src)
        assert result.has_code("unbalanced-block")

    def test_if_then_else(self):
        src = """program p
  implicit none
  integer :: x
  x = 2
  if (x > 1) then
    print *, "big"
  else
    print *, "small"
  end if
end program p
"""
        result = run_f(src)
        assert "big" in result.stdout

    def test_single_line_if(self):
        src = "program p\n  implicit none\n  integer :: x\n  x = 5\n  if (x > 1) stop 2\nend program p\n"
        result = run_f(src)
        assert result.returncode == 2

    def test_do_loop_with_step(self):
        src = """program p
  implicit none
  integer :: i, total
  total = 0
  do i = 1, 10, 2
    total = total + i
  end do
  if (total /= 25) stop 1
end program p
"""
        result = run_f(src)
        assert result.returncode == 0


class TestFortranSemantics:
    def test_undeclared_variable(self):
        src = "program p\n  implicit none\n  q = 1.0\nend program p\n"
        result = compile_f(src)
        assert result.has_code("undeclared")

    def test_declaration_after_executable(self):
        src = "program p\n  implicit none\n  integer :: a\n  a = 1\n  integer :: b\nend program p\n"
        result = compile_f(src)
        assert result.has_code("late-declaration")

    def test_arrays_one_based(self):
        src = """program p
  implicit none
  integer :: i
  real(8) :: v(3)
  do i = 1, 3
    v(i) = i * 2.0
  end do
  if (abs(v(1) - 2.0) > 1.0e-9) stop 1
  if (abs(v(3) - 6.0) > 1.0e-9) stop 2
end program p
"""
        result = run_f(src)
        assert result.returncode == 0

    def test_parameter_declaration(self):
        src = """program p
  implicit none
  integer, parameter :: n = 4
  integer :: i, total
  total = 0
  do i = 1, n
    total = total + 1
  end do
  if (total /= n) stop 1
end program p
"""
        assert run_f(src).returncode == 0


class TestFortranDirectives:
    def test_acc_directive_validated(self):
        src = """program p
  implicit none
  integer :: i
  real(8) :: a(8)
  !$acc paralel loop
  do i = 1, 8
    a(i) = i
  end do
end program p
"""
        result = compile_f(src)
        assert result.has_code("bad-directive")

    def test_directive_requires_loop(self):
        src = """program p
  implicit none
  integer :: i
  !$acc parallel loop
  end do
end program p
"""
        result = compile_f(src)
        assert result.error_count >= 1

    def test_reduction_runs(self):
        src = """program p
  implicit none
  integer :: i
  real(8) :: a(16)
  real(8) :: total, expected
  total = 0.0
  expected = 0.0
  do i = 1, 16
    a(i) = i * 1.0
    expected = expected + a(i)
  end do
  !$acc parallel loop copyin(a) reduction(+:total)
  do i = 1, 16
    total = total + a(i)
  end do
  if (abs(total - expected) > 1.0e-9) stop 1
end program p
"""
        assert run_f(src).returncode == 0

    def test_corpus_fortran_templates_pass(self, fortran_corpus):
        executor = Executor()
        compiler = Compiler(model="acc")
        for test in fortran_corpus:
            compiled = compiler.compile(test.source, test.name)
            assert compiled.ok, f"{test.name}: {compiled.stderr}"
            result = executor.run(compiled)
            assert result.returncode == 0, f"{test.name}: {result.stderr}"
