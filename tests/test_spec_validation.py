"""Unit tests for OpenACC/OpenMP directive validation tables."""

from repro.compiler import openacc_spec, openmp_spec
from repro.compiler.diagnostics import DiagnosticEngine, SourceLocation
from repro.compiler.pragma import parse_directive

LOC = SourceLocation("t.c", 1, 1)


def validate_acc(text: str):
    diags = DiagnosticEngine()
    d = parse_directive(text, LOC, diags, openacc_spec.DIRECTIVE_NAMES, openacc_spec.CLAUSE_NAMES)
    ok = openacc_spec.validate_directive(d, diags) if d else False
    return ok, diags


def validate_omp(text: str, max_version: float = 4.5):
    diags = DiagnosticEngine()
    d = parse_directive(text, LOC, diags, openmp_spec.DIRECTIVE_NAMES, openmp_spec.CLAUSE_NAMES)
    ok = openmp_spec.validate_directive(d, diags, max_version=max_version) if d else False
    return ok, diags


class TestOpenACCValidation:
    def test_parallel_loop_with_data_clauses_ok(self):
        ok, diags = validate_acc("#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])")
        assert ok and not diags.has_errors

    def test_clause_not_allowed(self):
        ok, diags = validate_acc("#pragma acc wait copyin(a)")
        assert not ok
        assert "clause-not-allowed" in diags.codes()

    def test_data_clause_requires_variable_list(self):
        ok, diags = validate_acc("#pragma acc data copyin")
        assert not ok
        assert "clause-needs-arg" in diags.codes()

    def test_reduction_requires_operator(self):
        ok, diags = validate_acc("#pragma acc parallel loop reduction(sum)")
        assert not ok
        assert "bad-reduction" in diags.codes()

    def test_reduction_bad_operator(self):
        ok, diags = validate_acc("#pragma acc parallel loop reduction(avg:x)")
        assert "bad-reduction" in diags.codes()

    def test_reduction_valid_operators(self):
        for op in ("+", "*", "max", "min", "&&"):
            ok, diags = validate_acc(f"#pragma acc parallel loop reduction({op}:x)")
            assert ok, f"operator {op} should validate: {diags.render_stderr()}"

    def test_seq_conflicts_with_gang(self):
        ok, diags = validate_acc("#pragma acc loop seq gang")
        assert not ok
        assert "clause-conflict" in diags.codes()

    def test_atomic_single_kind(self):
        ok, diags = validate_acc("#pragma acc atomic read write")
        assert "clause-conflict" in diags.codes()

    def test_enter_data_needs_action_clause(self):
        ok, diags = validate_acc("#pragma acc enter data if(1)")
        assert "missing-clause" in diags.codes()

    def test_exit_data_needs_action_clause(self):
        ok, diags = validate_acc("#pragma acc exit data async")
        assert "missing-clause" in diags.codes()

    def test_update_needs_direction(self):
        ok, diags = validate_acc("#pragma acc update async")
        assert "missing-clause" in diags.codes()

    def test_default_argument_restricted(self):
        ok, diags = validate_acc("#pragma acc parallel default(everything)")
        assert "bad-default" in diags.codes()

    def test_default_none_ok(self):
        ok, _ = validate_acc("#pragma acc parallel default(none)")
        assert ok

    def test_duplicate_clause_warns(self):
        _, diags = validate_acc("#pragma acc parallel num_gangs(2) num_gangs(4)")
        assert diags.warning_count >= 1

    def test_kernels_rejects_private(self):
        ok, diags = validate_acc("#pragma acc kernels private(x)")
        assert "clause-not-allowed" in diags.codes()


class TestOpenMPValidation:
    def test_parallel_for_ok(self):
        ok, diags = validate_omp("#pragma omp parallel for schedule(static) private(x)")
        assert ok and not diags.has_errors

    def test_target_map_ok(self):
        ok, _ = validate_omp("#pragma omp target map(tofrom: a[0:N])")
        assert ok

    def test_bad_map_type(self):
        ok, diags = validate_omp("#pragma omp target map(sideways: a)")
        assert "bad-map" in diags.codes()

    def test_release_only_on_exit_data(self):
        ok, diags = validate_omp("#pragma omp target map(release: a)")
        assert "bad-map" in diags.codes()

    def test_release_allowed_on_exit_data(self):
        ok, _ = validate_omp("#pragma omp target exit data map(release: a)")
        assert ok

    def test_bad_schedule_kind(self):
        ok, diags = validate_omp("#pragma omp parallel for schedule(whenever)")
        assert "bad-schedule" in diags.codes()

    def test_schedule_with_chunk(self):
        ok, _ = validate_omp("#pragma omp parallel for schedule(static, 16)")
        assert ok

    def test_depend_requires_type(self):
        ok, diags = validate_omp("#pragma omp task depend(x)")
        assert "bad-depend" in diags.codes()

    def test_depend_valid(self):
        ok, _ = validate_omp("#pragma omp task depend(inout: x)")
        assert ok

    def test_proc_bind_values(self):
        ok, diags = validate_omp("#pragma omp parallel proc_bind(diagonal)")
        assert "bad-proc-bind" in diags.codes()

    def test_target_enter_data_needs_map(self):
        ok, diags = validate_omp("#pragma omp target enter data if(1)")
        assert "missing-clause" in diags.codes()

    def test_target_update_needs_direction(self):
        ok, diags = validate_omp("#pragma omp target update if(1)")
        assert "missing-clause" in diags.codes()

    def test_cancel_needs_construct_type(self):
        ok, diags = validate_omp("#pragma omp cancel if(1)")
        assert "missing-clause" in diags.codes()


class TestOpenMPVersionGate:
    def test_post_45_directive_rejected_at_45(self):
        ok, diags = validate_omp("#pragma omp masked")
        assert not ok
        assert "unsupported-feature" in diags.codes()

    def test_loop_directive_is_50(self):
        ok, diags = validate_omp("#pragma omp loop")
        assert "unsupported-feature" in diags.codes()

    def test_post_45_accepted_at_51(self):
        ok, _ = validate_omp("#pragma omp masked", max_version=5.1)
        assert ok

    def test_taskloop_is_45(self):
        ok, _ = validate_omp("#pragma omp taskloop")
        assert ok

    def test_45_rejected_at_40(self):
        ok, diags = validate_omp("#pragma omp target enter data map(to: a)", max_version=4.0)
        assert "unsupported-feature" in diags.codes()


class TestSpecTables:
    def test_all_acc_loop_directives_require_loop(self):
        for name in openacc_spec.LOOP_DIRECTIVES:
            assert openacc_spec.DIRECTIVES[name].requires_loop

    def test_acc_clause_names_superset_of_allowed(self):
        for spec in openacc_spec.DIRECTIVES.values():
            assert spec.allowed <= openacc_spec.CLAUSE_NAMES

    def test_omp_clause_names_superset_of_allowed(self):
        for spec in openmp_spec.DIRECTIVES.values():
            assert spec.allowed <= openmp_spec.CLAUSE_NAMES

    def test_omp_combined_directives_cover_components(self):
        combined = openmp_spec.DIRECTIVES["target teams distribute parallel for"]
        assert "map" in combined.allowed
        assert "num_teams" in combined.allowed
        assert "schedule" in combined.allowed

    def test_runtime_function_tables_disjoint(self):
        assert not (openacc_spec.RUNTIME_FUNCTIONS & openmp_spec.RUNTIME_FUNCTIONS)
