"""Unit tests for the interpreter and execution substrate."""

import pytest

from repro.compiler.driver import Compiler
from repro.runtime.executor import Executor


def run_c(source: str, model: str = "acc", step_limit: int = 2_000_000):
    compiled = Compiler(model=model).compile(source, "t.c")
    assert compiled.ok, compiled.stderr
    return Executor(step_limit=step_limit).run(compiled)


def wrap_main(body: str, includes: str = "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n#include <openacc.h>\n") -> str:
    return f"{includes}\nint main() {{\n{body}\n}}\n"


class TestScalarsAndArithmetic:
    def test_return_code(self):
        assert run_c(wrap_main("return 7;")).returncode == 7

    def test_return_code_masked_to_byte(self):
        assert run_c(wrap_main("return 300;")).returncode == 300 & 0xFF

    def test_integer_arithmetic(self):
        assert run_c(wrap_main("int a = 7; int b = 3; return a / b;")).returncode == 2

    def test_truncating_division_toward_zero(self):
        assert run_c(wrap_main("int a = -7; return -(a / 2);")).returncode == 3

    def test_modulo_c_semantics(self):
        assert run_c(wrap_main("int a = -7; return -(a % 3);")).returncode == 1

    def test_float_arithmetic(self):
        result = run_c(wrap_main('double x = 0.5 * 4.0; printf("%f\\n", x); return 0;'))
        assert "2.0" in result.stdout

    def test_division_by_zero_is_sigfpe(self):
        result = run_c(wrap_main("int z = 0; return 1 / z;"))
        assert result.returncode == 136
        assert "Floating point exception" in result.stderr

    def test_float_division_by_zero_is_inf(self):
        result = run_c(wrap_main('double z = 0.0; double r = 1.0 / z; printf("%d\\n", isinf(r)); return 0;'))
        assert result.stdout.strip() == "1"

    def test_compound_assignment(self):
        assert run_c(wrap_main("int a = 5; a += 3; a *= 2; a -= 1; return a;")).returncode == 15

    def test_increment_decrement(self):
        body = "int a = 0; int b = a++; int c = ++a; return b * 10 + c;"
        assert run_c(wrap_main(body)).returncode == 2

    def test_ternary(self):
        assert run_c(wrap_main("int a = 5; return a > 3 ? 1 : 2;")).returncode == 1

    def test_short_circuit_and(self):
        body = "int z = 0; int ok = (z != 0) && (1 / z > 0); return ok;"
        assert run_c(wrap_main(body)).returncode == 0

    def test_bitwise_operators(self):
        assert run_c(wrap_main("return (6 & 3) | (1 << 2);")).returncode == 6

    def test_int_overflow_wraps_at_32_bits(self):
        body = "int a = 2147483647; a = a + 1; return a < 0 ? 1 : 0;"
        assert run_c(wrap_main(body)).returncode == 1


class TestControlFlow:
    def test_for_loop_sum(self):
        body = "int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s - 55;"
        assert run_c(wrap_main(body)).returncode == 0

    def test_while_loop(self):
        body = "int i = 0; while (i < 5) { i++; } return i;"
        assert run_c(wrap_main(body)).returncode == 5

    def test_do_while_runs_once(self):
        body = "int i = 10; do { i++; } while (i < 5); return i;"
        assert run_c(wrap_main(body)).returncode == 11

    def test_break(self):
        body = "int i; for (i = 0; i < 100; i++) { if (i == 3) break; } return i;"
        assert run_c(wrap_main(body)).returncode == 3

    def test_continue(self):
        body = "int s = 0; for (int i = 0; i < 6; i++) { if (i % 2) continue; s += i; } return s;"
        assert run_c(wrap_main(body)).returncode == 6

    def test_nested_loops(self):
        body = "int s = 0; for (int i = 0; i < 3; i++) for (int j = 0; j < 3; j++) s++; return s;"
        assert run_c(wrap_main(body)).returncode == 9

    def test_step_limit_is_timeout(self):
        result = run_c(wrap_main("while (1) { } return 0;"), step_limit=10_000)
        assert result.returncode == 124
        assert result.timed_out


class TestFunctions:
    def test_user_function_call(self):
        src = """#include <stdio.h>
int add(int a, int b) { return a + b; }
int main() { return add(2, 3); }
"""
        assert run_c(src).returncode == 5

    def test_recursion(self):
        src = """#include <stdio.h>
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main() { return fact(5) - 115; }
"""
        assert run_c(src).returncode == 5

    def test_runaway_recursion_is_stack_overflow(self):
        src = """#include <stdio.h>
int f(int n) { return f(n + 1); }
int main() { return f(0); }
"""
        result = run_c(src)
        assert result.returncode in (124, 139)

    def test_array_decays_to_pointer_argument(self):
        src = """#include <stdio.h>
double total(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}
int main() {
    double v[4] = {1.0, 2.0, 3.0, 4.0};
    return (int)total(v, 4) - 10;
}
"""
        assert run_c(src).returncode == 0


class TestMemory:
    def test_malloc_and_store(self):
        body = (
            "double *p = (double*)malloc(8 * sizeof(double));"
            "p[3] = 2.5; return (int)(p[3] * 2.0);"
        )
        assert run_c(wrap_main(body)).returncode == 5

    def test_uninitialized_pointer_deref_segfaults(self):
        result = run_c(wrap_main("double *p; p[0] = 1.0; return 0;"))
        assert result.returncode == 139
        assert "Segmentation fault" in result.stderr

    def test_out_of_bounds_heap_access_segfaults(self):
        body = "double *p = (double*)malloc(4 * sizeof(double)); p[100] = 1.0; return 0;"
        assert run_c(wrap_main(body)).returncode == 139

    def test_out_of_bounds_array_access_segfaults(self):
        assert run_c(wrap_main("int a[4]; a[9] = 1; return 0;")).returncode == 139

    def test_use_after_free_segfaults(self):
        body = (
            "double *p = (double*)malloc(8); free(p); p[0] = 1.0; return 0;"
        )
        assert run_c(wrap_main(body)).returncode == 139

    def test_double_free_segfaults(self):
        body = "double *p = (double*)malloc(8); free(p); free(p); return 0;"
        assert run_c(wrap_main(body)).returncode == 139

    def test_two_dimensional_array(self):
        body = (
            "int m[3][4]; for (int i = 0; i < 3; i++) for (int j = 0; j < 4; j++)"
            " m[i][j] = i * 4 + j; return m[2][3] - 11;"
        )
        assert run_c(wrap_main(body)).returncode == 0

    def test_initializer_list(self):
        body = "int a[3] = {4, 5, 6}; return a[0] + a[1] + a[2] - 15;"
        assert run_c(wrap_main(body)).returncode == 0

    def test_pointer_arithmetic(self):
        body = (
            "double *p = (double*)malloc(4 * sizeof(double));"
            "*(p + 2) = 7.0; return (int)p[2];"
        )
        assert run_c(wrap_main(body)).returncode == 7

    def test_sizeof_values(self):
        body = "return sizeof(double) - sizeof(int) - sizeof(float);"
        assert run_c(wrap_main(body)).returncode == 0


class TestStdio:
    def test_printf_formats(self):
        body = 'printf("%d %s %.2f %c\\n", 42, "ok", 3.14159, 65); return 0;'
        result = run_c(wrap_main(body))
        assert result.stdout == "42 ok 3.14 A\n"

    def test_printf_long(self):
        body = 'long big = 1234567890; printf("%ld\\n", big); return 0;'
        assert run_c(wrap_main(body)).stdout.strip() == "1234567890"

    def test_printf_percent_literal(self):
        assert run_c(wrap_main('printf("100%%\\n"); return 0;')).stdout == "100%\n"

    def test_exit_function(self):
        assert run_c(wrap_main("exit(9); return 0;")).returncode == 9

    def test_abort_is_sigabrt(self):
        assert run_c(wrap_main("abort(); return 0;")).returncode == 134

    def test_rand_deterministic(self):
        body = 'srand(42); int a = rand(); srand(42); int b = rand(); return a == b ? 0 : 1;'
        assert run_c(wrap_main(body)).returncode == 0

    def test_math_functions(self):
        body = (
            "double r = sqrt(16.0) + fabs(-2.0) + fmax(1.0, 3.0) + pow(2.0, 3.0);"
            "return (int)r - 17;"
        )
        assert run_c(wrap_main(body)).returncode == 0
