"""Unit tests for libc / OpenACC / OpenMP runtime builtins."""

from repro.compiler.driver import Compiler
from repro.runtime.builtins import LCG, format_printf
from repro.runtime.executor import Executor


def run(source: str, model: str = "acc"):
    compiled = Compiler(model=model).compile(source, "t.c")
    assert compiled.ok, compiled.stderr
    return Executor().run(compiled)


class TestPrintfFormatting:
    def test_basic_int(self):
        assert format_printf("%d", [42]) == "42"

    def test_width_and_precision(self):
        assert format_printf("%8.3f", [3.14159]) == "   3.142"

    def test_multiple_args(self):
        assert format_printf("%d-%d", [1, 2]) == "1-2"

    def test_percent_escape(self):
        assert format_printf("50%%", []) == "50%"

    def test_length_modifiers_stripped(self):
        assert format_printf("%ld %zu %lf", [10, 20, 1.5]) == "10 20 1.500000"

    def test_string_conversion(self):
        assert format_printf("[%s]", ["hi"]) == "[hi]"

    def test_char_conversion(self):
        assert format_printf("%c", [65]) == "A"

    def test_hex(self):
        assert format_printf("%x", [255]) == "ff"

    def test_missing_args_default_zero(self):
        assert format_printf("%d", []) == "0"

    def test_e_and_g(self):
        assert "e" in format_printf("%e", [12345.678])
        assert format_printf("%g", [0.5]) == "0.5"


class TestLCG:
    def test_deterministic(self):
        a, b = LCG(), LCG()
        a.srand(7)
        b.srand(7)
        assert [a.rand() for _ in range(5)] == [b.rand() for _ in range(5)]

    def test_range_non_negative(self):
        rng = LCG()
        rng.srand(123)
        for _ in range(100):
            assert 0 <= rng.rand() <= 0x7FFFFFFF


HEADER_ACC = "#include <stdio.h>\n#include <stdlib.h>\n#include <openacc.h>\n"
HEADER_OMP = "#include <stdio.h>\n#include <stdlib.h>\n#include <omp.h>\n"


class TestAccRuntime:
    def test_device_queries(self):
        src = HEADER_ACC + """
int main() {
    if (acc_get_num_devices(acc_device_default) < 1) return 1;
    acc_init(acc_device_default);
    if (acc_get_device_num(acc_device_default) < 0) return 2;
    acc_shutdown(acc_device_default);
    return 0;
}
"""
        assert run(src).returncode == 0

    def test_acc_copyin_is_present(self):
        src = HEADER_ACC + """
int main() {
    double a[4];
    acc_copyin(a, 4 * sizeof(double));
    if (!acc_is_present(a, 4 * sizeof(double))) return 1;
    acc_delete(a, 4 * sizeof(double));
    if (acc_is_present(a, 4 * sizeof(double))) return 2;
    return 0;
}
"""
        assert run(src).returncode == 0

    def test_acc_on_device_outside_region(self):
        src = HEADER_ACC + "int main() { return acc_on_device(acc_device_default); }"
        assert run(src).returncode == 0

    def test_async_api_noops(self):
        src = HEADER_ACC + """
int main() {
    acc_wait_all();
    if (!acc_async_test(0)) return 1;
    return 0;
}
"""
        assert run(src).returncode == 0


class TestOmpRuntime:
    def test_thread_queries_serial(self):
        src = HEADER_OMP + """
int main() {
    if (omp_get_num_threads() != 1) return 1;  /* outside parallel */
    if (omp_get_thread_num() != 0) return 2;
    if (omp_get_max_threads() < 1) return 3;
    if (omp_in_parallel()) return 4;
    return 0;
}
"""
        assert run(src, "omp").returncode == 0

    def test_num_threads_inside_parallel(self):
        src = HEADER_OMP + """
int main() {
    int seen = 0;
#pragma omp parallel
    {
        seen = omp_get_num_threads();
    }
    return seen >= 1 ? 0 : 1;
}
"""
        assert run(src, "omp").returncode == 0

    def test_set_num_threads(self):
        src = HEADER_OMP + """
int main() {
    omp_set_num_threads(6);
    return omp_get_max_threads() - 6;
}
"""
        assert run(src, "omp").returncode == 0

    def test_device_queries(self):
        src = HEADER_OMP + """
int main() {
    if (omp_get_num_devices() < 0) return 1;
    if (!omp_is_initial_device()) return 2;
    return omp_get_default_device();
}
"""
        assert run(src, "omp").returncode == 0

    def test_wtime_monotone(self):
        src = HEADER_OMP + """
int main() {
    double t0 = omp_get_wtime();
    for (int i = 0; i < 100; i++) { }
    double t1 = omp_get_wtime();
    return t1 >= t0 ? 0 : 1;
}
"""
        assert run(src, "omp").returncode == 0

    def test_locks_are_noops(self):
        src = HEADER_OMP + """
int main() {
    int lock = 0;
    omp_init_lock(&lock);
    omp_set_lock(&lock);
    omp_unset_lock(&lock);
    omp_destroy_lock(&lock);
    return 0;
}
"""
        assert run(src, "omp").returncode == 0


class TestStringBuiltins:
    def test_strlen_strcmp(self):
        src = HEADER_ACC + """
int main() {
    if (strlen("hello") != 5) return 1;
    if (strcmp("a", "a") != 0) return 2;
    if (strcmp("a", "b") >= 0) return 3;
    return 0;
}
"""
        assert run(src).returncode == 0

    def test_memset_memcpy(self):
        src = HEADER_ACC + """
#include <string.h>
int main() {
    double a[4];
    double b[4];
    for (int i = 0; i < 4; i++) { a[i] = 7.0; }
    memset(b, 0, 4 * sizeof(double));
    if (b[2] != 0.0) return 1;
    memcpy(b, a, 4 * sizeof(double));
    if (b[2] != 7.0) return 2;
    return 0;
}
"""
        assert run(src).returncode == 0

    def test_atoi_atof(self):
        src = HEADER_ACC + """
int main() {
    if (atoi("42") != 42) return 1;
    if (atof("2.5") != 2.5) return 2;
    return 0;
}
"""
        assert run(src).returncode == 0
