"""Unit tests for the closure-compilation backend's lowering machinery:
memoization, frame layout, slot annotations and the per-run binding."""

from __future__ import annotations

from repro.compiler import astnodes as ast
from repro.compiler.driver import Compiler
from repro.runtime.compilebody import LoweredProgram, lower_unit
from repro.runtime.executor import Executor
from repro.runtime.interpreter import Interpreter


def compile_unit(source: str, flavor: str = "acc"):
    compiled = Compiler(model=flavor).compile(source, "t.c")
    assert compiled.ok, compiled.stderr
    return compiled


class TestLowering:
    def test_lower_unit_memoizes_on_the_unit(self):
        compiled = compile_unit("int main() { return 0; }")
        first = lower_unit(compiled.unit)
        second = lower_unit(compiled.unit)
        assert first is second
        assert isinstance(first, LoweredProgram)

    def test_cached_compile_shares_lowered_program(self):
        """Recompiling the same source through a caching compiler hands
        back the same unit, hence the same lowered program."""
        from repro.cache.store import ResultCache
        from repro.cache.wrappers import CachingCompiler

        caching = CachingCompiler(Compiler(model="acc"), ResultCache("compile"))
        src = "int main() { return 3; }"
        a = caching.compile(src, "t.c")
        b = caching.compile(src, "t.c")
        assert a.unit is b.unit
        assert lower_unit(a.unit) is lower_unit(b.unit)

    def test_only_bodies_are_lowered(self):
        compiled = compile_unit(
            "double frexp2(double x);\n"
            "int helper(int n) { return n + 1; }\n"
            "int main() { return helper(1) - 2; }\n"
        )
        program = lower_unit(compiled.unit)
        assert set(program.functions) == {"helper", "main"}

    def test_frame_slots_annotation(self):
        compiled = compile_unit(
            "int main() {\n"
            "    int a = 1;\n"
            "    { int a = 2; int b = a; }\n"
            "    for (int i = 0; i < 3; i++) { int t = i; a += t; }\n"
            "    return a;\n"
            "}\n"
        )
        lower_unit(compiled.unit)
        main = compiled.unit.function("main")
        # a, inner a, b, i, t -> five distinct slots (shadowing never reuses)
        assert main.frame_slots == 5

    def test_identifier_slot_annotations(self):
        compiled = compile_unit(
            "int main() { int x = 1; int y = x + 1; return y; }"
        )
        lower_unit(compiled.unit)
        slots = [
            (expr.name, expr.slot)
            for expr in ast.walk_expressions(compiled.unit.function("main").body)
            if isinstance(expr, ast.Identifier)
        ]
        # the x inside `x + 1` resolved to slot 0, the returned y to slot 1
        assert slots == [("x", 0), ("y", 1)]

    def test_param_slots_bind_arguments(self):
        compiled = compile_unit(
            "int add3(int a, int b, int c) { return a + b + c; }\n"
            "int main() { return add3(1, 2, 3); }\n"
        )
        program = lower_unit(compiled.unit)
        add3 = program.functions["add3"]
        assert [spec[0] for spec in add3.param_specs] == [0, 1, 2]
        result = Executor(backend="closure").run(compiled)
        assert result.returncode == 6


class TestInterpreterBackendSurface:
    def test_invalid_backend_rejected(self):
        compiled = compile_unit("int main() { return 0; }")
        try:
            Interpreter(compiled.unit, backend="jit")
        except ValueError as exc:
            assert "backend" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_interpreter_public_surface_unchanged(self):
        compiled = compile_unit(
            '#include <stdio.h>\nint main() { printf("hi\\n"); return 4; }'
        )
        interp = Interpreter(compiled.unit, backend="closure")
        rc = interp.run()
        assert rc == 4
        assert "".join(interp.stdout) == "hi\n"
        assert interp.steps > 0

    def test_executor_backend_default_is_closure(self):
        assert Executor().backend == "closure"
