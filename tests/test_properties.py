"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.driver import Compiler
from repro.compiler.lexer import Lexer, TokenKind
from repro.judge.parser import Verdict, parse_judgment
from repro.llm.knowledge import edit_distance
from repro.llm.tokenizer import SimTokenizer
from repro.metrics.accuracy import EvaluationSet, bias, overall_accuracy
from repro.probing.randomcode import RandomCodeGenerator
from repro.runtime.builtins import format_printf
from repro.runtime.values import CArray, HeapBlock, MemoryFault, coerce_to_type
from repro.compiler.astnodes import INT, DOUBLE

import pytest
import random


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=300))
@settings(max_examples=150, deadline=None)
def test_lexer_always_terminates_and_ends_with_eof(text):
    """The lexer must terminate on arbitrary printable input."""
    tokens = Lexer(text, "fuzz.c", DiagnosticEngine(error_limit=10_000)).tokenize()
    assert tokens[-1].kind is TokenKind.EOF


@given(st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=100, deadline=None)
def test_lexer_integer_roundtrip(value):
    tokens = Lexer(str(value), "t.c").tokenize()
    assert tokens[0].kind is TokenKind.INT_LIT
    assert tokens[0].text == str(value)


@given(st.lists(st.sampled_from(["a", "+", "1", "(", ")", "{", "}", ";", '"s"', "1.5"]), max_size=40))
@settings(max_examples=100, deadline=None)
def test_lexer_token_count_bounded_by_input(parts):
    text = " ".join(parts)
    tokens = Lexer(text, "t.c").tokenize()
    assert len(tokens) <= len(parts) + 1


# ---------------------------------------------------------------------------
# compiler totality
# ---------------------------------------------------------------------------


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200))
@settings(max_examples=60, deadline=None)
def test_compiler_never_crashes_on_fuzz(text):
    result = Compiler(model="acc").compile(text, "fuzz.c")
    assert isinstance(result.returncode, int)


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------


@given(st.text(max_size=500))
@settings(max_examples=100, deadline=None)
def test_tokenizer_truncate_is_bounded(text):
    tok = SimTokenizer()
    for budget in (1, 10, 100):
        assert tok.count(tok.truncate(text, budget)) <= budget


@given(st.text(max_size=300), st.text(max_size=300))
@settings(max_examples=100, deadline=None)
def test_tokenizer_count_subadditive(a, b):
    tok = SimTokenizer()
    assert tok.count(a + b) <= tok.count(a) + tok.count(b) + 1


# ---------------------------------------------------------------------------
# edit distance
# ---------------------------------------------------------------------------


@given(st.text(alphabet="abcdef", max_size=10), st.text(alphabet="abcdef", max_size=10))
@settings(max_examples=150, deadline=None)
def test_edit_distance_symmetric_and_identity(a, b):
    cap = 20
    assert edit_distance(a, a, cap) == 0
    assert edit_distance(a, b, cap) == edit_distance(b, a, cap)


@given(st.text(alphabet="abc", max_size=8), st.text(alphabet="abc", max_size=8),
       st.text(alphabet="abc", max_size=8))
@settings(max_examples=100, deadline=None)
def test_edit_distance_triangle_inequality(a, b, c):
    cap = 50
    assert edit_distance(a, c, cap) <= edit_distance(a, b, cap) + edit_distance(b, c, cap)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


verdict_arrays = st.integers(min_value=1, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=0, max_value=5), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n),
    )
)


@given(verdict_arrays)
@settings(max_examples=150, deadline=None)
def test_bias_in_range_and_accuracy_bounded(data):
    issues, judged = data
    truth = [i == 5 for i in issues]
    evals = EvaluationSet(np.array(issues), np.array(truth), np.array(judged))
    assert 0.0 <= overall_accuracy(evals) <= 1.0
    assert -1.0 <= bias(evals) <= 1.0


@given(verdict_arrays)
@settings(max_examples=100, deadline=None)
def test_perfect_judge_has_perfect_metrics(data):
    issues, _ = data
    truth = [i == 5 for i in issues]
    evals = EvaluationSet(np.array(issues), np.array(truth), np.array(truth))
    assert overall_accuracy(evals) == 1.0
    assert bias(evals) == 0.0


@given(verdict_arrays)
@settings(max_examples=100, deadline=None)
def test_bias_sign_matches_mistake_composition(data):
    issues, judged = data
    truth = [i == 5 for i in issues]
    evals = EvaluationSet(np.array(issues), np.array(truth), np.array(judged))
    permissive = sum(1 for t, j in zip(truth, judged) if not t and j)
    restrictive = sum(1 for t, j in zip(truth, judged) if t and not j)
    value = bias(evals)
    if permissive > restrictive:
        assert value > 0
    elif restrictive > permissive:
        assert value < 0
    else:
        assert value == 0.0


# ---------------------------------------------------------------------------
# judgment parser
# ---------------------------------------------------------------------------


@given(st.text(max_size=200), st.sampled_from(["valid", "invalid", "correct", "incorrect"]))
@settings(max_examples=150, deadline=None)
def test_strict_phrase_always_parsed(prefix, word):
    if "FINAL JUDGEMENT" in prefix:
        prefix = prefix.replace("FINAL JUDGEMENT", "")
    text = prefix + f"\nFINAL JUDGEMENT: {word}"
    parsed = parse_judgment(text)
    assert parsed.ok and parsed.strict
    expected = Verdict.VALID if word in ("valid", "correct") else Verdict.INVALID
    assert parsed.verdict is expected


# ---------------------------------------------------------------------------
# values
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=200))
@settings(max_examples=150, deadline=None)
def test_heap_block_bounds_invariant(size, offset):
    block = HeapBlock(size=size)
    if offset + 8 <= size:
        block.store(offset, 8, 1.0)
        assert block.load(offset, 8) == 1.0
    else:
        with pytest.raises(MemoryFault):
            block.store(offset, 8, 1.0)


@given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3))
@settings(max_examples=100, deadline=None)
def test_carray_full_indexing_in_bounds_never_faults(dims):
    arr = CArray(DOUBLE, dims)
    rng = random.Random(0)
    for _ in range(10):
        idx = [rng.randrange(d) for d in dims]
        ptr = arr.subarray_pointer(idx)
        ptr.store(1.0)
        assert ptr.load() == 1.0


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
@settings(max_examples=100, deadline=None)
def test_coerce_int_truncates_toward_zero(value):
    result = coerce_to_type(float(value), INT)
    assert isinstance(result, int)


# ---------------------------------------------------------------------------
# printf
# ---------------------------------------------------------------------------


@given(st.integers(min_value=-10**9, max_value=10**9))
@settings(max_examples=100, deadline=None)
def test_printf_d_roundtrip(value):
    assert format_printf("%d", [value]) == str(value)


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60))
@settings(max_examples=100, deadline=None)
def test_printf_never_crashes(fmt):
    out = format_printf(fmt, [1, 2.0, "x", 0])
    assert isinstance(out, str)


# ---------------------------------------------------------------------------
# random-code generator
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_random_valid_code_always_compiles_and_runs(seed):
    generator = RandomCodeGenerator.with_seed(seed, valid_fraction=1.0)
    source = generator.generate()
    compiled = Compiler(model="acc").compile(source, "r.c")
    assert compiled.ok, compiled.stderr
    from repro.runtime.executor import Executor

    assert Executor(step_limit=500_000).run(compiled).returncode == 0
