"""Small-unit behaviors not covered elsewhere."""

import pytest

from repro.compiler.pragma import Clause, _top_level_colon
from repro.llm.model import _diag_codes, _find_int, _find_section
from repro.llm.profiles import DIAGNOSTIC_TRUST_CATEGORY
from repro.compiler.driver import Compiler
from repro.runtime.executor import Executor


class TestTopLevelColon:
    def test_simple(self):
        assert _top_level_colon("to: a") == 2

    def test_colon_inside_brackets_skipped(self):
        text = "a[0:N]"
        assert _top_level_colon(text) == -1

    def test_modifier_before_section(self):
        text = "tofrom: a[0:N]"
        assert _top_level_colon(text) == len("tofrom")

    def test_no_colon(self):
        assert _top_level_colon("a, b, c") == -1


class TestClauseHelpers:
    def test_variables_nested_sections(self):
        clause = Clause("map", "to: a[0:N], b[1:M]")
        assert clause.variables() == ["a", "b"]

    def test_modifier_none_without_colon(self):
        assert Clause("copyin", "a").modifier() is None

    def test_variables_empty_argument(self):
        assert Clause("copyin", None).variables() == []

    def test_reduction_minus_operator(self):
        clause = Clause("reduction", "-:x")
        assert clause.modifier() == "-"
        assert clause.variables() == ["x"]


class TestModelPromptHelpers:
    def test_find_int(self):
        assert _find_int("Compiler return code: 2\n", r"Compiler return code:\s*(-?\d+)") == 2
        assert _find_int("no match", r"(\d+)") is None

    def test_find_section(self):
        text = "Compiler STDERR: boom\nCompiler STDOUT: ok\n"
        assert _find_section(text, "Compiler STDERR:", ("Compiler STDOUT:",)) == "boom"

    def test_find_section_missing(self):
        assert _find_section("nothing here", "STDERR:", ()) == ""

    def test_diag_codes_prefers_tags(self):
        stderr = "f.c:1:1: error: nope [-Wbad-directive]\n1 error generated."
        assert _diag_codes(stderr) == ["bad-directive"]

    def test_diag_codes_text_fallback(self):
        assert "undeclared" in _diag_codes("error: use of undeclared identifier 'x'")
        assert "syntax" in _diag_codes("error: expected ';'")
        assert "bad-directive" in _diag_codes("error: invalid clause on directive")

    def test_every_driver_code_categorized(self):
        """Every diagnostic code the driver can emit must map to a trust
        category, so agent judges never fall back blindly."""
        emitted = {
            "bad-directive", "unknown-clause", "clause-not-allowed",
            "clause-needs-arg", "bad-reduction", "bad-map", "bad-schedule",
            "bad-default", "bad-depend", "bad-proc-bind", "missing-clause",
            "clause-conflict", "unsupported-feature", "directive-needs-loop",
            "directive-needs-construct", "bad-clause-syntax", "syntax",
            "unbalanced-brace", "unbalanced-block", "expected-declaration",
            "unterminated-comment", "unterminated-literal", "stray-character",
            "missing-header", "undeclared", "undeclared-function", "no-main",
            "late-declaration", "toolchain-limitation",
        }
        assert emitted <= set(DIAGNOSTIC_TRUST_CATEGORY)


class TestPointerComparisons:
    def _run(self, body: str) -> int:
        src = (
            "#include <stdio.h>\n#include <stdlib.h>\n#include <openacc.h>\n"
            f"int main() {{\n{body}\n}}\n"
        )
        compiled = Compiler(model="acc").compile(src, "t.c")
        assert compiled.ok, compiled.stderr
        return Executor().run(compiled).returncode

    def test_pointer_equality_same_target(self):
        body = (
            "double *p = (double*)malloc(16); double *q = p;"
            "return p == q ? 0 : 1;"
        )
        assert self._run(body) == 0

    def test_pointer_inequality_different_offset(self):
        body = (
            "double *p = (double*)malloc(32); double *q = p + 1;"
            "return p != q ? 0 : 1;"
        )
        assert self._run(body) == 0

    def test_pointer_difference(self):
        body = (
            "double *p = (double*)malloc(64); double *q = p + 5;"
            "return (int)(q - p) - 5;"
        )
        assert self._run(body) == 0

    def test_pointer_ordering(self):
        body = (
            "double *p = (double*)malloc(64); double *q = p + 3;"
            "return q > p ? 0 : 1;"
        )
        assert self._run(body) == 0

    def test_null_comparison(self):
        body = "double *p = (double*)malloc(8); return p != NULL ? 0 : 1;"
        assert self._run(body) == 0
