"""Tests for the EXPERIMENTS.md report internals and CLI experiment path."""

import pytest

from repro.experiments import paperdata
from repro.experiments.report import (
    _issue_comparison,
    _match_paper_series,
    _md_table,
    _overall_comparison,
)
from repro.metrics.accuracy import MetricsReport
from repro.corpus.generator import TestFile
from repro.metrics.accuracy import score_evaluations


def _measured_report() -> MetricsReport:
    files = []
    verdicts = []
    # fabricate a 6-issue population with known outcomes
    for issue, (count, correct) in {
        0: (10, 5), 1: (10, 10), 2: (10, 8), 3: (10, 9), 4: (10, 2), 5: (20, 18)
    }.items():
        for i in range(count):
            files.append(TestFile(f"f{issue}_{i}.c", "c", "acc", "s", "t").with_issue(issue))
            judged_invalid = i < correct if issue != 5 else i >= (count - correct)
            verdicts.append(not judged_invalid if issue != 5 else judged_invalid)
    return score_evaluations("Measured", files, verdicts)


class TestMarkdownHelpers:
    def test_md_table_shape(self):
        text = _md_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_issue_comparison_has_all_rows(self):
        text = _issue_comparison(_measured_report(), paperdata.TABLE_I)
        assert text.count("\n") >= 7  # header + separator + 6 issues
        assert "no issue" in text
        assert "%" in text

    def test_overall_comparison_strings(self):
        lines = _overall_comparison(_measured_report(), paperdata.TABLE_III["acc"])
        assert any("overall accuracy" in line for line in lines)
        assert any("bias" in line for line in lines)

    def test_match_paper_series_exact_and_prefix(self):
        paper = {"Pipeline 1": {"x": 1.0}, "Direct LLMJ": {"x": 0.5}}
        assert _match_paper_series(paper, "Pipeline 1") == {"x": 1.0}
        assert _match_paper_series(paper, "Direct") == {"x": 0.5}
        assert _match_paper_series(paper, "zzz") is None


class TestPaperDataFigures:
    def test_figure_axis_keys_stable(self):
        for figure in (paperdata.FIGURE_3, paperdata.FIGURE_4):
            for series in figure.values():
                assert set(series) == set(paperdata.RADAR_AXES)
        for figure in (paperdata.FIGURE_5, paperdata.FIGURE_6):
            for series in figure.values():
                assert set(series) == set(paperdata.RADAR_AXES_WITH_VALID)

    def test_figure_values_are_fractions(self):
        for figure in (paperdata.FIGURE_3, paperdata.FIGURE_4,
                       paperdata.FIGURE_5, paperdata.FIGURE_6):
            for series in figure.values():
                for value in series.values():
                    assert 0.0 <= value <= 1.0


class TestCliExperiment:
    def test_single_tiny_artifact(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["experiment", "table1", "--scale", "tiny", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table I" in out
        assert "No issue" in out
