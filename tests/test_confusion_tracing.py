"""Tests for the confusion-matrix and pipeline-tracing extensions."""

import numpy as np
import pytest

from repro.corpus.generator import TestFile
from repro.metrics.accuracy import EvaluationSet
from repro.metrics.confusion import (
    breakdown_by,
    confusion_matrix,
    render_breakdown,
)
from repro.pipeline.engine import PipelineConfig, ValidationPipeline
from repro.pipeline.tracing import PipelineTracer, run_traced_pipeline


def evals(truth, judged):
    issues = [5 if t else 0 for t in truth]
    return EvaluationSet(np.array(issues), np.array(truth), np.array(judged))


class TestConfusionMatrix:
    def test_quadrants(self):
        cm = confusion_matrix(
            evals(
                truth=[False, False, True, True],
                judged=[False, True, False, True],
            )
        )
        assert cm.true_positive == 1  # invalid caught
        assert cm.false_negative == 1  # invalid slipped
        assert cm.false_positive == 1  # valid rejected
        assert cm.true_negative == 1

    def test_precision_recall_f1(self):
        cm = confusion_matrix(
            evals(
                truth=[False, False, False, True],
                judged=[False, False, True, True],
            )
        )
        assert cm.recall == pytest.approx(2 / 3)
        assert cm.precision == 1.0
        assert 0 < cm.f1 < 1

    def test_false_pass_rate(self):
        cm = confusion_matrix(
            evals(truth=[False, False], judged=[True, False])
        )
        assert cm.false_pass_rate == 0.5

    def test_empty_safe(self):
        cm = confusion_matrix(evals(truth=[], judged=[]))
        assert cm.accuracy == 0.0
        assert cm.precision == 0.0
        assert cm.recall == 0.0

    def test_render(self):
        cm = confusion_matrix(evals(truth=[True, False], judged=[True, False]))
        text = cm.render()
        assert "precision" in text and "recall" in text


class TestBreakdown:
    def _files(self):
        return [
            TestFile("a.c", "c", "acc", "s", "vector").with_issue(5),
            TestFile("b.cpp", "cpp", "acc", "s", "vector").with_issue(0),
            TestFile("c.c", "c", "acc", "s", "reduction").with_issue(5),
        ]

    def test_by_language(self):
        rows = breakdown_by(self._files(), [True, True, True], "language")
        by_key = {r.key: r for r in rows}
        assert by_key["c"].accuracy == 1.0
        assert by_key["cpp"].accuracy == 0.0  # invalid judged valid

    def test_by_template(self):
        rows = breakdown_by(self._files(), [True, False, True], "template")
        by_key = {r.key: r for r in rows}
        assert by_key["vector"].count == 2
        assert by_key["reduction"].count == 1

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            breakdown_by(self._files(), [True, True, True], "color")

    def test_render(self):
        rows = breakdown_by(self._files(), [True, True, True], "language")
        text = render_breakdown(rows, "By language")
        assert "By language" in text
        assert "cpp" in text


class TestTracer:
    def test_span_records_event(self):
        tracer = PipelineTracer()
        with tracer.span("f.c", "compile"):
            pass
        assert len(tracer.events) == 1
        assert tracer.events[0].stage == "compile"
        assert tracer.events[0].duration >= 0

    def test_stage_latencies(self):
        tracer = PipelineTracer()
        for _ in range(3):
            with tracer.span("f.c", "judge"):
                pass
        stats = tracer.stage_latencies()
        assert stats["judge"]["count"] == 3
        assert stats["judge"]["min"] <= stats["judge"]["mean"] <= stats["judge"]["max"]

    def test_file_timeline_ordered(self):
        tracer = PipelineTracer()
        with tracer.span("f.c", "compile"):
            pass
        with tracer.span("f.c", "execute"):
            pass
        timeline = tracer.file_timeline("f.c")
        assert [e.stage for e in timeline] == ["compile", "execute"]

    def test_stage_gap(self):
        tracer = PipelineTracer()
        with tracer.span("f.c", "compile"):
            pass
        with tracer.span("f.c", "execute"):
            pass
        gap = tracer.stage_gap("f.c", "compile", "execute")
        assert gap is not None and gap >= 0.0
        assert tracer.stage_gap("f.c", "execute", "judge") is None

    def test_empty_gantt(self):
        assert "no trace events" in PipelineTracer().render_gantt()


class TestTracedPipeline:
    def test_traced_run_matches_pipeline_verdicts(self, valid_acc_source, model):
        tests = [
            TestFile("good.c", "c", "acc", valid_acc_source, "x"),
            TestFile("bad.c", "c", "acc", valid_acc_source.replace("{", "", 1), "x"),
        ]
        pipeline = ValidationPipeline(PipelineConfig(flavor="acc"), model=model)
        plain = pipeline.run(tests)
        traced, tracer = run_traced_pipeline(pipeline, tests)
        assert [r.pipeline_says_valid for r in traced.records] == [
            r.pipeline_says_valid for r in plain.records
        ]
        assert tracer.events

    def test_gantt_renders_stages(self, valid_acc_source, model):
        tests = [TestFile("t.c", "c", "acc", valid_acc_source, "x")]
        pipeline = ValidationPipeline(PipelineConfig(flavor="acc"), model=model)
        _, tracer = run_traced_pipeline(pipeline, tests)
        art = tracer.render_gantt()
        assert "C=compile" in art
        assert "t.c" in art
