"""Tests for the public validator API and the CLI."""

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core import TestsuiteValidator


class TestValidatorAPI:
    def test_validate_sources_good_and_bad(self, valid_acc_source):
        validator = TestsuiteValidator(flavor="acc")
        broken = valid_acc_source.replace("{", "", 1)
        report = validator.validate_sources(
            {"good.c": valid_acc_source, "bad.c": broken}
        )
        assert report.verdict_for("good.c").is_valid
        bad = report.verdict_for("bad.c")
        assert not bad.is_valid
        assert bad.stage == "compile"

    def test_runtime_failure_reported_at_execute_stage(self):
        source = (
            "#include <stdio.h>\n#include <stdlib.h>\n#include <openacc.h>\n"
            "int main() { double *p; p[0] = 1.0; return 0; }"
        )
        report = TestsuiteValidator(flavor="acc").validate_sources({"segv.c": source})
        judged = report.files[0]
        assert judged.stage == "execute"
        assert not judged.is_valid

    def test_summary_counts(self, valid_acc_source):
        validator = TestsuiteValidator(flavor="acc")
        report = validator.validate_sources({"a.c": valid_acc_source})
        summary = report.summary()
        assert summary["total"] == 1
        assert summary["valid"] == 1

    def test_judge_response_attached(self, valid_acc_source):
        report = TestsuiteValidator(flavor="acc").validate_sources(
            {"a.c": valid_acc_source}
        )
        judged = report.files[0]
        assert judged.stage == "judge"
        assert judged.judge_response

    def test_language_detected_from_extension(self, valid_f90_source):
        report = TestsuiteValidator(flavor="acc").validate_sources(
            {"vec.f90": valid_f90_source}
        )
        assert report.files[0].is_valid

    def test_omp_flavor(self, valid_omp_source):
        report = TestsuiteValidator(flavor="omp").validate_sources(
            {"t.c": valid_omp_source}
        )
        assert report.files[0].is_valid


class TestCLI:
    def test_validate_command(self, tmp_path, valid_acc_source, capsys):
        path = tmp_path / "good.c"
        path.write_text(valid_acc_source)
        rc = cli_main(["validate", str(path), "--flavor", "acc"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_validate_detects_invalid(self, tmp_path, valid_acc_source, capsys):
        path = tmp_path / "bad.c"
        path.write_text(valid_acc_source.replace("{", "", 1))
        rc = cli_main(["validate", str(path)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_generate_and_probe_roundtrip(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        rc = cli_main(
            ["generate", "--flavor", "omp", "--count", "6", "--out", str(corpus_dir)]
        )
        assert rc == 0
        assert (corpus_dir / "manifest.json").exists()
        probed_dir = tmp_path / "probed"
        rc = cli_main(["probe", str(corpus_dir), "--out", str(probed_dir)])
        assert rc == 0
        assert (probed_dir / "manifest.json").exists()

    def test_experiment_unknown_artifact(self, capsys):
        rc = cli_main(["experiment", "table42", "--scale", "tiny"])
        assert rc == 2

    def test_jobs_must_be_positive(self, capsys):
        """--jobs 0 is an argparse error (exit 2), not a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["experiment", "table1", "--scale", "tiny", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli_main([])


class TestCacheCLI:
    def _warm(self, tmp_path, valid_acc_source) -> str:
        cache_dir = tmp_path / "cache"
        source = tmp_path / "good.c"
        source.write_text(valid_acc_source)
        assert cli_main(["validate", str(source), "--cache-dir", str(cache_dir)]) == 0
        return str(cache_dir)

    def test_stats_reports_persisted_namespaces(self, tmp_path, valid_acc_source, capsys):
        cache_dir = self._warm(tmp_path, valid_acc_source)
        capsys.readouterr()
        rc = cli_main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "execute: 1 entries" in out
        assert "judge: 1 entries" in out
        assert "compile: no persisted file" in out  # memory-only namespace
        assert "total: 2 persisted entries" in out

    def test_stats_flags_corruption(self, tmp_path, valid_acc_source, capsys):
        cache_dir = self._warm(tmp_path, valid_acc_source)
        (Path(cache_dir) / "judge.json").write_text("{not json")
        capsys.readouterr()
        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "judge: 0 entries" in out
        assert "(corrupt)" in out

    def test_stats_missing_dir_is_an_error(self, tmp_path, capsys):
        rc = cli_main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")])
        assert rc == 2

    def test_purge_one_namespace(self, tmp_path, valid_acc_source, capsys):
        cache_dir = self._warm(tmp_path, valid_acc_source)
        rc = cli_main(["cache", "purge", "--cache-dir", cache_dir, "--namespace", "judge"])
        assert rc == 0
        assert not (Path(cache_dir) / "judge.json").exists()
        assert (Path(cache_dir) / "execute.json").exists()

    def test_purge_everything(self, tmp_path, valid_acc_source, capsys):
        cache_dir = self._warm(tmp_path, valid_acc_source)
        assert cli_main(["cache", "purge", "--cache-dir", cache_dir]) == 0
        assert not (Path(cache_dir) / "judge.json").exists()
        assert not (Path(cache_dir) / "execute.json").exists()
        capsys.readouterr()
        assert cli_main(["cache", "purge", "--cache-dir", cache_dir]) == 0
        assert "nothing to purge" in capsys.readouterr().out


class TestClientCLI:
    def test_client_needs_files_or_stats(self, capsys):
        assert cli_main(["client"]) == 2
        assert "need source files" in capsys.readouterr().err

    def test_client_unreachable_daemon(self, tmp_path, valid_acc_source, capsys):
        source = tmp_path / "good.c"
        source.write_text(valid_acc_source)
        rc = cli_main(["client", str(source), "--port", "1"])
        assert rc == 3
        assert "cannot reach" in capsys.readouterr().err

    def test_client_missing_source_file_is_a_usage_error(self, tmp_path, capsys):
        """A local file typo must not masquerade as a connectivity failure."""
        rc = cli_main(["client", str(tmp_path / "typo.c"), "--port", "1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot read source file" in err
        assert "cannot reach" not in err

    def test_cache_purge_unknown_namespace_is_a_usage_error(self, tmp_path, capsys):
        rc = cli_main(["cache", "purge", "--cache-dir", str(tmp_path), "--namespace", "nope"])
        assert rc == 2
        assert "unknown namespace" in capsys.readouterr().err
