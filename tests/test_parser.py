"""Unit tests for the C parser."""

import pytest

from repro.compiler import astnodes as ast
from repro.compiler.cparser import Parser
from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.lexer import Lexer
from repro.compiler.preprocessor import Preprocessor


def parse(source: str):
    diags = DiagnosticEngine()
    tokens = Lexer(source, "t.c", diags).tokenize()
    pp = Preprocessor(diags)
    result = pp.run(tokens)
    unit = Parser(result.tokens, diags, "t.c").parse_translation_unit()
    return unit, diags


def parse_expr(source: str):
    diags = DiagnosticEngine()
    tokens = Lexer(source, "t.c", diags).tokenize()
    expr = Parser(tokens, diags, "t.c").parse_expression()
    assert not diags.has_errors, diags.render_stderr()
    return expr


def main_body(source: str) -> list:
    unit, diags = parse(source)
    assert not diags.has_errors, diags.render_stderr()
    fn = unit.function("main")
    assert fn is not None
    return fn.body.body


class TestTopLevel:
    def test_empty_function(self):
        unit, diags = parse("int main() { return 0; }")
        assert not diags.has_errors
        assert unit.function("main") is not None

    def test_function_with_params(self):
        unit, _ = parse("double f(double x, int n) { return x; }")
        fn = unit.functions[0]
        assert [p.name for p in fn.params] == ["x", "n"]
        assert fn.params[0].ctype.base == "double"

    def test_void_param_list(self):
        unit, diags = parse("int main(void) { return 0; }")
        assert not diags.has_errors

    def test_array_param(self):
        unit, _ = parse("void f(double a[], int n) { }")
        assert unit.functions[0].params[0].array

    def test_prototype(self):
        unit, diags = parse("int helper(int x);\nint main() { return helper(1); }")
        assert not diags.has_errors
        assert unit.functions[0].body is None

    def test_global_declaration(self):
        unit, _ = parse("int counter = 0;\nint main() { return counter; }")
        assert len(unit.globals) == 1
        assert unit.globals[0].declarators[0].name == "counter"

    def test_variadic_function(self):
        unit, diags = parse("int f(int a, ...);\nint main() { return 0; }")
        assert not diags.has_errors
        assert unit.functions[0].variadic

    def test_missing_close_brace_reports(self):
        _, diags = parse("int main() { return 0;")
        assert "unbalanced-brace" in diags.codes()

    def test_extra_close_brace_reports(self):
        _, diags = parse("int main() { return 0; } }")
        assert "unbalanced-brace" in diags.codes()

    def test_garbage_at_top_level_reports(self):
        _, diags = parse("lorem ipsum; int main() { return 0; }")
        assert diags.has_errors


class TestStatements:
    def test_declaration_with_init(self):
        body = main_body("int main() { int x = 5; return x; }")
        decl = body[0]
        assert isinstance(decl, ast.Declaration)
        assert decl.declarators[0].name == "x"
        assert isinstance(decl.declarators[0].init, ast.IntLiteral)

    def test_multi_declarator(self):
        body = main_body("int main() { int a = 1, b = 2; return a + b; }")
        assert len(body[0].declarators) == 2

    def test_pointer_declarator_in_list(self):
        body = main_body("int main() { double x = 0, *p = 0; return 0; }")
        assert body[0].declarators[1].ctype.is_pointer

    def test_array_declaration(self):
        body = main_body("int main() { double a[10]; return 0; }")
        assert body[0].declarators[0].is_array

    def test_two_dimensional_array(self):
        body = main_body("int main() { double m[4][8]; return 0; }")
        assert len(body[0].declarators[0].array_dims) == 2

    def test_initializer_list(self):
        body = main_body("int main() { int a[3] = {1, 2, 3}; return 0; }")
        assert isinstance(body[0].declarators[0].init, ast.InitList)

    def test_if_else(self):
        body = main_body("int main() { if (1) return 1; else return 0; }")
        stmt = body[0]
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_while(self):
        body = main_body("int main() { while (0) { } return 0; }")
        assert isinstance(body[0], ast.While)

    def test_do_while(self):
        body = main_body("int main() { int i = 0; do { i++; } while (i < 3); return i; }")
        assert isinstance(body[1], ast.DoWhile)

    def test_for_with_declaration(self):
        body = main_body("int main() { for (int i = 0; i < 10; i++) { } return 0; }")
        stmt = body[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Declaration)

    def test_for_with_expression_init(self):
        body = main_body("int main() { int i; for (i = 0; i < 3; i++) { } return 0; }")
        assert isinstance(body[1].init, ast.ExprStmt)

    def test_for_empty_header(self):
        body = main_body("int main() { for (;;) { break; } return 0; }")
        stmt = body[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        body = main_body(
            "int main() { for (;;) { if (1) break; continue; } return 0; }"
        )
        inner = body[0].body.body
        assert isinstance(inner[0].then, ast.Break)
        assert isinstance(inner[1], ast.Continue)

    def test_empty_statement(self):
        body = main_body("int main() { ; return 0; }")
        assert isinstance(body[0], ast.ExprStmt)
        assert body[0].expr is None

    def test_nested_blocks(self):
        body = main_body("int main() { { { int x = 1; } } return 0; }")
        assert isinstance(body[0], ast.Compound)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = 1")
        assert isinstance(expr, ast.Assignment)
        assert isinstance(expr.value, ast.Assignment)

    def test_compound_assignment(self):
        expr = parse_expr("x += 2")
        assert isinstance(expr, ast.Assignment)
        assert expr.op == "+="

    def test_conditional_expression(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, ast.Conditional)

    def test_call_with_args(self):
        expr = parse_expr("f(1, x + 2)")
        assert isinstance(expr, ast.Call)
        assert expr.callee == "f"
        assert len(expr.args) == 2

    def test_index_chain(self):
        expr = parse_expr("m[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_unary_minus(self):
        expr = parse_expr("-x")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "-"

    def test_prefix_and_postfix_increment(self):
        pre = parse_expr("++i")
        post = parse_expr("i++")
        assert pre.prefix and not post.prefix

    def test_address_of_and_deref(self):
        expr = parse_expr("*&x")
        assert expr.op == "*"
        assert expr.operand.op == "&"

    def test_cast(self):
        expr = parse_expr("(double)n")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type.base == "double"

    def test_pointer_cast(self):
        expr = parse_expr("(double*)p")
        assert expr.target_type.is_pointer

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(double)")
        assert isinstance(expr, ast.SizeOf)
        assert expr.target_type is not None

    def test_sizeof_expression(self):
        expr = parse_expr("sizeof x")
        assert isinstance(expr, ast.SizeOf)
        assert expr.operand is not None

    def test_comma_expression(self):
        expr = parse_expr("a = 1, b = 2")
        assert isinstance(expr, ast.CommaExpr)

    def test_string_concatenation(self):
        expr = parse_expr('"ab" "cd"')
        assert isinstance(expr, ast.StringLiteral)
        assert expr.value == "abcd"

    def test_char_literal_value(self):
        expr = parse_expr("'A'")
        assert isinstance(expr, ast.CharLiteral)

    def test_true_false_literals(self):
        assert parse_expr("true").value == 1
        assert parse_expr("false").value == 0


class TestPragmaIntegration:
    def test_pragma_attaches_to_loop(self, valid_acc_source):
        unit, diags = parse(valid_acc_source)
        assert not diags.has_errors
        directives = [
            stmt
            for stmt in ast.walk_statements(unit.function("main").body)
            if isinstance(stmt, ast.DirectiveStmt)
        ]
        assert len(directives) == 1
        assert isinstance(directives[0].construct, ast.For)

    def test_unknown_pragma_flavor_ignored(self):
        unit, diags = parse("#pragma once\nint main() { return 0; }")
        assert not diags.has_errors

    def test_bad_directive_reports(self):
        _, diags = parse(
            "#include <openacc.h>\nint main() {\n#pragma acc paralel loop\n"
            "for (int i = 0; i < 3; i++) { }\nreturn 0; }"
        )
        assert "bad-directive" in diags.codes()

    def test_standalone_directive_no_construct(self):
        unit, diags = parse(
            "int main() {\n#pragma acc wait\nreturn 0; }"
        )
        assert not diags.has_errors
        stmt = unit.function("main").body.body[0]
        assert isinstance(stmt, ast.DirectiveStmt)
        assert stmt.construct is None


class TestErrorRecovery:
    def test_recovers_after_bad_statement(self):
        _, diags = parse("int main() { int x = ; int y = 2; return y; }")
        assert diags.has_errors
        # the parser must not cascade into infinite errors
        assert diags.error_count < 10

    def test_unbalanced_parens_in_condition(self):
        _, diags = parse("int main() { if (x { return 1; } return 0; }")
        assert diags.has_errors

    def test_no_infinite_loop_on_garbage(self):
        _, diags = parse("@#$%^&* int main() { return 0; }")
        assert diags.has_errors
