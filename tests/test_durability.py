"""Durability: fault injection, atomic writes, checkpoint/resume.

The crash-recovery contract this file proves:

* :mod:`repro.testing.faultinject` arms named points (env or
  programmatic) and the actions behave as documented;
* :mod:`repro.core.atomicio` never leaves a torn file — a fault fired
  *between* tmp write and rename leaves the previous content intact;
* a fuzz campaign interrupted at any instrumented point (round
  boundary, mid-checkpoint-write — via real ``SIGKILL`` in a
  subprocess) resumes with ``--resume`` to a **digest-identical**
  manifest;
* an experiment run killed after a cell checkpoint resumes to the same
  artifact bytes and digest, reusing the checkpointed cell.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.atomicio import atomic_write_json, atomic_write_text
from repro.experiments.rundir import (
    ExperimentRunSpec,
    load_run_spec,
    run_artifacts,
)
from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.fuzz.checkpoint import CheckpointError, load_checkpoint
from repro.testing import faultinject
from repro.testing.faultinject import FaultError, fault_point, install

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No fault armed by one test may leak into the next."""
    faultinject.clear()
    yield
    faultinject.clear()


def small_config(**overrides) -> CampaignConfig:
    base = dict(seed=5, rounds=2, batch_size=6, seed_count=4, workers=2,
                judge_workers=2, triage="divergent")
    base.update(overrides)
    return CampaignConfig(**base)


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------


class TestFaultInject:
    def test_spec_grammar(self):
        points = faultinject._parse_spec(
            "a, b@3, c=raise, d@2=sleep:0.5, e=exit:7"
        )
        assert points["a"].remaining == 1 and points["a"].action == "kill"
        assert points["b"].remaining == 3 and points["b"].action == "kill"
        assert points["c"].action == "raise"
        assert points["d"].remaining == 2 and points["d"].action == "sleep:0.5"
        assert points["e"].action == "exit:7"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            faultinject._parse_spec("p@zero")
        with pytest.raises(ValueError):
            faultinject._parse_spec("p@0")

    def test_unarmed_point_is_a_noop(self):
        fault_point("nothing:armed:here")

    def test_hit_countdown_then_disarm(self):
        install("p", action="raise", hits=3)
        fault_point("p")
        fault_point("p")
        with pytest.raises(FaultError):
            fault_point("p")
        # one-shot actions disarm after firing
        fault_point("p")

    def test_sleep_action_refires(self):
        install("slow", action="sleep:0.0")
        fault_point("slow")
        fault_point("slow")  # still armed: sleeps widen windows repeatedly

    def test_callable_action_receives_point_name(self):
        seen = []
        install("probe", action=seen.append)
        fault_point("probe")
        assert seen == ["probe"]

    def test_unknown_action_rejected(self):
        install("p", action="explode")
        with pytest.raises(ValueError):
            fault_point("p")

    def test_env_spec_is_parsed_lazily(self, monkeypatch):
        monkeypatch.setenv(faultinject.ENV_VAR, "env:point=raise")
        monkeypatch.setattr(faultinject, "_points", None)
        with pytest.raises(FaultError):
            fault_point("env:point")


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------


class TestAtomicIO:
    def test_json_roundtrip_with_trailing_newline(self, tmp_path):
        path = tmp_path / "deep" / "artifact.json"
        atomic_write_json(path, {"b": 2, "a": 1}, indent=2, sort_keys=True)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_fault_between_write_and_rename_keeps_old_file(self, tmp_path):
        """The torn-write window: a crash after the tmp write but before
        the rename must leave the previous complete file untouched."""
        path = tmp_path / "state.json"
        atomic_write_text(path, "generation-1", fault_tag="unit")
        install("atomic-write:unit", action="raise")
        with pytest.raises(FaultError):
            atomic_write_text(path, "generation-2", fault_tag="unit")
        assert path.read_text() == "generation-1"
        assert not list(tmp_path.glob("*.tmp")), "tmp file leaked"

    def test_concurrent_writers_never_collide(self, tmp_path):
        path = tmp_path / "shared.json"
        errors = []

        def writer(value: int) -> None:
            try:
                for _ in range(20):
                    atomic_write_text(path, f"value-{value}" * 50)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # whoever won, the file is one complete payload, never interleaved
        content = path.read_text()
        assert any(content == f"value-{i}" * 50 for i in range(4))


# ----------------------------------------------------------------------
# campaign checkpoint/resume (in-process)
# ----------------------------------------------------------------------


class TestCampaignCheckpointResume:
    def test_stop_then_resume_is_digest_identical(self, tmp_path):
        config = small_config()
        control = Campaign(config).run(checkpoint_dir=str(tmp_path / "ctrl"))

        work = tmp_path / "work"
        stop = threading.Event()

        def halt_after_round_one(message: str) -> None:
            if message.startswith("round 1:"):
                stop.set()

        partial = Campaign(config).run(
            checkpoint_dir=str(work), progress=halt_after_round_one, stop=stop
        )
        assert partial.interrupted
        assert partial.stats.rounds == 1

        checkpoint = load_checkpoint(work)
        assert checkpoint is not None
        assert checkpoint.next_round == 2
        resumed = Campaign(config).run(
            checkpoint_dir=str(work), resume=checkpoint
        )
        assert not resumed.interrupted
        assert resumed.stats.rounds == config.rounds
        assert resumed.digest() == control.digest()
        # the observable payloads match entry by entry, not just the hash
        assert [e.test.source for e in resumed.corpus] == [
            e.test.source for e in control.corpus
        ]

    def test_resume_from_completed_checkpoint_replays_nothing(self, tmp_path):
        config = small_config()
        control = Campaign(config).run(checkpoint_dir=str(tmp_path))
        checkpoint = load_checkpoint(tmp_path)
        assert checkpoint.next_round == config.rounds + 1
        resumed = Campaign(config).run(resume=checkpoint)
        assert resumed.digest() == control.digest()

    def test_interrupted_before_any_round_resumes_from_seed(self, tmp_path):
        config = small_config()
        control = Campaign(config).run()
        stop = threading.Event()
        stop.set()  # stops at the round-1 boundary, straight after seeding
        partial = Campaign(config).run(checkpoint_dir=str(tmp_path), stop=stop)
        assert partial.interrupted and partial.stats.rounds == 0
        checkpoint = load_checkpoint(tmp_path)
        assert checkpoint.next_round == 1
        resumed = Campaign(config).run(resume=checkpoint)
        assert resumed.digest() == control.digest()

    def test_resume_rejects_mismatched_config(self, tmp_path):
        config = small_config()
        Campaign(config).run(checkpoint_dir=str(tmp_path))
        checkpoint = load_checkpoint(tmp_path)
        other = small_config(seed=6)
        with pytest.raises(ValueError, match="does not match"):
            Campaign(other).run(resume=checkpoint)

    def test_load_checkpoint_absent_and_malformed(self, tmp_path):
        assert load_checkpoint(tmp_path) is None
        (tmp_path / "checkpoint.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path)
        (tmp_path / "checkpoint.json").write_text(
            json.dumps({"version": 999})
        )
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path)

    def test_checkpoint_every_skips_intermediate_rounds(self, tmp_path):
        config = small_config(rounds=3)
        Campaign(config).run(checkpoint_dir=str(tmp_path), checkpoint_every=5)
        # only the seed checkpoint and the forced final-round one land
        checkpoint = load_checkpoint(tmp_path)
        assert checkpoint.next_round == config.rounds + 1


# ----------------------------------------------------------------------
# kill -9 + --resume through the real CLI
# ----------------------------------------------------------------------


def _fuzz_cli(out: Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli", "fuzz", "run",
        "--seed", "5", "--rounds", "2", "--batch", "4",
        "--corpus-seeds", "3", "--workers", "1", "--judge-workers", "1",
        "--triage", "off", "--no-cache", "--out", str(out), *extra,
    ]


def _run_cli(cmd: list[str], fault: str | None = None) -> subprocess.CompletedProcess:
    import os

    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    env.pop(faultinject.ENV_VAR, None)
    if fault is not None:
        env[faultinject.ENV_VAR] = fault
    return subprocess.run(cmd, env=env, capture_output=True, text=True, timeout=300)


def _campaign_digest(out: Path) -> str:
    return json.loads((out / "campaign.json").read_text())["digest"]


@pytest.fixture(scope="module")
def control_campaign(tmp_path_factory) -> str:
    """One uninterrupted CLI campaign; its digest is the ground truth."""
    out = tmp_path_factory.mktemp("fuzz-control") / "ctrl"
    proc = _run_cli(_fuzz_cli(out))
    assert proc.returncode == 0, proc.stderr
    return _campaign_digest(out)


class TestKillResumeCLI:
    @pytest.mark.parametrize(
        "fault",
        [
            # killed right after round 1's checkpoint landed
            "campaign:post-round@1=kill",
            # killed *mid-write* of round 1's checkpoint (hit 1 is the
            # seed-phase checkpoint): the seed checkpoint must survive
            # intact and the resume replays both rounds
            "atomic-write:checkpoint@2=kill",
        ],
    )
    def test_sigkill_then_resume_matches_control(
        self, tmp_path, control_campaign, fault
    ):
        out = tmp_path / "crashed"
        crashed = _run_cli(_fuzz_cli(out), fault=fault)
        assert crashed.returncode == -9, (
            f"expected SIGKILL, got rc={crashed.returncode}\n{crashed.stderr}"
        )
        assert "faultinject: SIGKILL" in crashed.stderr
        assert not (out / "campaign.json").exists()
        assert (out / "checkpoint.json").exists()

        resumed = _run_cli(
            [
                sys.executable, "-m", "repro.cli", "fuzz", "run",
                "--resume", str(out), "--no-cache",
            ]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming campaign" in resumed.stdout
        assert _campaign_digest(out) == control_campaign

    def test_resume_without_checkpoint_is_a_clean_error(self, tmp_path):
        proc = _run_cli(
            [
                sys.executable, "-m", "repro.cli", "fuzz", "run",
                "--resume", str(tmp_path / "nowhere"), "--no-cache",
            ]
        )
        assert proc.returncode == 2
        assert "no checkpoint" in proc.stderr


# ----------------------------------------------------------------------
# experiment run directories
# ----------------------------------------------------------------------


def _table3_spec() -> ExperimentRunSpec:
    return ExperimentRunSpec(
        scale="tiny", artifacts=("table3",), backend="closure", jobs=1
    )


class TestExperimentResume:
    def test_fault_after_first_cell_then_resume(self, tmp_path):
        control = run_artifacts(_table3_spec(), tmp_path / "ctrl")

        work = tmp_path / "work"
        install("experiment:post-cell", action="raise")
        with pytest.raises(FaultError):
            run_artifacts(_table3_spec(), work)
        faultinject.clear()
        # exactly one of table3's two cells landed before the fault
        assert len(list((work / "cells").glob("*.pkl"))) == 1
        assert load_run_spec(work) == _table3_spec()

        resumed = run_artifacts(_table3_spec(), work)
        assert resumed.reused_cells == 1
        assert resumed.computed_cells == 1
        assert resumed.digest == control.digest
        assert resumed.texts == control.texts
        assert (work / "artifacts.md").read_bytes() == (
            tmp_path / "ctrl" / "artifacts.md"
        ).read_bytes()

    def test_stop_between_cells_checkpoints_progress(self, tmp_path):
        stop = threading.Event()

        def stop_after_first(name: str) -> None:
            stop.set()

        install("experiment:post-cell", action=stop_after_first)
        with pytest.raises(InterruptedError):
            run_artifacts(_table3_spec(), tmp_path, stop=stop)
        assert len(list((tmp_path / "cells").glob("*.pkl"))) == 1

    def test_cli_kill_then_resume_matches_control(self, tmp_path):
        control = run_artifacts(_table3_spec(), tmp_path / "ctrl")

        work = tmp_path / "work"
        base = [
            sys.executable, "-m", "repro.cli", "experiment",
            "--scale", "tiny", "--no-cache",
        ]
        crashed = _run_cli(
            base + ["table3", "--run-dir", str(work)],
            fault="experiment:post-cell@1=kill",
        )
        assert crashed.returncode == -9, crashed.stderr
        assert len(list((work / "cells").glob("*.pkl"))) == 1

        resumed = _run_cli(base + ["--resume", str(work)])
        assert resumed.returncode == 0, resumed.stderr
        progress = json.loads((work / "progress.json").read_text())
        assert progress["state"] == "done"
        assert progress["digest"] == control.digest
        assert (work / "artifacts.md").read_bytes() == (
            tmp_path / "ctrl" / "artifacts.md"
        ).read_bytes()

    def test_cli_resume_without_run_is_a_clean_error(self, tmp_path):
        proc = _run_cli(
            [
                sys.executable, "-m", "repro.cli", "experiment",
                "--resume", str(tmp_path / "nowhere"), "--no-cache",
            ]
        )
        assert proc.returncode == 2
        assert "no run to resume" in proc.stderr
