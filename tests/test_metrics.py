"""Unit tests for metrics: accuracy, bias, tables, radar."""

import numpy as np
import pytest

from repro.corpus.generator import TestFile
from repro.metrics.accuracy import (
    EvaluationSet,
    MetricsReport,
    bias,
    overall_accuracy,
    per_issue_rows,
    score_evaluations,
)
from repro.metrics.radar import radar_series, render_ascii_radar
from repro.metrics.tables import (
    render_comparison_table,
    render_issue_table,
    render_overall_table,
)


def make_evals(issues, truth, judged) -> EvaluationSet:
    return EvaluationSet(
        issues=np.array(issues),
        truth_valid=np.array(truth),
        judged_valid=np.array(judged),
    )


class TestEvaluationSet:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            make_evals([0, 1], [True], [True, False])

    def test_correct_vector(self):
        evals = make_evals([5, 0], [True, False], [True, True])
        assert list(evals.correct) == [True, False]

    def test_from_records(self):
        files = [
            TestFile("a.c", "c", "acc", "s", "t").with_issue(0),
            TestFile("b.c", "c", "acc", "s", "t").with_issue(5),
        ]
        evals = EvaluationSet.from_records(files, [False, True])
        assert list(evals.truth_valid) == [False, True]
        assert list(evals.correct) == [True, True]

    def test_concat(self):
        a = make_evals([0], [False], [False])
        b = make_evals([5], [True], [True])
        combined = a.concat(b)
        assert len(combined) == 2


class TestAccuracy:
    def test_overall_accuracy(self):
        evals = make_evals([5, 5, 0, 0], [True, True, False, False],
                           [True, False, False, True])
        assert overall_accuracy(evals) == 0.5

    def test_empty_accuracy_zero(self):
        assert overall_accuracy(make_evals([], [], [])) == 0.0

    def test_per_issue_rows(self):
        evals = make_evals(
            [0, 0, 1, 5], [False, False, False, True], [False, True, False, True]
        )
        rows = per_issue_rows(evals)
        by_issue = {r.issue: r for r in rows}
        assert by_issue[0].count == 2
        assert by_issue[0].correct == 1
        assert by_issue[0].accuracy == 0.5
        assert by_issue[1].accuracy == 1.0
        assert by_issue[5].accuracy == 1.0

    def test_rows_skip_absent_issues(self):
        rows = per_issue_rows(make_evals([5], [True], [True]))
        assert [r.issue for r in rows] == [5]


class TestBias:
    def test_all_permissive_mistakes(self):
        # invalid files judged valid
        evals = make_evals([0, 0], [False, False], [True, True])
        assert bias(evals) == 1.0

    def test_all_restrictive_mistakes(self):
        evals = make_evals([5, 5], [True, True], [False, False])
        assert bias(evals) == -1.0

    def test_balanced_mistakes(self):
        evals = make_evals([0, 5], [False, True], [True, False])
        assert bias(evals) == 0.0

    def test_no_mistakes_is_zero(self):
        evals = make_evals([5], [True], [True])
        assert bias(evals) == 0.0

    def test_paper_formula(self):
        # 3 permissive + 1 restrictive out of 4 mistakes -> (3-1)/4
        evals = make_evals(
            [0, 0, 0, 5, 5], [False, False, False, True, True],
            [True, True, True, False, True]
        )
        assert bias(evals) == pytest.approx(0.5)


class TestMetricsReport:
    def test_from_evaluations(self):
        evals = make_evals([0, 5], [False, True], [False, True])
        report = MetricsReport.from_evaluations("judge", evals)
        assert report.total_count == 2
        assert report.total_mistakes == 0
        assert report.overall_accuracy == 1.0

    def test_score_evaluations_one_call(self):
        files = [
            TestFile("a.c", "c", "acc", "s", "t").with_issue(3),
            TestFile("b.c", "c", "acc", "s", "t").with_issue(5),
        ]
        report = score_evaluations("x", files, [False, True])
        assert report.overall_accuracy == 1.0

    def test_accuracy_for_missing_issue(self):
        report = score_evaluations(
            "x", [TestFile("a.c", "c", "acc", "s", "t").with_issue(5)], [True]
        )
        assert report.accuracy_for(3) is None


class TestRadar:
    def _report(self):
        issues = [0, 0, 1, 2, 3, 4, 5, 5]
        truth = [False] * 6 + [True, True]
        judged = [False, True, False, False, False, True, True, False]
        files = []
        for i, issue in enumerate(issues):
            files.append(TestFile(f"f{i}.c", "c", "acc", "s", "t").with_issue(issue))
        return score_evaluations("r", files, judged)

    def test_axes_without_valid(self):
        series = radar_series(self._report())
        assert series.axes == ("model errors", "improper syntax", "no directives", "test logic")

    def test_axes_with_valid(self):
        series = radar_series(self._report(), include_valid_axis=True)
        assert series.axes[-1] == "valid tests"
        assert series.values[-1] == 0.5

    def test_values_collapse_issues_1_and_2(self):
        series = radar_series(self._report())
        # issues 1 and 2: both judged invalid (correct) -> 100%
        assert series.values[1] == 1.0

    def test_ascii_render_contains_labels(self):
        series = radar_series(self._report())
        art = render_ascii_radar([series])
        assert "model errors" in art
        assert "test logic" in art

    def test_ascii_render_empty(self):
        assert "empty" in render_ascii_radar([])


class TestTableRendering:
    def _reports(self):
        files = [
            TestFile("a.c", "c", "acc", "s", "t").with_issue(0),
            TestFile("b.c", "c", "acc", "s", "t").with_issue(5),
        ]
        r1 = score_evaluations("Pipeline 1", files, [False, True])
        r2 = score_evaluations("Pipeline 2", files, [True, True])
        return r1, r2

    def test_issue_table_contains_rows(self):
        r1, _ = self._reports()
        text = render_issue_table(r1, "Title")
        assert "Title" in text
        assert "No issue" in text
        assert "100%" in text

    def test_comparison_table_two_columns(self):
        r1, r2 = self._reports()
        text = render_comparison_table(r1, r2)
        assert "Pipeline 1 Accuracy" in text
        assert "Pipeline 2 Accuracy" in text

    def test_overall_table_shape(self):
        r1, r2 = self._reports()
        text = render_overall_table({"OpenACC": [r1, r2]})
        assert "Total Count" in text
        assert "Pipeline 1 Bias" in text
        assert "Overall Pipeline 2 Accuracy" in text
