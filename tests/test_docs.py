"""Documentation integrity: links resolve, documented commands exist.

This is the tier-1 half of the CI docs job (the other half smoke-runs
``examples/quickstart.py``): every relative markdown link in the
documentation surface must point at a real file, and the example
scripts documented in docs/EXAMPLES.md must all exist (and vice
versa).
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = [
    "README.md",
    "ARCHITECTURE.md",
    "docs/RUNBOOK.md",
    "docs/EXAMPLES.md",
]

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _relative_links(path: Path) -> list[str]:
    links = _LINK.findall(path.read_text())
    return [
        link
        for link in links
        if not link.startswith(("http://", "https://", "mailto:", "#"))
    ]


@pytest.mark.parametrize("doc", DOC_FILES)
def test_doc_exists(doc):
    assert (REPO_ROOT / doc).is_file(), f"missing documentation file {doc}"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_relative_links_resolve(doc):
    source = REPO_ROOT / doc
    broken = []
    for link in _relative_links(source):
        target = (source.parent / link.split("#", 1)[0]).resolve()
        if not target.exists():
            broken.append(link)
    assert not broken, f"{doc} has broken links: {broken}"


def test_examples_doc_covers_every_script():
    documented = set(re.findall(r"^## (\S+\.py)", (REPO_ROOT / "docs/EXAMPLES.md").read_text(), re.M))
    on_disk = {path.name for path in (REPO_ROOT / "examples").glob("*.py")}
    assert documented == on_disk, (
        f"docs/EXAMPLES.md out of sync with examples/: "
        f"undocumented={sorted(on_disk - documented)}, stale={sorted(documented - on_disk)}"
    )


def test_readme_quickstart_names_the_tier1_command():
    text = (REPO_ROOT / "README.md").read_text()
    assert "python -m pytest -x -q" in text
    assert "PYTHONPATH=src" in text


def test_runbook_documents_every_benchmark_gate():
    text = (REPO_ROOT / "docs/RUNBOOK.md").read_text()
    for gate in (
        "test_pipeline_throughput.py",
        "test_interpreter_throughput.py",
        "test_experiment_sharding.py",
        "test_service_throughput.py",
        "test_fuzz_throughput.py",
        "test_obs_overhead.py",
    ):
        assert gate in text, f"RUNBOOK does not mention {gate}"
        assert (REPO_ROOT / "benchmarks" / gate).is_file()
