"""Unit and integration tests for the process-sharded experiment runner."""

import pickle

import pytest

from repro.experiments import ExperimentConfig, Experiments
from repro.experiments import sharding
from repro.experiments.sharding import (
    FORTRAN_EXT,
    PART1_ACC,
    PART1_OMP,
    PART2_ACC,
    PART2_OMP,
    STANDARD_CELLS,
    Cell,
    CellResult,
    estimated_cost,
    plan,
    prefill,
    run_cell,
)
from repro.pipeline.stats import PipelineStats, StageStats


class TestPlan:
    def test_default_plan_is_the_standard_matrix(self):
        assert plan(None) == list(STANDARD_CELLS)

    def test_single_table_maps_to_its_cell(self):
        assert plan(["table1"]) == [PART1_ACC]
        assert plan(["table5"]) == [PART2_OMP]
        assert plan(["fortran_extension"]) == [FORTRAN_EXT]

    def test_plan_deduplicates_shared_cells(self):
        # tables 4 and 7 both ride on the part2/acc run
        assert plan(["table4", "table7", "fig3"]) == [PART2_ACC]

    def test_composite_artifacts_pull_in_both_parts(self):
        assert plan(["fig5"]) == [PART1_ACC, PART2_ACC]
        assert plan(["table3"]) == [PART1_ACC, PART1_OMP]

    def test_unknown_artifacts_are_skipped(self):
        assert plan(["nonsense"]) == []
        assert plan(["nonsense", "table2"]) == [PART1_OMP]

    def test_every_standard_artifact_is_mapped(self):
        names = [f"table{i}" for i in range(1, 10)] + [f"fig{i}" for i in range(3, 7)]
        for name in names:
            assert sharding.ARTIFACT_CELLS[name], name

    def test_cell_keys_match_runner_memo_keys(self):
        assert PART1_ACC.key == "acc"
        assert PART2_OMP.key == "omp:part2"
        assert FORTRAN_EXT.key == "acc:fortran-ext"


class TestCost:
    def test_part2_outweighs_part1_at_every_scale(self):
        for scale in ("tiny", "small", "paper"):
            config = ExperimentConfig(scale=scale)
            assert estimated_cost(config, PART2_ACC) > estimated_cost(config, PART1_ACC)

    def test_extension_cell_uses_shrunk_count(self):
        config = ExperimentConfig(scale="tiny")
        assert estimated_cost(config, FORTRAN_EXT) < estimated_cost(config, PART2_ACC)


class TestStatsAcrossProcesses:
    def test_stage_stats_pickle_roundtrip(self):
        stats = StageStats("judge")
        stats.record(passed=True, busy=0.5, simulated=2.0)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.snapshot() == stats.snapshot()
        # the reconstituted lock must be a real, usable lock
        clone.record(passed=False, busy=0.1)
        assert clone.processed == 2

    def test_pipeline_stats_pickle_roundtrip(self):
        stats = PipelineStats()
        stats.compile.record(passed=True, busy=1.0)
        stats.files_total = 7
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.summary() == stats.summary()

    def test_merge_sums_counters_and_maxes_wall(self):
        a = PipelineStats()
        a.compile.record(passed=True, busy=1.0)
        a.judge.record(passed=False, busy=2.0, simulated=5.0)
        a.wall_seconds = 3.0
        a.files_total = 10
        b = PipelineStats()
        b.compile.record(passed=False, busy=0.5)
        b.wall_seconds = 4.0
        b.files_total = 6
        a.merge(b)
        assert a.compile.processed == 2
        assert a.compile.passed == 1 and a.compile.failed == 1
        assert a.judge.simulated_seconds == 5.0
        assert a.wall_seconds == 4.0  # concurrent shards: slowest wins
        assert a.files_total == 16

    def test_merge_covers_extra_stages(self):
        a, b = PipelineStats(), PipelineStats()
        b.for_stage("lint").record(passed=True, busy=0.2)
        a.merge(b)
        assert a.for_stage("lint").processed == 1


class TestRunCell:
    def test_part1_cell_matches_sequential(self):
        config = ExperimentConfig(scale="tiny")
        result = run_cell(config, PART1_OMP)
        sequential = Experiments(config).part1_report("omp")
        assert result.report == sequential
        assert result.run is None

    def test_cell_result_shares_cache_dir(self, tmp_path):
        config = ExperimentConfig(scale="tiny")
        cold = run_cell(config, PART1_OMP, cache_dir=str(tmp_path))
        warm = run_cell(config, PART1_OMP, cache_dir=str(tmp_path))
        assert warm.report == cold.report
        # the second process-equivalent warm-started from the shared dir
        assert warm.cache_summary["namespaces"]["judge"]["hits"] > 0

    def test_worker_config_never_recurses(self):
        config = ExperimentConfig(scale="tiny", jobs=8)
        result = run_cell(config, PART1_OMP)
        assert result.report is not None  # ran in-process, no pool


class TestPrefill:
    def test_prefill_installs_cells_and_skips_filled(self):
        config = ExperimentConfig(scale="tiny")
        exp = Experiments(config)
        stats = prefill(exp, artifacts=["table2"], jobs=1)
        assert "omp" in exp._part1_reports
        assert stats is not None
        # second prefill finds nothing to do
        assert prefill(exp, artifacts=["table2"], jobs=1) is None

    def test_prefilled_table_is_byte_identical(self):
        config = ExperimentConfig(scale="tiny")
        sequential = Experiments(config).table2().text
        exp = Experiments(config)
        prefill(exp, artifacts=["table2"], jobs=1)
        assert exp.table2().text == sequential

    def test_sharded_prefill_over_processes(self):
        """Two worker processes; composed table equals the sequential one."""
        config = ExperimentConfig(scale="tiny", jobs=2)
        sequential = Experiments(ExperimentConfig(scale="tiny")).table3().text
        exp = Experiments(config)
        stats = prefill(exp, artifacts=["table3"])
        assert set(exp._part1_reports) == {"acc", "omp"}
        assert exp.table3().text == sequential
        assert exp.shard_stats is stats

    def test_entrypoint_is_spawn_safe(self):
        """Pin the spawn start method explicitly: the worker function
        and its arguments must survive a from-scratch interpreter."""
        config = ExperimentConfig(scale="tiny")
        results = sharding.run_cells(
            config, [PART1_ACC, PART1_OMP], jobs=2, start_method="spawn"
        )
        sequential = Experiments(config)
        assert results[0].report == sequential.part1_report("acc")
        assert results[1].report == sequential.part1_report("omp")

    def test_jobs_knob_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(jobs=0)

    def test_prefill_flushes_parent_cache_to_workers(self):
        """A parent holding warm in-memory results must hand them to
        the shards (via the shared dir), not let them recompute."""
        from repro.cache.bundle import PipelineCache

        cache = PipelineCache()
        config = ExperimentConfig(scale="tiny")
        Experiments(config, cache=cache).part1_report("omp")
        assert cache.judge.hits == 0  # cold so far, misses only

        exp = Experiments(ExperimentConfig(scale="tiny", jobs=2), cache=cache)
        prefill(exp, artifacts=["table2"], jobs=2)
        # folded worker counters show the shard reused the parent's work
        assert cache.judge.hits > 0


class TestCellResultPickles:
    def test_part2_run_crosses_process_boundary(self):
        """_Part2Run (records, stats, reports) must survive pickling —
        this is what workers actually send back."""
        config = ExperimentConfig(scale="tiny")
        result = run_cell(config, Cell("part2", "omp"))
        clone: CellResult = pickle.loads(pickle.dumps(result))
        assert clone.run.llmj2_report == result.run.llmj2_report
        assert clone.stats.summary() == result.stats.summary()
        assert len(clone.run.pipeline1.records) == len(result.run.pipeline1.records)
