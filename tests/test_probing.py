"""Unit tests for negative probing: mutators, random code, prober."""

import random

import pytest

from repro.compiler.driver import Compiler
from repro.corpus.generator import TestFile
from repro.probing.mutators import (
    ISSUE_DESCRIPTIONS,
    DirectiveOrAllocationMutator,
    LastSectionMutator,
    MutationError,
    OpeningBracketMutator,
    RandomReplacementMutator,
    UndeclaredVariableMutator,
    mutator_for_issue,
)
from repro.probing.prober import NegativeProber
from repro.probing.randomcode import RandomCodeGenerator
from repro.runtime.executor import Executor


def make_test(source: str, language: str = "c") -> TestFile:
    ext = {"c": ".c", "cpp": ".cpp", "f90": ".f90"}[language]
    return TestFile(f"t{ext}", language, "acc", source, "fixture")


class TestMutatorRegistry:
    def test_every_issue_has_description(self):
        assert set(ISSUE_DESCRIPTIONS) == {0, 1, 2, 3, 4, 5}

    def test_mutator_for_each_issue(self):
        for issue in range(5):
            assert mutator_for_issue(issue).issue == issue

    def test_unknown_issue_raises(self):
        with pytest.raises(ValueError):
            mutator_for_issue(7)


class TestIssue0(object):
    def test_directive_swap_breaks_compilation(self, valid_acc_source, rng):
        # force the directive strategy by removing malloc from the source
        mutator = DirectiveOrAllocationMutator()
        mutated = mutator.mutate(make_test(valid_acc_source), rng)
        assert mutated.issue == 0
        result = Compiler(model="acc").compile(mutated.source, "t.c")
        assert not result.ok

    def test_malloc_removal_compiles_but_faults(self, rng):
        source = """#include <stdio.h>
#include <stdlib.h>
#include <openacc.h>
int main() {
    double *a = (double*)malloc(16 * sizeof(double));
    for (int i = 0; i < 16; i++) { a[i] = i; }
    printf("%f\\n", a[3]);
    return 0;
}
"""
        mutator = DirectiveOrAllocationMutator()
        # try until the alloc strategy is chosen (it is one of two)
        for seed in range(20):
            mutated = mutator.mutate(make_test(source), random.Random(seed))
            if "malloc" not in mutated.source:
                break
        else:
            pytest.fail("alloc strategy never chosen")
        compiled = Compiler(model="acc").compile(mutated.source, "t.c")
        assert compiled.ok
        assert Executor().run(compiled).returncode == 139

    def test_no_target_raises(self, rng):
        plain = make_test("int main() { return 0; }")
        with pytest.raises(MutationError):
            DirectiveOrAllocationMutator().mutate(plain, rng)

    def test_fortran_directive_corrupted(self, valid_f90_source, rng):
        mutated = DirectiveOrAllocationMutator().mutate(
            make_test(valid_f90_source, "f90"), rng
        )
        assert mutated.source != valid_f90_source


class TestIssue1:
    def test_removes_exactly_one_brace(self, valid_acc_source, rng):
        mutated = OpeningBracketMutator().mutate(make_test(valid_acc_source), rng)
        assert mutated.source.count("{") == valid_acc_source.count("{") - 1

    def test_breaks_compilation(self, valid_acc_source, rng):
        mutated = OpeningBracketMutator().mutate(make_test(valid_acc_source), rng)
        assert not Compiler(model="acc").compile(mutated.source, "t.c").ok

    def test_fortran_removes_block_opener(self, valid_f90_source, rng):
        mutated = OpeningBracketMutator().mutate(make_test(valid_f90_source, "f90"), rng)
        result = Compiler(model="acc").compile(mutated.source, "t.f90")
        assert not result.ok


class TestIssue2:
    def test_inserts_undeclared_use(self, valid_acc_source, rng):
        mutated = UndeclaredVariableMutator().mutate(make_test(valid_acc_source), rng)
        result = Compiler(model="acc").compile(mutated.source, "t.c")
        assert result.has_code("undeclared")

    def test_fortran_variant(self, valid_f90_source, rng):
        mutated = UndeclaredVariableMutator().mutate(make_test(valid_f90_source, "f90"), rng)
        result = Compiler(model="acc").compile(mutated.source, "t.f90")
        assert result.has_code("undeclared")


class TestIssue3:
    def test_replaces_entire_file(self, valid_acc_source, rng):
        mutated = RandomReplacementMutator().mutate(make_test(valid_acc_source), rng)
        assert "#pragma acc" not in mutated.source

    def test_valid_fraction_controls_compilability(self):
        compiler = Compiler(model="acc")
        always = RandomCodeGenerator.with_seed(1, valid_fraction=1.0)
        compile_ok = sum(
            1 for _ in range(20) if compiler.compile(always.generate(), "r.c").ok
        )
        assert compile_ok == 20
        never = RandomCodeGenerator.with_seed(2, valid_fraction=0.0)
        compile_fail = sum(
            1 for _ in range(20) if not compiler.compile(never.generate(), "r.c").ok
        )
        assert compile_fail >= 16  # corruption is best-effort but near-total

    def test_random_code_has_no_directives(self):
        gen = RandomCodeGenerator.with_seed(3)
        for _ in range(10):
            assert "#pragma" not in gen.generate()

    def test_fortran_random_code(self):
        gen = RandomCodeGenerator.with_seed(4, valid_fraction=1.0)
        source = gen.generate_fortran()
        assert "program" in source
        assert Compiler(model="acc").compile(source, "r.f90").ok


class TestIssue4:
    def test_removes_last_block_stays_compilable(self, valid_acc_source, rng):
        mutated = LastSectionMutator().mutate(make_test(valid_acc_source), rng)
        compiled = Compiler(model="acc").compile(mutated.source, "t.c")
        assert compiled.ok, compiled.stderr

    def test_mutant_exits_zero(self, valid_acc_source, rng):
        """The removed block is the failure branch: mutant always passes."""
        mutated = LastSectionMutator().mutate(make_test(valid_acc_source), rng)
        compiled = Compiler(model="acc").compile(mutated.source, "t.c")
        assert Executor().run(compiled).returncode == 0

    def test_failure_branch_gone(self, valid_acc_source, rng):
        mutated = LastSectionMutator().mutate(make_test(valid_acc_source), rng)
        assert "return 1" not in mutated.source

    def test_fortran_removes_if_block(self, valid_f90_source, rng):
        mutated = LastSectionMutator().mutate(make_test(valid_f90_source, "f90"), rng)
        compiled = Compiler(model="acc").compile(mutated.source, "t.f90")
        assert compiled.ok, compiled.stderr
        assert "stop 1" not in mutated.source


class TestProber:
    def test_half_mutated_half_unchanged(self, acc_probed):
        counts = acc_probed.issue_counts()
        mutated = sum(counts[i] for i in range(5))
        assert counts[5] == len(acc_probed) - mutated
        assert abs(counts[5] - mutated) <= 1

    def test_ground_truth_matches_issues(self, acc_probed):
        for test, valid in zip(acc_probed, acc_probed.ground_truth()):
            assert valid == (test.issue in (None, 5))

    def test_deterministic(self, acc_corpus):
        from repro.corpus.suite import TestSuite

        suite = TestSuite("d", "acc", list(acc_corpus))
        a = NegativeProber(seed=5).probe(suite)
        b = NegativeProber(seed=5).probe(suite)
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.source for t in a] == [t.source for t in b]

    def test_issue_weights_respected(self, acc_corpus):
        from repro.corpus.suite import TestSuite

        suite = TestSuite("w", "acc", list(acc_corpus))
        probed = NegativeProber(seed=5, issue_weights={3: 1.0}).probe(suite)
        counts = probed.issue_counts()
        assert counts[3] == len(probed) // 2
        assert counts[0] == counts[1] == counts[2] == counts[4] == 0

    def test_by_issue_accessor(self, acc_probed):
        for issue in range(6):
            for test in acc_probed.by_issue(issue):
                expected = issue if issue != 5 else (None, 5)
                if issue == 5:
                    assert test.issue in (None, 5)
                else:
                    assert test.issue == issue


class TestMutatorEdgeCases:
    """Degenerate inputs must yield a well-formed variant or the typed
    MutationError — never any other exception (ISSUE-5 satellite)."""

    DEGENERATE_SOURCES = {
        "empty": "",
        "whitespace": "   \n\n  \t\n",
        "no_brackets": "int x;\n",
        "single_statement": "int main();\n",
        "no_directives": "int main() { return 0; }\n",
        "only_pragma": "#pragma acc parallel loop\n",
        "unbalanced": "int main() { {\n",
        "comment_only": "/* nothing here */\n",
    }

    def all_mutators(self):
        return [mutator_for_issue(i) for i in range(5)]

    def test_c_edge_cases_never_raise_unexpectedly(self):
        for label, source in self.DEGENERATE_SOURCES.items():
            test = make_test(source)
            for mutator in self.all_mutators():
                rng = random.Random(42)
                try:
                    out = mutator.mutate(test, rng)
                except MutationError:
                    continue  # the typed skip: explicitly allowed
                assert isinstance(out, TestFile), (label, mutator)
                assert out.issue == mutator.issue
                assert isinstance(out.source, str)

    def test_fortran_edge_cases_never_raise_unexpectedly(self):
        for label, source in {
            "empty": "",
            "no_blocks": "program p\nend program p\n",
            "single_assign": "program p\n  x = 1\nend program p\n",
        }.items():
            test = make_test(source, language="f90")
            for mutator in self.all_mutators():
                rng = random.Random(42)
                try:
                    out = mutator.mutate(test, rng)
                except MutationError:
                    continue
                assert isinstance(out, TestFile), (label, mutator)

    def test_no_brackets_skips_bracket_mutators(self):
        test = make_test("int x;\n")
        with pytest.raises(MutationError):
            OpeningBracketMutator().mutate(test, random.Random(1))
        with pytest.raises(MutationError):
            LastSectionMutator().mutate(test, random.Random(1))

    def test_no_directive_no_malloc_skips_issue0(self):
        test = make_test("int main() { return 0; }\n")
        with pytest.raises(MutationError):
            DirectiveOrAllocationMutator().mutate(test, random.Random(1))

    def test_no_statement_skips_issue2(self):
        test = make_test("#pragma acc parallel loop\n")
        with pytest.raises(MutationError):
            UndeclaredVariableMutator().mutate(test, random.Random(1))

    def test_random_replacement_always_applies(self):
        # issue 3 ignores the input entirely, so even empty files work
        out = RandomReplacementMutator().mutate(make_test(""), random.Random(1))
        assert out.issue == 3
        assert "#pragma" not in out.source
        assert out.source.strip()

    def test_mutators_ignore_global_random_state(self):
        """Satellite: the explicit rng is the only randomness source."""
        test = make_test(
            "#include <stdio.h>\n"
            "int main() {\n"
            "    int a = 1;\n"
            "#pragma acc parallel loop\n"
            "    for (int i = 0; i < 4; i++) { a = a + i; }\n"
            "    printf(\"%d\\n\", a);\n"
            "    return 0;\n"
            "}\n"
        )
        outputs = []
        for global_seed in (0, 12345):
            random.seed(global_seed)
            row = []
            for mutator in self.all_mutators():
                try:
                    row.append(mutator.mutate(test, random.Random(7)).source)
                except MutationError:
                    row.append(None)
            row.append(RandomCodeGenerator(rng=random.Random(7)).generate())
            row.append(RandomCodeGenerator(rng=random.Random(7)).generate_fortran())
            outputs.append(row)
        assert outputs[0] == outputs[1]
