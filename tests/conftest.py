"""Shared fixtures: compilers, executors, small cached corpora."""

from __future__ import annotations

import random

import pytest

from repro.compiler.driver import Compiler
from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.llm.model import DeepSeekCoderSim
from repro.probing.prober import NegativeProber
from repro.runtime.executor import Executor


@pytest.fixture(scope="session")
def acc_compiler() -> Compiler:
    return Compiler(model="acc")


@pytest.fixture(scope="session")
def omp_compiler() -> Compiler:
    return Compiler(model="omp", openmp_max_version=4.5)


@pytest.fixture()
def executor() -> Executor:
    return Executor(step_limit=2_000_000)


@pytest.fixture(scope="session")
def acc_corpus() -> list:
    """A small validated OpenACC corpus (C + C++), session-cached."""
    return CorpusGenerator(seed=11).generate("acc", 36, languages=("c", "cpp"))


@pytest.fixture(scope="session")
def omp_corpus() -> list:
    return CorpusGenerator(seed=11).generate("omp", 36, languages=("c", "cpp"))


@pytest.fixture(scope="session")
def fortran_corpus() -> list:
    return CorpusGenerator(seed=13).generate("acc", 6, languages=("f90",))


@pytest.fixture(scope="session")
def acc_probed(acc_corpus):
    suite = TestSuite("acc-fixture", "acc", list(acc_corpus))
    return NegativeProber(seed=21).probe(suite)


@pytest.fixture(scope="session")
def omp_probed(omp_corpus):
    suite = TestSuite("omp-fixture", "omp", list(omp_corpus))
    return NegativeProber(seed=22).probe(suite)


@pytest.fixture()
def model() -> DeepSeekCoderSim:
    return DeepSeekCoderSim(seed=4242)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(77)


VALID_ACC_SOURCE = r"""
#include <stdio.h>
#include <stdlib.h>
#include <openacc.h>
#define N 64

int main() {
    double a[N];
    double expected[N];
    int err = 0;
    for (int i = 0; i < N; i++) {
        a[i] = (double)i;
        expected[i] = a[i] * 3.0 + 1.0;
    }
#pragma acc parallel loop copy(a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = a[i] * 3.0 + 1.0;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != expected[i]) {
            err = err + 1;
        }
    }
    if (err != 0) {
        printf("FAILED with %d errors\n", err);
        return 1;
    }
    printf("PASSED\n");
    return 0;
}
"""

VALID_OMP_SOURCE = r"""
#include <stdio.h>
#include <omp.h>
#define N 64

int main() {
    int a[N];
    int sum = 0;
    int expected = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i % 5;
        expected += a[i];
    }
#pragma omp target teams distribute parallel for map(to: a[0:N]) reduction(+:sum)
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
    if (sum != expected) {
        printf("FAILED: %d != %d\n", sum, expected);
        return 1;
    }
    printf("PASSED\n");
    return 0;
}
"""

VALID_F90_SOURCE = """
program demo
  implicit none
  integer :: i, n
  real(8) :: a(32), expected(32)
  integer :: err
  n = 32
  err = 0
  do i = 1, n
    a(i) = i * 1.0
    expected(i) = a(i) * 2.0
  end do
  !$acc parallel loop copy(a)
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
  do i = 1, n
    if (abs(a(i) - expected(i)) > 1.0e-9) then
      err = err + 1
    end if
  end do
  if (err > 0) then
    print *, "FAILED"
    stop 1
  end if
  print *, "PASSED"
end program demo
"""


@pytest.fixture()
def valid_acc_source() -> str:
    return VALID_ACC_SOURCE


@pytest.fixture()
def valid_omp_source() -> str:
    return VALID_OMP_SOURCE


@pytest.fixture()
def valid_f90_source() -> str:
    return VALID_F90_SOURCE
