"""The fuzzing subsystem: operators, differential oracle, campaigns.

Covers the ISSUE-5 acceptance criteria directly:

* seeded campaigns are byte-reproducible (same seed twice, replay from
  a manifest, and invariance under worker-count changes);
* the differential oracle flags any observable walk/closure divergence
  as a :class:`Discrepancy`;
* the minimizer preserves the coverage frontier;
* the ``fuzz`` cache namespace persists/loads through the bundle;
* the CLI (``fuzz run|replay|minimize|report``, ``coverage``) and the
  service's ``GET /v1/fuzz/stats`` surface the engine.
"""

from __future__ import annotations

import json
import random
import threading
import urllib.request
from dataclasses import replace

import pytest

from repro.cache.bundle import NAMESPACE_NAMES, PipelineCache
from repro.cli import main as cli_main
from repro.corpus.generator import CorpusGenerator, TestFile
from repro.fuzz.campaign import (
    Campaign,
    CampaignConfig,
    fuzz_stats_snapshot,
    reset_fuzz_stats,
)
from repro.fuzz.differential import (
    DifferentialOutcome,
    DifferentialRunner,
    Discrepancy,
    divergent_fields,
)
from repro.runtime.interpreter import EXECUTION_BACKENDS
from repro.fuzz.manifest import (
    CampaignManifest,
    ReplayError,
    load_campaign_dir,
    replay_manifest,
    save_campaign,
)
from repro.fuzz.minimize import minimize_corpus
from repro.fuzz.operators import default_operators, operators_by_name
from repro.fuzz.signature import (
    behavior_signature,
    coverage_keys,
    steps_bucket,
    stdout_class,
)
from repro.probing.mutators import MutationError
from repro.runtime.executor import ExecutionResult


@pytest.fixture(scope="module")
def fuzz_seeds() -> list[TestFile]:
    return CorpusGenerator(seed=31, validate=False).generate(
        "acc", 8, languages=("c", "cpp")
    )


def small_config(**overrides) -> CampaignConfig:
    base = dict(seed=5, rounds=2, batch_size=8, seed_count=4, workers=2,
                judge_workers=2, triage="divergent")
    base.update(overrides)
    return CampaignConfig(**base)


# ----------------------------------------------------------------------
# operators
# ----------------------------------------------------------------------


class TestOperators:
    def test_default_suite_names(self):
        names = [op.name for op in default_operators()]
        assert names == [
            "issue0", "issue1", "issue2", "issue3", "issue4",
            "clause-shuffle", "bound-perturb", "nesting-splice", "dead-store",
        ]
        assert len(set(names)) == len(names)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown operators"):
            operators_by_name(("no-such-op",))

    def test_each_operator_mutates_or_typed_skips(self, fuzz_seeds):
        """Every operator either changes the source or raises the typed
        MutationError — never any other exception."""
        for op in default_operators():
            changed = 0
            for seed_no, test in enumerate(fuzz_seeds):
                rng = random.Random(900 + seed_no)
                try:
                    out = op.apply(test, rng)
                except MutationError:
                    continue
                assert isinstance(out, TestFile)
                assert out.source  # never empty
                if out.source != test.source:
                    changed += 1
            assert changed > 0, f"{op.name} never produced a variant"

    def test_operators_deterministic_under_explicit_rng(self, fuzz_seeds):
        test = fuzz_seeds[0]
        for op in default_operators():
            try:
                a = op.apply(test, random.Random(77)).source
            except MutationError:
                continue
            b = op.apply(test, random.Random(77)).source
            assert a == b, f"{op.name} not deterministic under a seeded rng"

    def test_operators_independent_of_global_random(self, fuzz_seeds):
        """Satellite: mutation must depend only on the explicit rng, so
        campaigns are reproducible without global seeding."""
        test = fuzz_seeds[1]
        outputs = []
        for global_seed in (1, 999):
            random.seed(global_seed)
            row = []
            for op in default_operators():
                try:
                    row.append(op.apply(test, random.Random(13)).source)
                except MutationError:
                    row.append(None)
            outputs.append(row)
        assert outputs[0] == outputs[1]

    def test_clause_shuffle_preserves_tokens(self, fuzz_seeds):
        op = operators_by_name(("clause-shuffle",))[0]
        for seed_no, test in enumerate(fuzz_seeds):
            rng = random.Random(seed_no)
            try:
                out = op.apply(test, rng)
            except MutationError:
                continue
            # same multiset of non-whitespace characters per file: only
            # clause order moved
            assert sorted(out.source.split()) == sorted(test.source.split())
            assert out.source != test.source
            return
        pytest.skip("no shufflable seed in fixture")

    def test_bound_perturb_keeps_test_green(self):
        source = """#include <stdio.h>
#define N 64

int main() {
    int a[N];
    int sum = 0;
    int expected = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i;
        expected = expected + i;
    }
    for (int i = 0; i < N; i++) {
        sum = sum + a[i];
    }
    if (sum != expected) {
        printf("FAILED\\n");
        return 1;
    }
    printf("PASSED\\n");
    return 0;
}
"""
        test = TestFile(name="bp.c", language="c", model="acc", source=source,
                        template="t", features=())
        op = operators_by_name(("bound-perturb",))[0]
        out = op.apply(test, random.Random(3))
        assert "#define N 64" not in out.source
        runner = DifferentialRunner(model="acc", step_limit=100_000)
        outcome = runner.run(out)
        assert outcome.compiled and not outcome.divergent
        assert outcome.closure.returncode == 0

    def test_dead_store_is_semantics_preserving(self, fuzz_seeds):
        op = operators_by_name(("dead-store",))[0]
        test = fuzz_seeds[0]
        out = op.apply(test, random.Random(5))
        assert "__fz_dead" in out.source
        runner = DifferentialRunner(model="acc", step_limit=400_000)
        base = runner.run(test)
        mutated = runner.run(out)
        assert base.compiled and mutated.compiled
        assert mutated.closure.returncode == base.closure.returncode
        assert mutated.closure.stdout == base.closure.stdout
        assert mutated.closure.steps > base.closure.steps

    def test_issue3_operator_clears_features(self, fuzz_seeds):
        op = operators_by_name(("issue3",))[0]
        out = op.apply(fuzz_seeds[0], random.Random(1))
        assert out.features == ()
        assert out.issue == 3

    def test_operators_skip_empty_and_f90_inputs(self):
        empty = TestFile(name="e.c", language="c", model="acc", source="",
                         template="t")
        fortran = TestFile(name="f.f90", language="f90", model="acc",
                           source="program p\nend program p\n", template="t")
        for op in operators_by_name(
            ("clause-shuffle", "bound-perturb", "nesting-splice", "dead-store")
        ):
            with pytest.raises(MutationError):
                op.apply(empty, random.Random(0))
            with pytest.raises(MutationError):
                op.apply(fortran, random.Random(0))


# ----------------------------------------------------------------------
# signatures
# ----------------------------------------------------------------------


class TestSignatures:
    def test_steps_bucket_log_scale(self):
        assert steps_bucket(0) == "s0"
        assert steps_bucket(7) == "s1e0"
        assert steps_bucket(99) == "s1e1"
        assert steps_bucket(1234) == "s1e3"
        assert steps_bucket(1234) == steps_bucket(9999)

    def test_stdout_classes(self):
        assert stdout_class("") == "empty"
        assert stdout_class("Test passed\n") == "pass"
        assert stdout_class("saxpy failed: 3 mismatches\n") == "fail"
        assert stdout_class("s=42\n") == "other"

    def test_compile_fail_signature_uses_codes_not_text(self):
        a = DifferentialOutcome(compile_rc=1, diagnostic_codes=("undeclared-identifier",),
                                compile_stderr="a.c:1: error: x")
        b = DifferentialOutcome(compile_rc=1, diagnostic_codes=("undeclared-identifier",),
                                compile_stderr="completely different text")
        assert behavior_signature(a) == behavior_signature(b)
        assert behavior_signature(a).startswith("compile-fail:")

    def test_divergent_signature_is_marked(self):
        ok = ExecutionResult(returncode=0, stdout="x", stderr="", steps=10)
        bad = ExecutionResult(returncode=1, stdout="x", stderr="", steps=10)
        outcome = DifferentialOutcome(
            compile_rc=0, results={"walk": ok, "closure": bad},
            divergent_fields=divergent_fields(ok, bad),
        )
        assert behavior_signature(outcome) == "DIVERGENT"

    def test_coverage_keys_cross_features_with_signature(self):
        test = TestFile(name="t.c", language="c", model="acc", source="x",
                        template="t", features=("acc.atomic",))
        keys = coverage_keys(test, "rc0:clean:s1e3:pass")
        assert "feat:acc.atomic" in keys
        assert "sig:rc0:clean:s1e3:pass" in keys
        assert "cell:acc.atomic|rc0:clean:s1e3:pass" in keys


# ----------------------------------------------------------------------
# differential oracle
# ----------------------------------------------------------------------


class TestDifferential:
    def test_valid_seed_has_no_divergence(self, fuzz_seeds):
        runner = DifferentialRunner(model="acc", step_limit=400_000)
        outcome = runner.run(fuzz_seeds[0])
        assert outcome.compiled
        assert not outcome.divergent
        assert outcome.executions == len(EXECUTION_BACKENDS)
        assert set(outcome.results) == set(EXECUTION_BACKENDS)
        reference = outcome.walk
        for arm, run in outcome.results.items():
            assert run == reference, f"arm {arm} diverged from walk"

    def test_compile_failure_runs_nothing(self):
        test = TestFile(name="bad.c", language="c", model="acc",
                        source="int main() { return x; }", template="t")
        outcome = DifferentialRunner(model="acc").run(test)
        assert not outcome.compiled
        assert outcome.executions == 0
        assert outcome.walk is None and outcome.closure is None

    def test_outcome_json_round_trip(self, fuzz_seeds):
        outcome = DifferentialRunner(model="acc", step_limit=400_000).run(fuzz_seeds[1])
        back = DifferentialOutcome.from_json(outcome.to_json())
        assert back == outcome

    def test_cache_hit_skips_recompute(self, fuzz_seeds):
        cache = PipelineCache()
        runner = DifferentialRunner(model="acc", step_limit=400_000,
                                    cache=cache.fuzz)
        first = runner.run(fuzz_seeds[2])
        assert cache.fuzz.misses == 1
        second = runner.run(fuzz_seeds[2])
        assert cache.fuzz.hits == 1
        assert second == first

    def test_divergence_becomes_discrepancy(self, fuzz_seeds, monkeypatch):
        """Force the walk backend to lie; the oracle must notice."""
        runner = DifferentialRunner(model="acc", step_limit=400_000)
        real_run = runner.walk.run

        def lying_run(compiled):
            result = real_run(compiled)
            return replace(result, returncode=result.returncode + 40)

        monkeypatch.setattr(runner.walk, "run", lying_run)
        outcome = runner.run(fuzz_seeds[0])
        assert outcome.divergent
        assert outcome.divergent_fields == ("returncode",)
        assert behavior_signature(outcome) == "DIVERGENT"

    def test_discrepancy_json_round_trip(self):
        finding = Discrepancy(
            name="fz.c", operator="dead-store", source="int main(){}",
            fields=("steps",),
            results={"walk": {"steps": 10}, "closure": {"steps": 11}},
        )
        assert Discrepancy.from_json(finding.to_json()) == finding
        assert "dead-store" in finding.render()


# ----------------------------------------------------------------------
# campaign engine
# ----------------------------------------------------------------------


class TestCampaign:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(triage="sometimes")
        with pytest.raises(ValueError):
            CampaignConfig(batch_size=0)

    def test_config_json_round_trip(self):
        config = small_config(operators=("issue0", "dead-store"))
        assert CampaignConfig.from_json(config.to_json()) == config

    def test_campaign_discovers_coverage(self):
        result = Campaign(small_config()).run()
        assert result.stats.accepted >= 1
        assert len(result.corpus) > result.config.seed_count
        assert result.stats.executions > 0
        # frontier growth is monotone and the curve has one point per
        # round plus the seeding round
        curve = result.stats.coverage_curve
        assert len(curve) == result.config.rounds + 1
        assert curve == sorted(curve)
        assert curve[-1] > curve[0]

    def test_shipped_templates_have_zero_discrepancies(self):
        result = Campaign(small_config()).run()
        assert result.findings == []

    def test_same_seed_is_byte_reproducible(self):
        config = small_config()
        a = Campaign(config).run()
        b = Campaign(config).run()
        assert a.digest() == b.digest()
        assert [e.test.source for e in a.corpus] == [e.test.source for e in b.corpus]
        assert a.coverage.render() == b.coverage.render()

    def test_worker_count_never_changes_the_outcome(self):
        config = small_config()
        serial = Campaign(replace(config, workers=1, judge_workers=1)).run()
        parallel = Campaign(replace(config, workers=4, judge_workers=3)).run()
        assert serial.digest() == parallel.digest()

    def test_different_seeds_diverge(self):
        a = Campaign(small_config(seed=5)).run()
        b = Campaign(small_config(seed=6)).run()
        assert a.digest() != b.digest()

    def test_operator_weights_adapt(self):
        result = Campaign(small_config(rounds=3, batch_size=12)).run()
        states = result.operator_states
        assert any(s.accepted for s in states.values())
        rewarded = [s.weight for s in states.values() if s.accepted]
        assert max(rewarded) > 1.0

    def test_triage_all_judges_survivors(self):
        result = Campaign(small_config(triage="all")).run()
        assert result.stats.judge_calls > 0

    def test_triage_off_never_judges(self):
        result = Campaign(small_config(triage="off")).run()
        assert result.stats.judge_calls == 0

    def test_fuzz_cache_warm_start(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = PipelineCache(cache_dir=cache_dir)
        config = small_config()
        cold = Campaign(config, cache=cache).run()
        assert cache.fuzz.misses > 0
        cache.save()

        warm_cache = PipelineCache(cache_dir=cache_dir)
        assert warm_cache.load() > 0
        warm = Campaign(config, cache=warm_cache).run()
        assert warm_cache.fuzz.hits > 0
        assert warm_cache.fuzz.misses == 0
        assert warm.digest() == cold.digest()

    def test_fuzz_namespace_in_bundle(self, tmp_path):
        assert "fuzz" in NAMESPACE_NAMES
        cache = PipelineCache(cache_dir=tmp_path)
        cache.fuzz.put("k", {"compile_rc": 0})
        assert cache.save()
        assert (tmp_path / "fuzz.json").exists()

    def test_max_corpus_cap_is_counted_not_silent(self):
        capped = Campaign(small_config(rounds=3, batch_size=12, max_corpus=6)).run()
        # no divergences on the shipped templates, so the cap is exact
        assert len(capped.corpus) == 6
        assert capped.stats.cap_dropped > 0
        assert capped.stats.accepted == capped.stats.cap_dropped + (
            len(capped.corpus) - capped.config.seed_count
        )
        assert "dropped at the max_corpus cap" in capped.render_report()

    def test_repeat_divergent_witness_still_enters_corpus(self):
        """Every Discrepancy must have a runnable reproducer in the
        corpus, even when its frontier keys are already covered."""
        from repro.fuzz.campaign import CampaignStats, CoverageFrontier, OperatorState
        from repro.fuzz.stages import Candidate

        campaign = Campaign(small_config())
        frontier = CoverageFrontier()
        states = {"dead-store": OperatorState("dead-store")}
        stats = CampaignStats()
        ok = ExecutionResult(returncode=0, stdout="x", stderr="", steps=10)
        bad = ExecutionResult(returncode=1, stdout="x", stderr="", steps=10)

        def divergent_candidate(name: str) -> Candidate:
            test = TestFile(name=name, language="c", model="acc",
                            source=f"// {name}", template="t", features=())
            return Candidate(
                index=0, parent=test, operator="dead-store", seed=1, test=test,
                outcome=DifferentialOutcome(
                    compile_rc=0, results={"walk": ok, "closure": bad},
                    divergent_fields=divergent_fields(ok, bad),
                ),
            )

        findings, flags = [], []
        first = campaign._absorb(divergent_candidate("w1.c"), frontier, states,
                                 stats, findings, flags)
        second = campaign._absorb(divergent_candidate("w2.c"), frontier, states,
                                  stats, findings, flags)
        assert first is not None and first.signature == "DIVERGENT"
        assert second is not None, "repeat witness was dropped"
        assert len(findings) == 2

    def test_registry_counts_campaigns(self):
        reset_fuzz_stats()
        result = Campaign(small_config()).run()
        snap = fuzz_stats_snapshot()
        assert snap["campaigns"] == 1
        assert snap["executions"] == result.stats.executions
        assert snap["last_digest"] == result.digest()


# ----------------------------------------------------------------------
# manifest + replay
# ----------------------------------------------------------------------


class TestManifestReplay:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        return Campaign(small_config(rounds=2, batch_size=10)).run()

    def test_manifest_json_round_trip(self, campaign_result):
        manifest = CampaignManifest.from_result(campaign_result)
        back = CampaignManifest.from_json(manifest.to_json())
        assert back.digest == manifest.digest
        assert back.schedule == manifest.schedule
        assert back.config == manifest.config

    def test_replay_is_byte_identical(self, campaign_result):
        manifest = CampaignManifest.from_result(campaign_result)
        replayed, identical = replay_manifest(manifest)
        assert identical
        assert [e.test.source for e in replayed.corpus] == [
            e.test.source for e in campaign_result.corpus
        ]
        assert replayed.coverage.render() == campaign_result.coverage.render()
        assert [f.to_json() for f in replayed.findings] == [
            f.to_json() for f in campaign_result.findings
        ]

    def test_replay_ignores_warm_differential_cache(self, campaign_result, tmp_path):
        """A warm fuzz namespace must not feed replay: drift detection
        requires genuine re-execution, not a cache round-trip."""
        cache = PipelineCache(cache_dir=tmp_path)
        # warm the namespace with the original outcomes
        warm_run = Campaign(campaign_result.config, cache=cache).run()
        assert cache.fuzz.misses > 0
        fuzz_reads_before = cache.fuzz.hits + cache.fuzz.misses

        manifest = CampaignManifest.from_result(warm_run)
        replayed, identical = replay_manifest(manifest, cache=cache)
        assert identical
        # the fuzz namespace saw no further lookups at all
        assert cache.fuzz.hits + cache.fuzz.misses == fuzz_reads_before

    def test_replay_detects_drift(self, campaign_result):
        manifest = CampaignManifest.from_result(campaign_result)
        drifted = CampaignManifest.from_json(
            {**manifest.to_json(), "digest": "0" * 64}
        )
        _, identical = replay_manifest(drifted)
        assert not identical

    def test_replay_with_unknown_parent_reports_drift_not_crash(self, campaign_result):
        """Substrate drift that changes acceptance must surface as a
        digest MISMATCH, never an unhandled exception."""
        manifest = CampaignManifest.from_result(campaign_result)
        raw = manifest.to_json()
        assert raw["schedule"], "fixture campaign recorded no schedule"
        raw["schedule"][-1][0]["parent"] = "never_generated.c"
        broken = CampaignManifest.from_json(raw)
        messages = []
        replayed, identical = replay_manifest(broken, progress=messages.append)
        assert not identical
        assert any("replay drift" in msg for msg in messages)
        # rounds before the drifted one replayed faithfully
        assert replayed.stats.rounds < campaign_result.stats.rounds or (
            len(raw["schedule"]) == 1
        )

    def test_unsupported_version_rejected(self):
        with pytest.raises(ReplayError, match="version"):
            CampaignManifest.from_json({"version": 99})

    def test_save_and_load_campaign_dir(self, campaign_result, tmp_path):
        root = save_campaign(campaign_result, tmp_path / "camp")
        manifest, suite = load_campaign_dir(root)
        assert manifest.digest == campaign_result.digest()
        assert len(suite) == len(campaign_result.corpus)
        assert (root / "report.txt").read_text().startswith("Fuzzing campaign")


# ----------------------------------------------------------------------
# minimizer
# ----------------------------------------------------------------------


def _mk(name: str, source: str) -> TestFile:
    return TestFile(name=name, language="c", model="acc", source=source,
                    template="t")


class TestMinimize:
    def test_greedy_cover_preserves_frontier(self):
        entries = [
            (_mk("a.c", "x" * 10), ("feat:1", "sig:A")),
            (_mk("b.c", "x" * 20), ("feat:1", "feat:2", "sig:A", "sig:B")),
            (_mk("c.c", "x" * 5), ("sig:A",)),
        ]
        result = minimize_corpus(entries)
        kept_keys = set()
        for test, keys in entries:
            if test.name in result.kept:
                kept_keys |= set(keys)
        assert kept_keys == {"feat:1", "feat:2", "sig:A", "sig:B"}
        assert result.kept == ("b.c",)
        assert set(result.dropped) == {"a.c", "c.c"}

    def test_divergent_witnesses_always_kept(self):
        entries = [
            (_mk("big.c", "y" * 50), ("sig:DIVERGENT", "feat:1")),
            (_mk("small.c", "y"), ("feat:1",)),
        ]
        result = minimize_corpus(entries)
        assert "big.c" in result.kept

    def test_minimize_is_deterministic(self):
        entries = [
            (_mk(f"t{i}.c", "z" * (i + 1)), (f"feat:{i % 3}", f"sig:{i % 4}"))
            for i in range(12)
        ]
        assert minimize_corpus(entries) == minimize_corpus(list(entries))

    def test_campaign_corpus_minimizes_without_coverage_loss(self):
        result = Campaign(small_config(rounds=3, batch_size=12)).run()
        entries = [(e.test, e.keys) for e in result.corpus]
        minimized = minimize_corpus(entries)
        full = set()
        for _, keys in entries:
            full |= set(keys)
        assert minimized.covered_keys == len(full)
        assert len(minimized.kept) <= len(entries)


# ----------------------------------------------------------------------
# CLI + service surface
# ----------------------------------------------------------------------


FUZZ_RUN_ARGS = [
    "fuzz", "run", "--seed", "9", "--rounds", "1", "--batch", "6",
    "--corpus-seeds", "4", "--workers", "1", "--judge-workers", "1",
]


class TestCliSurface:
    def test_fuzz_run_replay_round_trip(self, tmp_path, capsys):
        out = tmp_path / "camp"
        rc = cli_main(FUZZ_RUN_ARGS + ["--out", str(out), "--no-cache"])
        assert rc == 0  # zero discrepancies on shipped templates
        assert (out / "campaign.json").exists()
        assert (out / "corpus" / "manifest.json").exists()
        captured = capsys.readouterr().out
        assert "wrote campaign" in captured

        rc = cli_main(["fuzz", "replay", str(out), "--no-cache"])
        assert rc == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_fuzz_minimize_and_report(self, tmp_path, capsys):
        out = tmp_path / "camp"
        cli_main(FUZZ_RUN_ARGS + ["--out", str(out), "--no-cache"])
        capsys.readouterr()

        rc = cli_main(["fuzz", "minimize", str(out), "--out", str(tmp_path / "min")])
        assert rc == 0
        minimized = capsys.readouterr().out
        assert "minimized" in minimized
        assert (tmp_path / "min" / "manifest.json").exists()

        rc = cli_main(["fuzz", "report", str(out)])
        assert rc == 0
        assert "Fuzzing campaign" in capsys.readouterr().out

    def test_fuzz_run_rejects_unknown_languages(self, tmp_path, capsys):
        rc = cli_main(["fuzz", "run", "--languages", "fortran",
                       "--out", str(tmp_path / "x"), "--no-cache"])
        assert rc == 2
        assert "unknown languages" in capsys.readouterr().err

    def test_fuzz_report_missing_dir_exits_2(self, tmp_path, capsys):
        rc = cli_main(["fuzz", "report", str(tmp_path / "nope")])
        assert rc == 2
        assert "cannot load campaign" in capsys.readouterr().err

    def test_coverage_subcommand_on_generated_suite(self, tmp_path, capsys):
        suite_dir = tmp_path / "suite"
        cli_main(["generate", "--flavor", "acc", "--count", "6",
                  "--seed", "17", "--out", str(suite_dir)])
        capsys.readouterr()
        rc = cli_main(["coverage", str(suite_dir), "--uncovered"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Feature coverage (acc)" in out
        assert "uncovered" in out

    def test_coverage_subcommand_on_campaign_dir(self, tmp_path, capsys):
        out = tmp_path / "camp"
        cli_main(FUZZ_RUN_ARGS + ["--out", str(out), "--no-cache"])
        capsys.readouterr()
        rc = cli_main(["coverage", str(out)])
        assert rc == 0
        assert "Feature coverage (acc)" in capsys.readouterr().out

    def test_coverage_missing_suite_exits_2(self, tmp_path, capsys):
        rc = cli_main(["coverage", str(tmp_path / "missing")])
        assert rc == 2
        assert "cannot load suite" in capsys.readouterr().err

    def test_fuzz_run_persists_fuzz_namespace(self, tmp_path, capsys):
        out = tmp_path / "camp"
        cache_dir = tmp_path / "cache"
        rc = cli_main(FUZZ_RUN_ARGS + ["--out", str(out), "--cache-dir", str(cache_dir)])
        assert rc == 0
        assert (cache_dir / "fuzz.json").exists()
        capsys.readouterr()
        rc = cli_main(["cache", "stats", "--cache-dir", str(cache_dir)])
        assert rc == 0
        assert "fuzz:" in capsys.readouterr().out


class TestServiceFuzzStats:
    def test_endpoint_serves_registry(self):
        from repro.service.server import make_server

        reset_fuzz_stats()
        server = make_server(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            result = Campaign(small_config(rounds=1, batch_size=4, seed_count=3)).run()
            with urllib.request.urlopen(
                f"http://{host}:{port}/v1/fuzz/stats", timeout=10
            ) as resp:
                data = json.load(resp)
            assert data["campaigns"] == 1
            assert data["executions"] == result.stats.executions
            assert data["last_digest"] == result.digest()

            from repro.service.client import ServiceClient

            via_client = ServiceClient(host=host, port=port).fuzz_stats()
            assert via_client == data
        finally:
            server.shutdown()
            server.server_close()
