"""End-to-end integration scenarios across the full stack."""

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.judge.agent import ToolRunner
from repro.judge.llmj import AgentLLMJ, DirectLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.metrics.accuracy import score_evaluations
from repro.pipeline.engine import PipelineConfig, ValidationPipeline
from repro.probing.prober import NegativeProber


class TestProbedPipelineIntegration:
    """The full protocol on the shared fixture populations."""

    def test_pipeline_catches_all_compile_detectable_issues(self, acc_probed, model):
        pipeline = ValidationPipeline(
            PipelineConfig(flavor="acc", early_exit=False), model=model
        )
        result = pipeline.run(list(acc_probed))
        for record in result.records:
            if record.test.issue in (1, 2):
                assert not record.pipeline_says_valid, record.test.name

    def test_issue4_mutants_survive_compile_and_run(self, acc_probed, acc_compiler, executor):
        for test in acc_probed.by_issue(4):
            compiled = acc_compiler.compile(test.source, test.name)
            if compiled.ok:
                result = executor.run(compiled)
                assert result.returncode == 0, test.name

    def test_agent_judge_beats_direct_on_probing(self, acc_probed, model):
        direct = DirectLLMJ(model, "acc")
        tools = ToolRunner("acc")
        agent = AgentLLMJ(model, "acc", kind="direct", tools=tools)
        direct_verdicts, agent_verdicts = [], []
        for test in acc_probed:
            direct_verdicts.append(direct.judge(test).says_valid)
            agent_verdicts.append(agent.judge(test).says_valid)
        files = list(acc_probed)
        direct_report = score_evaluations("direct", files, direct_verdicts)
        agent_report = score_evaluations("agent", files, agent_verdicts)
        assert agent_report.overall_accuracy > direct_report.overall_accuracy

    def test_omp_pipeline_end_to_end(self, omp_probed, model):
        pipeline = ValidationPipeline(
            PipelineConfig(flavor="omp", early_exit=True), model=model
        )
        result = pipeline.run(list(omp_probed))
        verdicts = [r.pipeline_says_valid for r in result.records]
        files = [r.test for r in result.records]
        report = score_evaluations("pipeline", files, verdicts)
        # compile-detectable mutants give the pipeline a strong floor
        assert report.overall_accuracy > 0.6
        assert result.stats.judge.skipped > 0

    def test_determinism_of_full_protocol(self):
        """Same seeds => byte-identical verdicts, end to end."""

        def run_once():
            files = CorpusGenerator(seed=3).generate("acc", 16)
            probed = NegativeProber(seed=4).probe(TestSuite("d", "acc", files))
            model = DeepSeekCoderSim(seed=5)
            pipeline = ValidationPipeline(
                PipelineConfig(flavor="acc", early_exit=False, judge_workers=2),
                model=model,
            )
            result = pipeline.run(list(probed))
            return [(r.test.name, r.pipeline_says_valid) for r in result.records]

        assert run_once() == run_once()

    def test_judge_stage_cost_dominates(self, acc_probed, model):
        """The simulated LLM stage is the expensive one (paper §III-C)."""
        pipeline = ValidationPipeline(
            PipelineConfig(flavor="acc", early_exit=False), model=model
        )
        result = pipeline.run(list(acc_probed)[:12])
        stats = result.stats
        assert stats.judge.simulated_seconds > stats.compile.simulated_seconds
        assert stats.judge.simulated_seconds > stats.execute.simulated_seconds
