"""Unit tests for the device data environment and offload semantics."""

from repro.compiler.driver import Compiler
from repro.runtime.device import DeviceEnv, DataMappingError
from repro.runtime.executor import Executor
from repro.runtime.values import HeapBlock

import pytest


def run(source: str, model: str = "acc"):
    compiled = Compiler(model=model).compile(source, "t.c")
    assert compiled.ok, compiled.stderr
    return Executor().run(compiled)


HEADER = "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n"


class TestDeviceEnvUnit:
    def test_map_and_presence(self):
        env = DeviceEnv()
        block = HeapBlock(size=64)
        device = env.map_block(block, copyin=True)
        assert env.is_present(block)
        assert device.size == 64
        assert device.device

    def test_copyin_copies_cells(self):
        env = DeviceEnv()
        block = HeapBlock(size=16)
        block.store(0, 8, 1.5)
        device = env.map_block(block, copyin=True)
        assert device.load(0, 8) == 1.5

    def test_create_does_not_copy(self):
        env = DeviceEnv()
        block = HeapBlock(size=16)
        block.store(0, 8, 1.5)
        device = env.map_block(block, copyin=False)
        assert device.load(0, 8) == 0

    def test_refcounting(self):
        env = DeviceEnv()
        block = HeapBlock(size=16)
        env.map_block(block, copyin=True)
        env.map_block(block, copyin=True)
        env.unmap_block(block, copyout=False)
        assert env.is_present(block)
        env.unmap_block(block, copyout=False)
        assert not env.is_present(block)

    def test_copyout_only_at_refcount_zero(self):
        env = DeviceEnv()
        block = HeapBlock(size=16)
        device = env.map_block(block, copyin=True)
        env.map_block(block, copyin=True)
        device.store(0, 8, 9.0)
        env.unmap_block(block, copyout=True)  # refcount 2 -> 1: no transfer
        assert block.load(0, 8) == 0
        env.unmap_block(block, copyout=True)  # refcount 1 -> 0: transfer
        assert block.load(0, 8) == 9.0

    def test_finalize_forces_unmap(self):
        env = DeviceEnv()
        block = HeapBlock(size=16)
        env.map_block(block, copyin=True)
        env.map_block(block, copyin=True)
        env.unmap_block(block, copyout=False, finalize=True)
        assert not env.is_present(block)

    def test_require_present_raises_when_absent(self):
        env = DeviceEnv()
        with pytest.raises(DataMappingError):
            env.require_present(HeapBlock(size=8), "a")

    def test_update_host_and_device(self):
        env = DeviceEnv()
        block = HeapBlock(size=16)
        device = env.map_block(block, copyin=False)
        block.store(0, 8, 4.0)
        env.update_device(block)
        assert device.load(0, 8) == 4.0
        device.store(8, 8, 5.0)
        env.update_host(block)
        assert block.load(8, 8) == 5.0

    def test_unmap_absent_is_noop(self):
        env = DeviceEnv()
        env.unmap_block(HeapBlock(size=8), copyout=True)  # must not raise

    def test_transfer_statistics(self):
        env = DeviceEnv()
        block = HeapBlock(size=16)
        env.map_block(block, copyin=True)
        env.unmap_block(block, copyout=True)
        assert env.transfers_to_device == 1
        assert env.transfers_from_device == 1


class TestOffloadSemantics:
    def test_copyout_visible_after_region(self):
        src = HEADER + """
int main() {
    double a[8];
    double b[8];
    for (int i = 0; i < 8; i++) { a[i] = i; b[i] = 0.0; }
#pragma acc parallel loop copyin(a[0:8]) copyout(b[0:8])
    for (int i = 0; i < 8; i++) { b[i] = a[i] * 2.0; }
    return (int)b[3] - 6;
}
"""
        assert run(src).returncode == 0

    def test_create_instead_of_copyin_breaks_selfcheck(self):
        src = HEADER + """
int main() {
    double a[8];
    double b[8];
    int err = 0;
    for (int i = 0; i < 8; i++) { a[i] = i + 1.0; b[i] = 0.0; }
#pragma acc parallel loop create(a[0:8]) copyout(b[0:8])
    for (int i = 0; i < 8; i++) { b[i] = a[i] * 2.0; }
    for (int i = 0; i < 8; i++) { if (b[i] != (a[i] * 2.0)) err++; }
    return err == 0 ? 0 : 1;
}
"""
        assert run(src).returncode == 1

    def test_present_without_mapping_fails_at_runtime(self):
        src = HEADER + """
int main() {
    double a[8];
    for (int i = 0; i < 8; i++) { a[i] = i; }
#pragma acc parallel loop present(a[0:8])
    for (int i = 0; i < 8; i++) { a[i] = a[i] + 1.0; }
    return 0;
}
"""
        result = run(src)
        assert result.returncode == 1
        assert "present" in result.stderr.lower()

    def test_data_region_host_code_writes_host_memory(self):
        src = HEADER + """
int main() {
    double a[4];
    double b[4];
    for (int i = 0; i < 4; i++) { a[i] = 1.0; b[i] = 0.0; }
#pragma acc data copyin(a[0:4]) copyout(b[0:4])
    {
        a[0] = 50.0;  /* host write inside data region */
#pragma acc parallel loop present(a[0:4], b[0:4])
        for (int i = 0; i < 4; i++) { b[i] = a[i]; }
    }
    /* device copy was taken before the host write: b[0] must be 1.0 */
    if (b[0] != 1.0) { return 1; }
    if (a[0] != 50.0) { return 2; }
    return 0;
}
"""
        assert run(src).returncode == 0

    def test_update_device_propagates_host_write(self):
        src = HEADER + """
int main() {
    double a[4];
    double b[4];
    for (int i = 0; i < 4; i++) { a[i] = 1.0; b[i] = 0.0; }
#pragma acc data copyin(a[0:4]) copyout(b[0:4])
    {
        a[0] = 50.0;
#pragma acc update device(a[0:4])
#pragma acc parallel loop present(a[0:4], b[0:4])
        for (int i = 0; i < 4; i++) { b[i] = a[i]; }
    }
    return b[0] == 50.0 ? 0 : 1;
}
"""
        assert run(src).returncode == 0

    def test_enter_exit_data(self):
        src = HEADER + """
int main() {
    double a[4];
    for (int i = 0; i < 4; i++) { a[i] = 2.0; }
#pragma acc enter data copyin(a[0:4])
#pragma acc parallel loop present(a[0:4])
    for (int i = 0; i < 4; i++) { a[i] = a[i] * 3.0; }
#pragma acc exit data copyout(a[0:4])
    return (int)a[0] - 6;
}
"""
        assert run(src).returncode == 0

    def test_scalars_firstprivate_in_compute_region(self):
        src = HEADER + """
int main() {
    double a[4];
    double leak = 0.0;
    for (int i = 0; i < 4; i++) { a[i] = 1.0; }
#pragma acc parallel loop copy(a[0:4])
    for (int i = 0; i < 4; i++) {
        leak = 99.0;  /* firstprivate: must not escape */
        a[i] = a[i] + 1.0;
    }
    return leak == 0.0 ? 0 : 1;
}
"""
        assert run(src).returncode == 0

    def test_reduction_scalar_escapes(self):
        src = HEADER + """
int main() {
    int a[8];
    int sum = 0;
    for (int i = 0; i < 8; i++) { a[i] = 1; }
#pragma acc parallel loop copyin(a[0:8]) reduction(+:sum)
    for (int i = 0; i < 8; i++) { sum += a[i]; }
    return sum - 8;
}
"""
        assert run(src).returncode == 0

    def test_omp_target_map_tofrom(self):
        src = HEADER.replace("<math.h>\n", "<math.h>\n#include <omp.h>\n") + """
int main() {
    int a[4];
    for (int i = 0; i < 4; i++) { a[i] = i; }
#pragma omp target map(tofrom: a[0:4])
    {
        for (int i = 0; i < 4; i++) { a[i] = a[i] + 10; }
    }
    return a[3] - 13;
}
"""
        assert run(src, model="omp").returncode == 0

    def test_omp_target_update(self):
        src = HEADER.replace("<math.h>\n", "<math.h>\n#include <omp.h>\n") + """
int main() {
    int a[4];
    int b[4];
    for (int i = 0; i < 4; i++) { a[i] = 1; b[i] = 0; }
#pragma omp target data map(to: a[0:4]) map(from: b[0:4])
    {
        a[0] = 7;
#pragma omp target update to(a[0:4])
#pragma omp target teams distribute parallel for
        for (int i = 0; i < 4; i++) { b[i] = a[i]; }
    }
    return b[0] - 7;
}
"""
        assert run(src, model="omp").returncode == 0

    def test_mapping_uninitialized_pointer_segfaults(self):
        src = HEADER + """
int main() {
    double *a;
#pragma acc parallel loop copyin(a[0:8])
    for (int i = 0; i < 8; i++) { }
    return 0;
}
"""
        assert run(src).returncode == 139
