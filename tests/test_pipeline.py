"""Unit tests for the staged validation pipeline."""

import pytest

from repro.corpus.generator import TestFile
from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.engine import PipelineConfig, ValidationPipeline
from repro.pipeline.stats import PipelineStats, StageStats


def make_tests(valid_acc_source: str, n: int = 6) -> list[TestFile]:
    tests = []
    for i in range(n):
        source = valid_acc_source.replace("3.0", f"{i + 2}.0")
        tests.append(TestFile(f"t{i}.c", "c", "acc", source, "x"))
    return tests


class TestConfig:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert config.flavor == "acc"
        assert config.early_exit

    def test_bad_flavor(self):
        with pytest.raises(ValueError):
            PipelineConfig(flavor="cuda")

    def test_bad_judge_kind(self):
        with pytest.raises(ValueError):
            PipelineConfig(judge_kind="other")

    def test_worker_minimum(self):
        with pytest.raises(ValueError):
            PipelineConfig(compile_workers=0)


class TestPipelineRun:
    def test_all_valid_files_pass(self, valid_acc_source, model):
        tests = make_tests(valid_acc_source)
        pipeline = ValidationPipeline(PipelineConfig(), model=model)
        result = pipeline.run(tests)
        assert len(result.records) == len(tests)
        assert all(r.compiled and r.ran_clean for r in result.records)

    def test_output_order_matches_input(self, valid_acc_source, model):
        tests = make_tests(valid_acc_source, 8)
        pipeline = ValidationPipeline(
            PipelineConfig(compile_workers=4, execute_workers=4, judge_workers=2),
            model=model,
        )
        result = pipeline.run(tests)
        assert [r.test.name for r in result.records] == [t.name for t in tests]

    def test_early_exit_skips_judge(self, valid_acc_source, model):
        broken = valid_acc_source.replace("{", "", 1)
        tests = [
            TestFile("good.c", "c", "acc", valid_acc_source, "x"),
            TestFile("bad.c", "c", "acc", broken, "x"),
        ]
        pipeline = ValidationPipeline(PipelineConfig(early_exit=True), model=model)
        result = pipeline.run(tests)
        bad = result.record_for("bad.c")
        assert not bad.compiled
        assert bad.judge_result is None
        assert not bad.pipeline_says_valid
        assert result.stats.judge.skipped == 1

    def test_record_all_judges_everything(self, valid_acc_source, model):
        broken = valid_acc_source.replace("{", "", 1)
        tests = [
            TestFile("good.c", "c", "acc", valid_acc_source, "x"),
            TestFile("bad.c", "c", "acc", broken, "x"),
        ]
        pipeline = ValidationPipeline(PipelineConfig(early_exit=False), model=model)
        result = pipeline.run(tests)
        assert all(r.judge_result is not None for r in result.records)

    def test_runtime_failure_blocks_pipeline_verdict(self, model):
        source = """#include <stdio.h>
#include <stdlib.h>
#include <openacc.h>
int main() {
    double *p;
    p[0] = 1.0;
    return 0;
}
"""
        tests = [TestFile("segv.c", "c", "acc", source, "x")]
        pipeline = ValidationPipeline(PipelineConfig(early_exit=True), model=model)
        record = pipeline.run(tests).records[0]
        assert record.compiled
        assert record.run_rc == 139
        assert not record.pipeline_says_valid

    def test_deterministic_across_worker_counts(self, valid_acc_source):
        """Parallelism must not change verdicts (prompt-seeded model)."""
        tests = make_tests(valid_acc_source, 6)
        verdicts = []
        for workers in (1, 4):
            pipeline = ValidationPipeline(
                PipelineConfig(
                    compile_workers=workers, execute_workers=workers, judge_workers=workers
                ),
                model=DeepSeekCoderSim(seed=31),
            )
            result = pipeline.run(tests)
            verdicts.append([r.pipeline_says_valid for r in result.records])
        assert verdicts[0] == verdicts[1]

    def test_stats_populated(self, valid_acc_source, model):
        tests = make_tests(valid_acc_source, 4)
        result = ValidationPipeline(PipelineConfig(), model=model).run(tests)
        stats = result.stats
        assert stats.files_total == 4
        assert stats.compile.processed == 4
        assert stats.throughput > 0
        assert stats.judge.simulated_seconds > 0

    def test_empty_input(self, model):
        result = ValidationPipeline(PipelineConfig(), model=model).run([])
        assert result.records == []
        assert result.stats.files_total == 0

    def test_tool_report_roundtrip(self, valid_acc_source, model):
        tests = make_tests(valid_acc_source, 1)
        record = ValidationPipeline(PipelineConfig(), model=model).run(tests).records[0]
        report = record.tool_report()
        assert report.compile_rc == 0
        assert report.run_rc == 0


class TestStats:
    def test_stage_record(self):
        stage = StageStats("compile")
        stage.record(True, 0.1, 0.1)
        stage.record(False, 0.2, 0.2)
        stage.record_skip()
        snap = stage.snapshot()
        assert snap["processed"] == 2
        assert snap["passed"] == 1
        assert snap["failed"] == 1
        assert snap["skipped"] == 1

    def test_pipeline_summary_shape(self):
        stats = PipelineStats()
        stats.files_total = 10
        stats.wall_seconds = 2.0
        summary = stats.summary()
        assert summary["files_total"] == 10
        assert set(summary["stages"]) == {"compile", "execute", "judge"}

    def test_throughput_zero_when_no_time(self):
        assert PipelineStats().throughput == 0.0

    def test_merge_wall_semantics(self):
        """Concurrent shards max their walls; sequential batches sum."""
        def batch(wall: float) -> PipelineStats:
            stats = PipelineStats()
            stats.wall_seconds = wall
            stats.files_total = 8
            return stats

        shards = PipelineStats()
        shards.merge(batch(2.0))
        shards.merge(batch(3.0))
        assert shards.wall_seconds == 3.0  # slowest shard

        service = PipelineStats()
        service.merge(batch(2.0), concurrent=False)
        service.merge(batch(3.0), concurrent=False)
        assert service.wall_seconds == 5.0  # whole serving period
        assert service.snapshot()["throughput_files_per_second"] == round(16 / 5.0, 3)

    def test_snapshot_is_a_detached_consistent_copy(self):
        stats = PipelineStats()
        stats.files_total = 4
        stats.wall_seconds = 2.0
        stats.judge.record(True, 0.5, simulated=3.0)
        stats.judge.record_skip()
        snap = stats.snapshot()
        assert snap == stats.summary()  # summary is the snapshot
        assert snap["judge_invocations_saved"] == 1
        assert snap["throughput_files_per_second"] == 2.0
        assert snap["simulated_seconds"] == 3.0
        # later mutation must not leak into the copy
        stats.judge.record(False, 0.1, simulated=1.0)
        assert snap["stages"]["judge"]["processed"] == 1

    def test_snapshot_consistent_under_concurrent_writers(self):
        """Derived figures come from the copied counters, never live ones."""
        import threading

        stats = PipelineStats()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                stats.judge.record(True, 0.001, simulated=1.0)

        writers = [threading.Thread(target=hammer) for _ in range(3)]
        for writer in writers:
            writer.start()
        try:
            for _ in range(200):
                snap = stats.snapshot()
                judge = snap["stages"]["judge"]
                # pass/fail split always sums to processed in one snapshot
                assert judge["passed"] + judge["failed"] == judge["processed"]
                assert snap["simulated_seconds"] == round(
                    judge["simulated_seconds"], 2
                )
        finally:
            stop.set()
            for writer in writers:
                writer.join()
