"""Unit tests for pragma/directive parsing."""

import pytest

from repro.compiler import openacc_spec, openmp_spec
from repro.compiler.diagnostics import DiagnosticEngine, SourceLocation
from repro.compiler.pragma import (
    Clause,
    PragmaParseError,
    parse_directive,
    split_pragma_line,
)

LOC = SourceLocation("t.c", 1, 1)


def parse_acc(text: str):
    diags = DiagnosticEngine()
    d = parse_directive(
        text, LOC, diags, openacc_spec.DIRECTIVE_NAMES, openacc_spec.CLAUSE_NAMES
    )
    return d, diags


def parse_omp(text: str):
    diags = DiagnosticEngine()
    d = parse_directive(
        text, LOC, diags, openmp_spec.DIRECTIVE_NAMES, openmp_spec.CLAUSE_NAMES
    )
    return d, diags


class TestSplitPragmaLine:
    def test_acc_line(self):
        assert split_pragma_line("#pragma acc parallel loop") == ("acc", "parallel loop")

    def test_omp_line(self):
        model, tail = split_pragma_line("#pragma omp target teams")
        assert model == "omp"

    def test_foreign_pragma(self):
        model, _ = split_pragma_line("#pragma once")
        assert model == ""

    def test_non_pragma_raises(self):
        with pytest.raises(PragmaParseError):
            split_pragma_line("#include <stdio.h>")


class TestDirectiveNames:
    def test_single_word(self):
        d, diags = parse_acc("#pragma acc parallel")
        assert not diags.has_errors
        assert d.name == "parallel"

    def test_longest_match_two_words(self):
        d, _ = parse_acc("#pragma acc parallel loop")
        assert d.name == "parallel loop"

    def test_longest_match_five_words(self):
        d, _ = parse_omp("#pragma omp target teams distribute parallel for")
        assert d.name == "target teams distribute parallel for"

    def test_enter_data(self):
        d, _ = parse_acc("#pragma acc enter data copyin(a)")
        assert d.name == "enter data"

    def test_unknown_directive_errors(self):
        d, diags = parse_acc("#pragma acc paralel loop")
        assert d is None
        assert "bad-directive" in diags.codes()

    def test_empty_directive_errors(self):
        d, diags = parse_acc("#pragma acc")
        assert d is None
        assert diags.has_errors


class TestClauses:
    def test_bare_clause(self):
        d, _ = parse_acc("#pragma acc loop seq")
        assert d.has_clause("seq")
        assert not d.clause("seq").has_argument

    def test_clause_with_argument(self):
        d, _ = parse_acc("#pragma acc parallel num_gangs(8)")
        assert d.clause("num_gangs").argument == "8"

    def test_multiple_clauses(self):
        d, _ = parse_acc("#pragma acc parallel loop copyin(a) copyout(b) collapse(2)")
        assert d.clause_names() == ["copyin", "copyout", "collapse"]

    def test_array_section_variables(self):
        d, _ = parse_acc("#pragma acc data copy(a[0:N], b[2:M])")
        assert d.clause("copy").variables() == ["a", "b"]

    def test_reduction_modifier_and_vars(self):
        d, _ = parse_acc("#pragma acc parallel loop reduction(+:x, y)")
        clause = d.clause("reduction")
        assert clause.modifier() == "+"
        assert clause.variables() == ["x", "y"]

    def test_map_with_array_section_colon(self):
        d, _ = parse_omp("#pragma omp target map(to: a[0:N])")
        clause = d.clause("map")
        assert clause.modifier() == "to"
        assert clause.variables() == ["a"]

    def test_map_tofrom_multiple(self):
        d, _ = parse_omp("#pragma omp target map(tofrom: a[0:N], b[0:N])")
        assert d.clause("map").variables() == ["a", "b"]

    def test_unknown_clause_reports(self):
        _, diags = parse_acc("#pragma acc parallel frobnicate(a)")
        assert "unknown-clause" in diags.codes()

    def test_unbalanced_clause_parens(self):
        d, diags = parse_acc("#pragma acc parallel copyin(a[0:N]")
        assert d is None
        assert "bad-clause-syntax" in diags.codes()

    def test_clause_str_roundtrip(self):
        clause = Clause("copyin", "a[0:N]")
        assert str(clause) == "copyin(a[0:N])"

    def test_directive_str(self):
        d, _ = parse_acc("#pragma acc parallel loop gang")
        assert str(d).startswith("#pragma acc parallel loop")
