"""Exhaustive template validation: every (template, model, language)
combination must render a test that compiles clean and exits 0.

This is the corpus's ground-truth guarantee: a "valid" file that fails
its own toolchain would poison every negative-probing experiment.
"""

import random

import pytest

from repro.compiler.driver import Compiler
from repro.corpus.templates import TEMPLATES, TemplateContext
from repro.runtime.executor import Executor

MATRIX = [
    (spec, model, language)
    for spec in TEMPLATES
    for model in spec.models
    for language in spec.languages
]


@pytest.mark.parametrize(
    "spec,model,language",
    MATRIX,
    ids=[f"{s.name}-{m}-{l}" for s, m, l in MATRIX],
)
def test_template_combination_is_valid(spec, model, language):
    rng = random.Random(91)
    ctx = TemplateContext(rng=rng, model=model, language=language)
    source = spec.render(ctx)
    ext = {"c": ".c", "cpp": ".cpp", "f90": ".f90"}[language]
    compiled = Compiler(model=model).compile(source, f"t{ext}")
    assert compiled.ok, f"{spec.name}/{model}/{language}: {compiled.stderr}"
    result = Executor().run(compiled)
    assert result.returncode == 0, (
        f"{spec.name}/{model}/{language}: rc={result.returncode} {result.stderr}"
    )


@pytest.mark.parametrize("seed", range(5))
def test_template_parameter_jitter_stays_valid(seed):
    """Randomized parameters must never break template validity."""
    rng = random.Random(seed)
    spec = rng.choice(TEMPLATES)
    model = rng.choice(spec.models)
    language = rng.choice(spec.languages)
    ctx = TemplateContext(rng=rng, model=model, language=language)
    source = spec.render(ctx)
    compiled = Compiler(model=model).compile(
        source, f"t.{ {'c': 'c', 'cpp': 'cpp', 'f90': 'f90'}[language] }"
    )
    assert compiled.ok, f"{spec.name}: {compiled.stderr}"
    assert Executor().run(compiled).returncode == 0
