"""Unit tests for the tokenizer."""

from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.lexer import Lexer, Token, TokenKind, tokenize


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENT]

    def test_keyword(self):
        assert kinds("int") == [TokenKind.KEYWORD]

    def test_underscore_identifier(self):
        assert texts("_my_var2") == ["_my_var2"]

    def test_integer_literal(self):
        assert kinds("42") == [TokenKind.INT_LIT]

    def test_hex_literal(self):
        assert texts("0xFF") == ["0xFF"]
        assert kinds("0xFF") == [TokenKind.INT_LIT]

    def test_float_literal(self):
        assert kinds("3.14") == [TokenKind.FLOAT_LIT]

    def test_float_exponent(self):
        assert kinds("1e-9") == [TokenKind.FLOAT_LIT]
        assert kinds("2.5E+10") == [TokenKind.FLOAT_LIT]

    def test_float_suffix(self):
        assert kinds("1.5f") == [TokenKind.FLOAT_LIT]

    def test_integer_suffixes(self):
        assert kinds("10UL") == [TokenKind.INT_LIT]

    def test_number_at_eof_terminates(self):
        # regression: suffix scanning must not loop at end of input
        assert kinds("123") == [TokenKind.INT_LIT]

    def test_string_literal(self):
        tokens = tokenize('"hello"')
        assert tokens[0].kind is TokenKind.STRING_LIT
        assert tokens[0].text == '"hello"'

    def test_string_with_escapes(self):
        tokens = tokenize(r'"a\n\"b"')
        assert tokens[0].kind is TokenKind.STRING_LIT

    def test_char_literal(self):
        tokens = tokenize("'x'")
        assert tokens[0].kind is TokenKind.CHAR_LIT


class TestOperators:
    def test_longest_match_shift_assign(self):
        assert texts("a <<= 2") == ["a", "<<=", "2"]

    def test_increment_vs_plus(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]

    def test_arrow(self):
        assert texts("p->x") == ["p", "->", "x"]

    def test_ellipsis(self):
        assert texts("f(...)") == ["f", "(", "...", ")"]

    def test_comparison_operators(self):
        assert texts("a<=b>=c==d!=e") == ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]

    def test_logical_operators(self):
        assert texts("a&&b||c") == ["a", "&&", "b", "||", "c"]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_reports_error(self):
        diags = DiagnosticEngine()
        Lexer("a /* never closed", "f.c", diags).tokenize()
        assert diags.has_errors
        assert "unterminated-comment" in diags.codes()

    def test_line_continuation(self):
        assert texts("a \\\n b") == ["a", "b"]


class TestPreprocessorLines:
    def test_hash_line_captured(self):
        tokens = tokenize("#include <stdio.h>\nint x;")
        assert tokens[0].kind is TokenKind.HASH_LINE
        assert "include" in tokens[0].text

    def test_pragma_line_captured_whole(self):
        tokens = tokenize("#pragma acc parallel loop copy(a[0:N])\n")
        assert tokens[0].kind is TokenKind.HASH_LINE
        assert tokens[0].text.endswith("copy(a[0:N])")

    def test_hash_after_indent_is_hash_line(self):
        tokens = tokenize("    #pragma omp barrier\n")
        assert tokens[0].kind is TokenKind.HASH_LINE

    def test_multiline_pragma_continuation_joined(self):
        tokens = tokenize("#pragma acc parallel \\\n loop\nx")
        assert tokens[0].kind is TokenKind.HASH_LINE
        assert "loop" in tokens[0].text

    def test_hash_mid_line_is_error_not_directive(self):
        diags = DiagnosticEngine()
        Lexer("int a # b;", "f.c", diags).tokenize()
        assert diags.has_errors


class TestErrorRecovery:
    def test_stray_character_reported_and_skipped(self):
        diags = DiagnosticEngine()
        tokens = Lexer("a @ b", "f.c", diags).tokenize()
        assert diags.has_errors
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_string_reported(self):
        diags = DiagnosticEngine()
        Lexer('"abc', "f.c", diags).tokenize()
        assert "unterminated-literal" in diags.codes()

    def test_locations_track_lines(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[2].location.line == 3
        assert tokens[2].location.column == 3


class TestTokenHelpers:
    def test_is_punct(self):
        tok = tokenize("{")[0]
        assert tok.is_punct("{", "}")
        assert not tok.is_punct(";")

    def test_is_keyword(self):
        tok = tokenize("while")[0]
        assert tok.is_keyword("while")
        assert not tok.is_keyword("for")
