"""Unit tests for the tokenizer."""

import pytest

from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.lexer import Lexer, Token, TokenKind, tokenize


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENT]

    def test_keyword(self):
        assert kinds("int") == [TokenKind.KEYWORD]

    def test_underscore_identifier(self):
        assert texts("_my_var2") == ["_my_var2"]

    def test_integer_literal(self):
        assert kinds("42") == [TokenKind.INT_LIT]

    def test_hex_literal(self):
        assert texts("0xFF") == ["0xFF"]
        assert kinds("0xFF") == [TokenKind.INT_LIT]

    def test_float_literal(self):
        assert kinds("3.14") == [TokenKind.FLOAT_LIT]

    def test_float_exponent(self):
        assert kinds("1e-9") == [TokenKind.FLOAT_LIT]
        assert kinds("2.5E+10") == [TokenKind.FLOAT_LIT]

    def test_float_suffix(self):
        assert kinds("1.5f") == [TokenKind.FLOAT_LIT]

    def test_integer_suffixes(self):
        assert kinds("10UL") == [TokenKind.INT_LIT]

    def test_number_at_eof_terminates(self):
        # regression: suffix scanning must not loop at end of input
        assert kinds("123") == [TokenKind.INT_LIT]

    def test_string_literal(self):
        tokens = tokenize('"hello"')
        assert tokens[0].kind is TokenKind.STRING_LIT
        assert tokens[0].text == '"hello"'

    def test_string_with_escapes(self):
        tokens = tokenize(r'"a\n\"b"')
        assert tokens[0].kind is TokenKind.STRING_LIT

    def test_char_literal(self):
        tokens = tokenize("'x'")
        assert tokens[0].kind is TokenKind.CHAR_LIT


class TestOperators:
    def test_longest_match_shift_assign(self):
        assert texts("a <<= 2") == ["a", "<<=", "2"]

    def test_increment_vs_plus(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]

    def test_arrow(self):
        assert texts("p->x") == ["p", "->", "x"]

    def test_ellipsis(self):
        assert texts("f(...)") == ["f", "(", "...", ")"]

    def test_comparison_operators(self):
        assert texts("a<=b>=c==d!=e") == ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]

    def test_logical_operators(self):
        assert texts("a&&b||c") == ["a", "&&", "b", "||", "c"]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_reports_error(self):
        diags = DiagnosticEngine()
        Lexer("a /* never closed", "f.c", diags).tokenize()
        assert diags.has_errors
        assert "unterminated-comment" in diags.codes()

    def test_line_continuation(self):
        assert texts("a \\\n b") == ["a", "b"]


class TestPreprocessorLines:
    def test_hash_line_captured(self):
        tokens = tokenize("#include <stdio.h>\nint x;")
        assert tokens[0].kind is TokenKind.HASH_LINE
        assert "include" in tokens[0].text

    def test_pragma_line_captured_whole(self):
        tokens = tokenize("#pragma acc parallel loop copy(a[0:N])\n")
        assert tokens[0].kind is TokenKind.HASH_LINE
        assert tokens[0].text.endswith("copy(a[0:N])")

    def test_hash_after_indent_is_hash_line(self):
        tokens = tokenize("    #pragma omp barrier\n")
        assert tokens[0].kind is TokenKind.HASH_LINE

    def test_multiline_pragma_continuation_joined(self):
        tokens = tokenize("#pragma acc parallel \\\n loop\nx")
        assert tokens[0].kind is TokenKind.HASH_LINE
        assert "loop" in tokens[0].text

    def test_hash_mid_line_is_error_not_directive(self):
        diags = DiagnosticEngine()
        Lexer("int a # b;", "f.c", diags).tokenize()
        assert diags.has_errors


class TestErrorRecovery:
    def test_stray_character_reported_and_skipped(self):
        diags = DiagnosticEngine()
        tokens = Lexer("a @ b", "f.c", diags).tokenize()
        assert diags.has_errors
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_string_reported(self):
        diags = DiagnosticEngine()
        Lexer('"abc', "f.c", diags).tokenize()
        assert "unterminated-literal" in diags.codes()

    def test_locations_track_lines(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[2].location.line == 3
        assert tokens[2].location.column == 3


class TestTokenHelpers:
    def test_is_punct(self):
        tok = tokenize("{")[0]
        assert tok.is_punct("{", "}")
        assert not tok.is_punct(";")

    def test_is_keyword(self):
        tok = tokenize("while")[0]
        assert tok.is_keyword("while")
        assert not tok.is_keyword("for")


class TestScannerMatchesSpec:
    """The batch master-regex scanner behind ``tokenize()`` must emit
    exactly the stream the character-at-a-time ``next_token`` loop (the
    executable spec) emits — token kinds, texts, locations AND
    diagnostics — plus interned ident/keyword/punct text."""

    @staticmethod
    def _spec_stream(source):
        diags = DiagnosticEngine(error_limit=10_000)
        lexer = Lexer(source, "t.c", diags)
        tokens = []
        while True:
            tok = lexer.next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens, diags.render_stderr()

    def _assert_identical(self, source):
        spec_tokens, spec_diags = self._spec_stream(source)
        diags = DiagnosticEngine(error_limit=10_000)
        fast_tokens = Lexer(source, "t.c", diags).tokenize()
        assert fast_tokens == spec_tokens
        assert diags.render_stderr() == spec_diags

    @pytest.mark.parametrize("source", [
        "int main() { return 0; }",
        "#pragma acc parallel \\\n loop copy(a[0:N])\nx = 1;",
        "double d = .5e-3f; float f = 1.f; int h = 0x; int u = 1uf8;",
        "a /* multi\nline */ b // trailing\nc",
        '"str \\" esc" \'c\' \'\\n\'',
        'char *s = "unterminated\nint y;',
        "'unterminated char\nx",
        "a /* never closed",
        "int a # b;",
        "x@y $z \\q",
        "i+++++j; a->b; x<<=2; t...u; ..5 ...5 1..2 1.2.3",
        "1e 1e+2 1e+x 0x1uf 0xff 123abc",
        "  #pragma omp barrier\n",
        "",
    ])
    def test_edge_cases(self, source):
        self._assert_identical(source)

    def test_corpus_token_streams(self, acc_corpus, omp_corpus):
        for test in list(acc_corpus) + list(omp_corpus):
            self._assert_identical(test.source)

    def test_interned_token_text(self):
        import sys

        tokens = tokenize("while (count) { count += 1; }")
        for tok in tokens[:-1]:
            if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD, TokenKind.PUNCT):
                assert tok.text is sys.intern(tok.text)
