"""Unit tests for the content-addressed result cache layer."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache.bundle import PipelineCache
from repro.cache.keys import compile_key, content_key, execute_key, judge_key
from repro.cache.store import Codec, ResultCache
from repro.cache.wrappers import (
    CachingAgentJudge,
    CachingCompiler,
    CachingDirectJudge,
    CachingExecutor,
)
from repro.compiler.driver import Compiler
from repro.corpus.generator import TestFile
from repro.judge.llmj import AgentLLMJ, DirectLLMJ, JudgeResult
from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.engine import PipelineConfig, ValidationPipeline
from repro.runtime.executor import Executor


class TestKeys:
    def test_key_is_stable_across_calls(self):
        assert content_key("a", 1, {"x": [1, 2]}) == content_key("a", 1, {"x": [1, 2]})

    def test_key_depends_on_every_part(self):
        base = compile_key("compiler:acc:4.5", "t.c", "int main(){}")
        assert base != compile_key("compiler:omp:4.5", "t.c", "int main(){}")
        assert base != compile_key("compiler:acc:4.5", "u.c", "int main(){}")
        assert base != compile_key("compiler:acc:4.5", "t.c", "int main(){return 1;}")

    def test_part_boundaries_matter(self):
        assert content_key("ab", "c") != content_key("a", "bc")

    def test_key_stability_across_processes(self):
        """Pinned digest: a changed key function silently invalidates
        every persisted cache, so changes must be deliberate."""
        assert content_key("probe") == (
            "f8e0e5e2245d89d2f43dae922948ee25696b4f000edb168cf3eea4bd11d6f782"
        )

    def test_execute_and_judge_keys_namespaced(self):
        assert execute_key("deadbeef", 100) != content_key("deadbeef", 100)
        assert judge_key("f", "t.c", "src", None) != content_key("f", "t.c", "src", None)


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache("t")
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.snapshot() == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}

    def test_lru_eviction_order(self):
        cache = ResultCache("t", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh 'a'; 'b' becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_get_or_compute(self):
        cache = ResultCache("t")
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 41
        assert len(calls) == 1

    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            ResultCache("t", max_entries=0)

    def test_corrupt_disk_file_is_cold_start(self, tmp_path):
        cache = PipelineCache(cache_dir=tmp_path)
        (tmp_path / "judge.json").write_text("{not json")
        assert cache.load() == 0


class TestCachingCompiler:
    def test_hit_returns_same_result(self, valid_acc_source):
        store = ResultCache("compile")
        compiler = CachingCompiler(Compiler("acc"), store)
        first = compiler.compile(valid_acc_source, "t.c")
        second = compiler.compile(valid_acc_source, "t.c")
        assert first is second
        assert store.hits == 1 and store.misses == 1

    def test_different_filename_misses(self, valid_acc_source):
        store = ResultCache("compile")
        compiler = CachingCompiler(Compiler("acc"), store)
        compiler.compile(valid_acc_source, "t.c")
        compiler.compile(valid_acc_source, "u.c")
        assert store.misses == 2


class TestCachingExecutor:
    def test_hit_skips_reinterpretation(self, valid_acc_source):
        compiled = Compiler("acc").compile(valid_acc_source, "t.c")
        store = ResultCache("execute")
        executor = CachingExecutor(Executor(step_limit=2_000_000), store)
        first = executor.run(compiled)
        second = executor.run(compiled)
        assert first.returncode == 0
        assert first is second
        assert store.hits == 1

    def test_uncachable_result_executes_without_store(self, valid_acc_source):
        compiled = Compiler("acc").compile(valid_acc_source, "t.c")
        compiled.content_key = ""  # e.g. hand-built results in tests
        store = ResultCache("execute")
        executor = CachingExecutor(Executor(step_limit=2_000_000), store)
        assert executor.run(compiled).returncode == 0
        assert len(store) == 0


class TestCachingJudges:
    def test_direct_judge_hits_for_same_test(self, valid_acc_source, model):
        store = ResultCache("judge")
        judge = CachingDirectJudge(DirectLLMJ(model, "acc"), store)
        test = TestFile("t.c", "c", "acc", valid_acc_source, "x")
        first = judge.judge(test)
        second = judge.judge(test)
        assert first is second
        assert first.says_valid == second.says_valid
        assert store.hits == 1

    def test_agent_judge_key_covers_tool_report(self, valid_acc_source, model):
        from repro.judge.agent import ToolReport

        store = ResultCache("judge")
        judge = CachingAgentJudge(AgentLLMJ(model, "acc", kind="indirect"), store)
        test = TestFile("t.c", "c", "acc", valid_acc_source, "x")
        clean = ToolReport(0, "", "", 0, "", "PASSED", ())
        failed = ToolReport(1, "error: nope", "", None, None, None, ("syntax",))
        judge.judge(test, clean)
        judge.judge(test, failed)
        assert store.misses == 2  # different evidence, different key
        judge.judge(test, clean)
        assert store.hits == 1


class TestPersistence:
    def test_judge_result_json_roundtrip(self, valid_acc_source, model):
        test = TestFile("t.c", "c", "acc", valid_acc_source, "x")
        result = DirectLLMJ(model, "acc").judge(test)
        restored = JudgeResult.from_json(json.loads(json.dumps(result.to_json())))
        assert restored == result

    def test_warm_start_from_disk(self, tmp_path, valid_acc_source, model):
        test = TestFile("t.c", "c", "acc", valid_acc_source, "x")

        first = PipelineCache(cache_dir=tmp_path)
        judge = CachingDirectJudge(DirectLLMJ(model, "acc"), first.judge)
        verdict = judge.judge(test)
        compiled = Compiler("acc").compile(valid_acc_source, "t.c")
        CachingExecutor(Executor(), first.execute).run(compiled)
        first.save()
        assert (tmp_path / "judge.json").exists()
        assert (tmp_path / "execute.json").exists()

        second = PipelineCache(cache_dir=tmp_path)
        assert second.load() == 2
        rejudge = CachingDirectJudge(DirectLLMJ(model, "acc"), second.judge)
        assert rejudge.judge(test) == verdict
        assert second.judge.hits == 1

    def test_compile_namespace_is_memory_only(self, tmp_path, valid_acc_source):
        cache = PipelineCache(cache_dir=tmp_path)
        CachingCompiler(Compiler("acc"), cache.compile).compile(valid_acc_source, "t.c")
        cache.save()
        assert not (tmp_path / "compile.json").exists()


_PLAIN_CODEC = Codec(encode=lambda value: value, decode=lambda value: value)

# Worker for the concurrent-save test: fill a namespace with tagged
# entries, then hammer save_to() so two processes' merge windows
# interleave.  Run as `python -c SCRIPT tag dir rounds`.
_WRITER_SCRIPT = """
import sys
from repro.cache.store import Codec, ResultCache

tag, directory, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
cache = ResultCache("judge", codec=Codec(lambda v: v, lambda v: v))
for i in range(50):
    cache.put(f"{tag}:{i}", {"tag": tag, "i": i})
for _ in range(rounds):
    assert cache.save_to(directory) is not None
"""


class TestConcurrentProcesses:
    """Shard-safety of the on-disk namespaces (the PR-3 sharding layer
    has worker processes saving to one shared cache directory)."""

    def _writer_env(self):
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_sequential_saves_merge_instead_of_clobbering(self, tmp_path):
        first = ResultCache("judge", codec=_PLAIN_CODEC)
        first.put("a", 1)
        first.save_to(tmp_path)
        second = ResultCache("judge", codec=_PLAIN_CODEC)
        second.put("b", 2)
        second.save_to(tmp_path)

        merged = ResultCache("judge", codec=_PLAIN_CODEC)
        assert merged.load_from(tmp_path) == 2
        assert merged.get("a") == 1 and merged.get("b") == 2

    def test_in_memory_value_wins_on_key_overlap(self, tmp_path):
        stale = ResultCache("judge", codec=_PLAIN_CODEC)
        stale.put("k", "old")
        stale.save_to(tmp_path)
        fresh = ResultCache("judge", codec=_PLAIN_CODEC)
        fresh.put("k", "new")
        fresh.save_to(tmp_path)
        reread = ResultCache("judge", codec=_PLAIN_CODEC)
        reread.load_from(tmp_path)
        assert reread.get("k") == "new"

    def test_merged_file_honours_max_entries(self, tmp_path):
        big = ResultCache("judge", codec=_PLAIN_CODEC)
        for i in range(5):
            big.put(f"old:{i}", i)
        big.save_to(tmp_path)

        bounded = ResultCache("judge", max_entries=3, codec=_PLAIN_CODEC)
        bounded.put("new", 99)
        bounded.save_to(tmp_path)

        payload = json.loads((tmp_path / "judge.json").read_text())
        assert len(payload) == 3  # capped, not 6
        assert payload["new"] == 99  # this process's entries survive

    def test_merge_survives_corrupt_disk_payload(self, tmp_path):
        (tmp_path / "judge.json").write_text("{definitely not json")
        cache = ResultCache("judge", codec=_PLAIN_CODEC)
        cache.put("a", 1)
        assert cache.save_to(tmp_path) is not None
        reread = ResultCache("judge", codec=_PLAIN_CODEC)
        assert reread.load_from(tmp_path) == 1

    def test_two_processes_write_same_namespace_losslessly(self, tmp_path):
        """Two live processes repeatedly saving the same namespace must
        not lose or corrupt entries (flock + merge-on-save + atomic
        rename)."""
        env = self._writer_env()
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, tag, str(tmp_path), "25"],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for tag in ("left", "right")
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()

        merged = ResultCache("judge", codec=_PLAIN_CODEC)
        assert merged.load_from(tmp_path) == 100
        for tag in ("left", "right"):
            for i in range(50):
                assert merged.get(f"{tag}:{i}") == {"tag": tag, "i": i}


class TestPipelineEquivalence:
    def _run(self, files, cache):
        pipeline = ValidationPipeline(
            PipelineConfig(flavor="acc", early_exit=False),
            model=DeepSeekCoderSim(seed=4242),
            cache=cache,
        )
        return pipeline.run(files)

    def test_records_identical_with_and_without_cache(self, acc_probed):
        files = list(acc_probed)[:12]
        uncached = self._run(files, cache=None)
        cache = PipelineCache()
        cold = self._run(files, cache=cache)
        warm = self._run(files, cache=cache)
        assert cache.hits > 0
        for a, b, c in zip(uncached.records, cold.records, warm.records):
            for name, other in (("cold", b), ("warm", c)):
                assert a.test.name == other.test.name, name
                assert a.compile_rc == other.compile_rc, name
                assert a.compile_stderr == other.compile_stderr, name
                assert a.run_rc == other.run_rc, name
                assert a.run_stdout == other.run_stdout, name
                assert a.judge_result == other.judge_result, name
                assert a.pipeline_says_valid == other.pipeline_says_valid, name

    def test_warm_pipeline_skips_judge_generation(self, acc_probed):
        files = list(acc_probed)[:8]
        cache = PipelineCache()
        self._run(files, cache)
        before = cache.judge.hits
        self._run(files, cache)
        assert cache.judge.hits >= before + len(files)
