"""Unit tests for the runtime value model."""

import pytest

from repro.compiler.astnodes import CType, DOUBLE, INT
from repro.runtime.values import (
    CArray,
    HeapBlock,
    MemoryFault,
    Pointer,
    UNINIT,
    coerce_to_type,
    sizeof_type,
    truthy,
)


class TestSizes:
    def test_scalar_sizes(self):
        assert sizeof_type(CType("char")) == 1
        assert sizeof_type(CType("int")) == 4
        assert sizeof_type(CType("long")) == 8
        assert sizeof_type(CType("float")) == 4
        assert sizeof_type(CType("double")) == 8

    def test_pointer_size(self):
        assert sizeof_type(CType("double", pointers=1)) == 8
        assert sizeof_type(CType("char", pointers=2)) == 8


class TestHeapBlock:
    def test_store_load_roundtrip(self):
        block = HeapBlock(size=32)
        block.store(8, 8, 3.5)
        assert block.load(8, 8) == 3.5

    def test_default_load_is_zero(self):
        block = HeapBlock(size=8)
        assert block.load(0, 8) == 0

    def test_out_of_bounds_read_faults(self):
        block = HeapBlock(size=8)
        with pytest.raises(MemoryFault):
            block.load(8, 8)

    def test_out_of_bounds_write_faults(self):
        block = HeapBlock(size=8)
        with pytest.raises(MemoryFault):
            block.store(4, 8, 1.0)

    def test_negative_offset_faults(self):
        block = HeapBlock(size=8)
        with pytest.raises(MemoryFault):
            block.load(-8, 8)

    def test_freed_access_faults(self):
        block = HeapBlock(size=8)
        block.freed = True
        with pytest.raises(MemoryFault):
            block.load(0, 8)


class TestPointer:
    def test_indexing(self):
        block = HeapBlock(size=32)
        ptr = Pointer(block, 0, DOUBLE)
        ptr.index(2).store(5.0)
        assert block.load(16, 8) == 5.0

    def test_pointer_add_respects_element_size(self):
        block = HeapBlock(size=32)
        dptr = Pointer(block, 0, DOUBLE)
        iptr = Pointer(block, 0, INT)
        assert dptr.add(1).byte_offset == 8
        assert iptr.add(1).byte_offset == 4

    def test_retag_changes_element_size(self):
        block = HeapBlock(size=32)
        ptr = Pointer(block, 0, DOUBLE).retag(INT)
        assert ptr.elem_size == 4


class TestCArray:
    def test_flat_length(self):
        arr = CArray(DOUBLE, [3, 4])
        assert arr.flat_length() == 12
        assert arr.block.size == 96

    def test_subarray_pointer_full_index(self):
        arr = CArray(INT, [2, 3])
        ptr = arr.subarray_pointer([1, 2])
        assert ptr.byte_offset == (1 * 3 + 2) * 4

    def test_subarray_pointer_partial_index(self):
        arr = CArray(INT, [2, 3])
        row = arr.subarray_pointer([1])
        assert row.byte_offset == 3 * 4

    def test_index_out_of_bounds_faults(self):
        arr = CArray(INT, [2, 3])
        with pytest.raises(MemoryFault):
            arr.subarray_pointer([2, 0])

    def test_too_many_subscripts_faults(self):
        arr = CArray(INT, [2])
        with pytest.raises(MemoryFault):
            arr.subarray_pointer([0, 0, 0])


class TestCoercion:
    def test_float_to_int_truncates(self):
        assert coerce_to_type(3.9, INT) == 3

    def test_int_to_float(self):
        assert coerce_to_type(3, DOUBLE) == 3.0
        assert isinstance(coerce_to_type(3, DOUBLE), float)

    def test_int_wraps_32_bits(self):
        assert coerce_to_type(0x80000000, INT) == -0x80000000

    def test_char_wraps_8_bits(self):
        assert coerce_to_type(300, CType("char")) == 300 - 256

    def test_uninit_passes_through(self):
        assert coerce_to_type(UNINIT, INT) is UNINIT


class TestTruthy:
    def test_zero_is_false(self):
        assert not truthy(0)
        assert not truthy(0.0)

    def test_nonzero_is_true(self):
        assert truthy(1)
        assert truthy(-0.5)

    def test_uninit_is_false(self):
        assert not truthy(UNINIT)

    def test_pointer_is_true(self):
        assert truthy(Pointer(HeapBlock(size=8), 0, DOUBLE))

    def test_uninit_is_singleton(self):
        from repro.runtime.values import _Uninitialized

        assert _Uninitialized() is UNINIT
