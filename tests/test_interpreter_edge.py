"""Edge-case interpreter tests: conversions, scoping, region corners."""

from repro.compiler.driver import Compiler
from repro.runtime.executor import Executor


def run(source: str, model: str = "acc"):
    compiled = Compiler(model=model).compile(source, "t.c")
    assert compiled.ok, compiled.stderr
    return Executor().run(compiled)


HEADER = "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n#include <openacc.h>\n"
OMP_HEADER = "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n#include <omp.h>\n"


class TestConversions:
    def test_int_to_double_in_mixed_arithmetic(self):
        src = HEADER + "int main() { double x = 3 / 2.0; return x == 1.5 ? 0 : 1; }"
        assert run(src).returncode == 0

    def test_cast_truncates(self):
        src = HEADER + "int main() { return (int)3.99 - 3; }"
        assert run(src).returncode == 0

    def test_char_arithmetic(self):
        src = HEADER + "int main() { char c = 'A'; return c + 1 - 'B'; }"
        assert run(src).returncode == 0

    def test_assignment_coerces_to_declared_type(self):
        src = HEADER + "int main() { int x = 2.7; return x - 2; }"
        assert run(src).returncode == 0

    def test_float_storage_precision(self):
        # float (4-byte cell) keeps the assigned Python float in this model;
        # the test just confirms round-tripping works
        src = HEADER + "int main() { float f = 0.5; return f * 2.0 == 1.0 ? 0 : 1; }"
        assert run(src).returncode == 0


class TestScoping:
    def test_shadowing_in_block(self):
        src = HEADER + """
int main() {
    int x = 1;
    {
        int x = 2;
        if (x != 2) return 1;
    }
    return x == 1 ? 0 : 2;
}
"""
        assert run(src).returncode == 0

    def test_loop_variable_scope_fresh_each_call(self):
        src = HEADER + """
int counter() {
    int total = 0;
    for (int i = 0; i < 3; i++) { total++; }
    return total;
}
int main() { return counter() + counter() - 6; }
"""
        assert run(src).returncode == 0

    def test_global_mutation_persists(self):
        src = HEADER + """
int counter = 0;
void bump() { counter = counter + 1; }
int main() { bump(); bump(); return counter - 2; }
"""
        assert run(src).returncode == 0

    def test_globals_initialized_once(self):
        src = HEADER + """
int base = 5;
int get() { return base; }
int main() { base = 7; return get() - 7; }
"""
        assert run(src).returncode == 0


class TestRegionCorners:
    def test_if_clause_false_runs_on_host(self):
        src = HEADER + """
int main() {
    double a[4];
    for (int i = 0; i < 4; i++) { a[i] = 1.0; }
    int flag = 0;
#pragma acc parallel loop if(flag) copy(a[0:4])
    for (int i = 0; i < 4; i++) { a[i] = a[i] + 1.0; }
    return a[0] == 2.0 ? 0 : 1;
}
"""
        assert run(src).returncode == 0

    def test_nested_data_regions_refcount(self):
        src = HEADER + """
int main() {
    double a[4];
    for (int i = 0; i < 4; i++) { a[i] = 1.0; }
#pragma acc data copy(a[0:4])
    {
#pragma acc data copyin(a[0:4])
        {
#pragma acc parallel loop present(a[0:4])
            for (int i = 0; i < 4; i++) { a[i] = a[i] + 1.0; }
        }
    }
    return a[0] == 2.0 ? 0 : 1;
}
"""
        assert run(src).returncode == 0

    def test_private_loop_variable_does_not_leak(self):
        src = OMP_HEADER + """
int main() {
    int i = 99;
#pragma omp parallel for
    for (int i = 0; i < 8; i++) { }
    return i == 99 ? 0 : 1;
}
"""
        assert run(src, "omp").returncode == 0

    def test_firstprivate_value_captured(self):
        src = OMP_HEADER + """
int main() {
    int offset = 5;
    int out[4];
#pragma omp parallel for firstprivate(offset)
    for (int i = 0; i < 4; i++) { out[i] = i + offset; }
    return out[3] == 8 ? 0 : 1;
}
"""
        assert run(src, "omp").returncode == 0

    def test_atomic_inside_parallel_region_counts(self):
        src = OMP_HEADER + """
int main() {
    int hits = 0;
#pragma omp parallel for shared(hits)
    for (int i = 0; i < 10; i++) {
#pragma omp atomic
        hits = hits + 1;
    }
    return hits - 10;
}
"""
        assert run(src, "omp").returncode == 0

    def test_sections_execute_all(self):
        src = OMP_HEADER + """
int main() {
    int a = 0;
    int b = 0;
#pragma omp parallel
    {
#pragma omp sections
        {
#pragma omp section
            { a = 1; }
#pragma omp section
            { b = 2; }
        }
    }
    return (a + b) - 3;
}
"""
        assert run(src, "omp").returncode == 0

    def test_task_executes_inline(self):
        src = OMP_HEADER + """
int main() {
    int done = 0;
#pragma omp parallel
    {
#pragma omp single
        {
#pragma omp task
            { done = 1; }
#pragma omp taskwait
        }
    }
    return done == 1 ? 0 : 1;
}
"""
        assert run(src, "omp").returncode == 0


class TestStringsAndIo:
    def test_string_in_array_of_chars_not_needed(self):
        src = HEADER + 'int main() { printf("%s %s\\n", "multi", "arg"); return 0; }'
        assert run(src).stdout == "multi arg\n"

    def test_stdout_accumulates_in_order(self):
        src = HEADER + """
int main() {
    for (int i = 0; i < 3; i++) {
        printf("%d,", i);
    }
    printf("\\n");
    return 0;
}
"""
        assert run(src).stdout == "0,1,2,\n"

    def test_fprintf_goes_to_stderr(self):
        src = HEADER + 'int main() { fprintf(stderr, "oops\\n"); return 0; }'
        result = run(src)
        assert "oops" in result.stderr
        assert "oops" not in result.stdout
