"""Unit tests for the codegen backend: source emission, memoization,
frame layout, directive plans, faults and step-limit renormalization.

Corpus-wide byte-equivalence with the walker lives in
``tests/test_backend_equivalence.py``; this file exercises the pieces
specific to :mod:`repro.runtime.codegen` — the two-stage translate/bind
split, the generated source itself, and the batched step accounting
that must stay indistinguishable from the walker's tick-by-tick count.
"""

from __future__ import annotations

import pytest

from repro.compiler.driver import Compiler
from repro.runtime.codegen import CodegenProgram, compile_unit
from repro.runtime.executor import Executor
from repro.runtime.interpreter import EXECUTION_BACKENDS, Interpreter


def compile_source(source: str, flavor: str = "acc", filename: str = "t.c"):
    compiled = Compiler(model=flavor).compile(source, filename)
    assert compiled.ok, compiled.stderr
    return compiled


def run(compiled, backend: str = "codegen", step_limit: int = 2_000_000):
    return Executor(step_limit=step_limit, backend=backend).run(compiled)


# ----------------------------------------------------------------------
# translation stage: memoization and generated source
# ----------------------------------------------------------------------


class TestTranslation:
    def test_compile_unit_memoizes_on_the_unit(self):
        compiled = compile_source("int main() { return 0; }")
        first = compile_unit(compiled.unit)
        second = compile_unit(compiled.unit)
        assert first is second
        assert isinstance(first, CodegenProgram)
        assert compiled.unit._codegen_program is first

    def test_repeated_runs_share_one_program(self):
        """The expensive translate+compile() happens once; every run
        only re-binds the cached code objects to a fresh interpreter."""
        compiled = compile_source(
            "int main() { int s = 0;"
            " for (int i = 0; i < 50; i++) { s += i; }"
            " return s > 1000 ? 1 : 0; }"
        )
        a = run(compiled)
        program = compiled.unit._codegen_program
        b = run(compiled)
        assert compiled.unit._codegen_program is program
        assert a == b

    def test_cached_compile_shares_codegen_program(self):
        from repro.cache.store import ResultCache
        from repro.cache.wrappers import CachingCompiler

        caching = CachingCompiler(Compiler(model="acc"), ResultCache("compile"))
        src = "int main() { return 3; }"
        a = caching.compile(src, "t.c")
        b = caching.compile(src, "t.c")
        assert a.unit is b.unit
        assert compile_unit(a.unit) is compile_unit(b.unit)

    def test_only_bodies_are_translated(self):
        compiled = compile_source(
            "double frexp2(double x);\n"
            "int helper(int n) { return n + 1; }\n"
            "int main() { return helper(1) - 2; }\n"
        )
        program = compile_unit(compiled.unit)
        assert set(program.functions) == {"helper", "main"}

    def test_source_is_real_compiled_python(self):
        compiled = compile_source(
            "int main() { int x = 1; x = x + 1; return x; }"
        )
        program = compile_unit(compiled.unit)
        # one maker per function, compiled from the emitted source
        assert "def _mk0(" in program.source
        assert program.code.co_filename == "<repro-codegen>"
        # step charges are batched: the emitted charge bumps the shared
        # one-cell counter and renormalizes to L+1 on overflow
        assert "st[0] = _n = st[0] +" in program.source
        assert "raise _SLE(L)" in program.source

    def test_hot_helpers_are_bound_as_locals(self):
        """The hot helper names are shadowed as default arguments so the
        generated bodies hit LOAD_FAST instead of global lookups."""
        compiled = compile_source("int main() { return 0; }")
        program = compile_unit(compiled.unit)
        assert "def call(args, st=st, L=L," in program.source

    def test_frame_layout_slot_per_declaration(self):
        compiled = compile_source(
            "int main() {\n"
            "    int a = 1;\n"
            "    { int a = 2; int b = a; }\n"
            "    for (int i = 0; i < 3; i++) { int t = i; a += t; }\n"
            "    return a;\n"
            "}\n"
        )
        program = compile_unit(compiled.unit)
        # a, inner a, b, i, t: shadowing never reuses a slot
        assert program.functions["main"].nslots >= 5

    def test_param_specs_cover_parameters(self):
        compiled = compile_source(
            "int add(int a, int b) { return a + b; }\n"
            "int main() { return add(2, 3); }\n"
        )
        program = compile_unit(compiled.unit)
        assert len(program.functions["add"].param_specs) == 2
        assert len(program.functions["main"].param_specs) == 0


# ----------------------------------------------------------------------
# binding stage: behavior through the Executor
# ----------------------------------------------------------------------


class TestExecution:
    def test_slot_shadowing_resolved(self):
        compiled = compile_source(r"""
            #include <stdio.h>
            int main() {
                int x = 1;
                { int x = 2; printf("inner=%d\n", x); }
                printf("outer=%d\n", x);
                return 0;
            }
        """)
        result = run(compiled)
        assert result.stdout == "inner=2\nouter=1\n"
        assert result == run(compiled, backend="walk")

    def test_directive_plan_reduction(self):
        compiled = compile_source(r"""
            #include <stdio.h>
            int main() {
                int s = 0;
                #pragma acc parallel loop reduction(+:s)
                for (int i = 0; i < 10; i++) { s += i; }
                printf("%d\n", s);
                return s == 45 ? 0 : 1;
            }
        """)
        result = run(compiled)
        assert result.returncode == 0
        assert result.stdout == "45\n"
        assert result == run(compiled, backend="walk")

    def test_directive_plan_data_movement(self):
        compiled = compile_source(r"""
            #include <stdio.h>
            #define N 6
            int main() {
                int a[N];
                #pragma acc parallel loop copyout(a[0:N])
                for (int i = 0; i < N; i++) { a[i] = i * i; }
                int total = 0;
                for (int i = 0; i < N; i++) { total += a[i]; }
                printf("%d\n", total);
                return 0;
            }
        """)
        result = run(compiled)
        assert result.stdout == "55\n"
        assert result == run(compiled, backend="walk")

    def test_fault_out_of_bounds(self):
        compiled = compile_source(r"""
            #include <stdio.h>
            int main() {
                int a[3];
                a[0] = 1;
                printf("before\n");
                a[7] = 2;
                printf("after\n");
                return 0;
            }
        """)
        result = run(compiled)
        assert result.returncode == 139
        assert result.fault is not None
        assert result.stdout == "before\n"
        assert result == run(compiled, backend="walk")

    def test_fault_stack_overflow(self):
        compiled = compile_source(r"""
            int deep(int n) { return n == 0 ? 0 : deep(n - 1); }
            int main() { return deep(100000); }
        """)
        result = run(compiled)
        assert result.returncode == 139
        assert result.fault == "stack overflow (recursion too deep)"
        assert result == run(compiled, backend="walk")

    def test_invalid_backend_rejected(self):
        compiled = compile_source("int main() { return 0; }")
        with pytest.raises(ValueError, match="backend"):
            Interpreter(compiled.unit, backend="bytecode")
        assert "bytecode" not in EXECUTION_BACKENDS


# ----------------------------------------------------------------------
# step-limit renormalization
# ----------------------------------------------------------------------

LOOP = "int main() { int i = 0; while (1) { i = i + 1; } return i; }"


class TestStepLimit:
    def test_timeout_is_renormalized_to_limit_plus_one(self):
        compiled = compile_source(LOOP)
        result = run(compiled, step_limit=5_000)
        assert result.timed_out
        assert result.returncode == 124
        assert result.steps == 5_001

    @pytest.mark.parametrize("limit", [4_998, 4_999, 5_000, 5_001, 5_002])
    def test_mid_batch_limits_match_the_walker(self, limit):
        """Codegen charges ticks in batches; whatever phase of a batch
        the limit lands in, the observable count must equal the
        walker's tick-by-tick count exactly."""
        compiled = compile_source(LOOP)
        walk = run(compiled, backend="walk", step_limit=limit)
        code = run(compiled, backend="codegen", step_limit=limit)
        assert code == walk
        assert code.steps == limit + 1

    def test_finishing_program_step_counts_match(self):
        compiled = compile_source(
            "int main() { int s = 0;"
            " for (int i = 0; i < 200; i++) { s += i; }"
            " return s > 10000 ? 1 : 0; }"
        )
        results = {b: run(compiled, backend=b) for b in EXECUTION_BACKENDS}
        walk = results["walk"]
        assert not walk.timed_out
        for backend, result in results.items():
            assert result.steps == walk.steps, backend
