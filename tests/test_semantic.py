"""Unit tests for semantic analysis."""

from repro.compiler.driver import Compiler


def compile_acc(source: str):
    return Compiler(model="acc").compile(source, "t.c")


def compile_omp(source: str, max_version: float = 4.5):
    return Compiler(model="omp", openmp_max_version=max_version).compile(source, "t.c")


class TestUndeclared:
    def test_undeclared_variable_use(self):
        result = compile_acc("int main() { x = 1; return 0; }")
        assert result.has_code("undeclared")

    def test_undeclared_in_expression(self):
        result = compile_acc("int main() { int a = 1; return a + mystery; }")
        assert result.has_code("undeclared")

    def test_undeclared_function_call(self):
        result = compile_acc("int main() { return do_stuff(); }")
        assert result.has_code("undeclared-function")

    def test_declared_after_use_still_undeclared(self):
        result = compile_acc("int main() { y = 1; int y; return y; }")
        assert result.has_code("undeclared")

    def test_block_scoping(self):
        result = compile_acc(
            "int main() { { int inner = 1; } return inner; }"
        )
        assert result.has_code("undeclared")

    def test_for_loop_variable_scoped_to_loop(self):
        result = compile_acc(
            "int main() { for (int i = 0; i < 3; i++) { } return i; }"
        )
        assert result.has_code("undeclared")

    def test_params_are_declared(self):
        result = compile_acc("int f(int x) { return x; }\nint main() { return f(1); }")
        assert result.ok

    def test_globals_visible_in_functions(self):
        result = compile_acc("int g = 3;\nint main() { return g; }")
        assert result.ok

    def test_libc_functions_known(self):
        result = compile_acc(
            '#include <stdio.h>\nint main() { printf("hi\\n"); return 0; }'
        )
        assert result.ok

    def test_clause_variable_must_be_declared(self):
        result = compile_acc(
            "int main() {\n#pragma acc parallel loop copyin(ghost)\n"
            "for (int i = 0; i < 3; i++) { }\nreturn 0; }"
        )
        assert result.has_code("undeclared")


class TestMainRequirement:
    def test_missing_main_is_link_error(self):
        result = compile_acc("int helper() { return 1; }")
        assert result.has_code("no-main")

    def test_prototype_only_main_is_link_error(self):
        result = compile_acc("int main();")
        assert result.has_code("no-main")


class TestDirectiveSemantics:
    def test_loop_directive_requires_for(self):
        result = compile_acc(
            "int main() {\n#pragma acc parallel loop\n{ int x = 1; }\nreturn 0; }"
        )
        assert result.has_code("directive-needs-loop")

    def test_loop_directive_stacking_allowed(self):
        result = compile_omp(
            "int main() { int s = 0;\n#pragma omp parallel for\n"
            "for (int i = 0; i < 4; i++) { s += i; }\nreturn 0; }"
        )
        assert result.ok

    def test_semantic_info_counts_directives(self, valid_acc_source):
        result = compile_acc(valid_acc_source)
        assert result.info.acc_directive_count == 1
        assert result.info.loop_directive_count == 1

    def test_runtime_calls_recorded(self):
        result = compile_acc(
            "#include <openacc.h>\nint main() { acc_init(acc_device_default); return 0; }"
        )
        assert "acc_init" in result.info.runtime_calls

    def test_has_main_flag(self, valid_acc_source):
        result = compile_acc(valid_acc_source)
        assert result.info.has_main


class TestWarnings:
    def test_redeclaration_warns(self):
        result = compile_acc("int main() { int a = 1; int a = 2; return a; }")
        assert result.warning_count >= 1
        assert result.ok  # warning, not error

    def test_warning_count_in_result(self):
        result = compile_acc("int main() { int a = 1; int a = 2; return a; }")
        assert result.warning_count >= 1
