"""Tests for the ablation-study runners."""

import pytest

from repro.experiments.ablations import (
    early_exit_ablation,
    flake_rate_sweep,
    seed_variance,
)


@pytest.fixture(scope="module")
def population(request):
    from repro.corpus.generator import CorpusGenerator
    from repro.corpus.suite import TestSuite
    from repro.probing.prober import NegativeProber

    files = CorpusGenerator(seed=31).generate("acc", 24, languages=("c",))
    return list(NegativeProber(seed=32).probe(TestSuite("abl", "acc", files)))


class TestEarlyExit:
    def test_saves_judge_calls_without_accuracy_loss(self, population):
        result = early_exit_ablation(population)
        assert result.judge_calls_saved > 0
        assert result.accuracy_early_exit == pytest.approx(
            result.accuracy_record_all, abs=0.001
        )

    def test_speedup_at_least_one(self, population):
        result = early_exit_ablation(population)
        assert result.speedup >= 1.0
        assert result.simulated_seconds_early_exit < result.simulated_seconds_record_all


class TestFlakeSweep:
    def test_gap_grows_with_flake_rate(self, population):
        points = flake_rate_sweep(population, rates=(0.0, 0.3))
        assert len(points) == 2
        assert points[0].gap <= points[1].gap + 0.05
        # at zero flake the pipeline and judge see the same world
        assert points[0].pipeline_valid_accuracy <= points[0].judge_valid_accuracy + 0.05

    def test_pipeline_accuracy_monotone_down(self, population):
        points = flake_rate_sweep(population, rates=(0.0, 0.5))
        assert points[1].pipeline_valid_accuracy <= points[0].pipeline_valid_accuracy

    def test_judge_resilient_to_flake(self, population):
        """The judge discounts toolchain-limitation errors, so its valid
        accuracy should barely move with the flake rate."""
        points = flake_rate_sweep(population, rates=(0.0, 0.5))
        assert abs(points[1].judge_valid_accuracy - points[0].judge_valid_accuracy) < 0.25


class TestSeedVariance:
    def test_replicates_across_seeds(self, population):
        result = seed_variance(population, seeds=(1, 2, 3))
        assert len(result.accuracies) == 3
        assert 0.0 <= result.accuracy_mean <= 1.0
        assert result.accuracy_std < 0.25

    def test_reports_kept(self, population):
        result = seed_variance(population, seeds=(1, 2))
        assert len(result.reports) == 2
        assert result.reports[0].label == "seed=1"
