"""Contract tests between prompt builders and the simulated model.

The model's prompt parser and the judge's prompt builders form an
implicit protocol (marker strings, section ordering, vocabulary).
These tests pin that protocol so either side can be refactored safely.
"""

from repro.judge.prompts import agent_direct_prompt, agent_indirect_prompt, direct_prompt
from repro.llm.model import DeepSeekCoderSim
from repro.llm.profiles import AGENT_DIRECT, AGENT_INDIRECT, DIRECT


def parse(prompt: str):
    model = DeepSeekCoderSim(seed=0)
    return model._parse_prompt(prompt)


CODE = "#include <openacc.h>\nint main() {\n#pragma acc parallel loop\nfor (int i = 0; i < 4; i++) { }\nreturn 0; }\n"


class TestPromptParsing:
    def test_direct_prompt_mode_and_vocab(self):
        parsed = parse(direct_prompt(CODE, "acc"))
        assert parsed.mode == DIRECT
        assert parsed.vocabulary == ("correct", "incorrect")
        assert parsed.flavor == "acc"

    def test_agent_direct_mode(self):
        parsed = parse(agent_direct_prompt(CODE, "acc", 0, "", "", 0, "", ""))
        assert parsed.mode == AGENT_DIRECT
        assert parsed.vocabulary == ("valid", "invalid")

    def test_agent_indirect_mode(self):
        parsed = parse(agent_indirect_prompt(CODE, "acc", 0, "", "", 0, "", ""))
        assert parsed.mode == AGENT_INDIRECT

    def test_code_extracted_exactly(self):
        parsed = parse(direct_prompt(CODE, "acc"))
        assert parsed.code == CODE.strip()

    def test_omp_flavor_detected(self):
        omp_code = CODE.replace("acc", "omp").replace("openacc.h", "omp.h")
        parsed = parse(direct_prompt(omp_code, "omp"))
        assert parsed.flavor == "omp"

    def test_compile_rc_extracted(self):
        prompt = agent_direct_prompt(CODE, "acc", 2, "boom [-Wsyntax]", "", None, None, None)
        parsed = parse(prompt)
        assert parsed.compile_rc == 2
        assert "boom" in parsed.compile_stderr

    def test_run_rc_extracted_independently_of_compile_rc(self):
        prompt = agent_direct_prompt(CODE, "acc", 0, "", "", 139, "Segmentation fault", "")
        parsed = parse(prompt)
        assert parsed.compile_rc == 0
        assert parsed.run_rc == 139

    def test_stderr_section_bounded(self):
        prompt = agent_direct_prompt(CODE, "acc", 1, "line1\nline2", "OUT", None, None, None)
        parsed = parse(prompt)
        assert "line1" in parsed.compile_stderr
        assert "OUT" not in parsed.compile_stderr


class TestBehavioralContracts:
    def test_compile_failure_never_increases_valid_rate(self):
        """Across seeds: the same code with a failing compile report must
        be judged invalid at least as often as with a clean report."""
        clean_invalid = 0
        failing_invalid = 0
        for seed in range(25):
            model = DeepSeekCoderSim(seed=seed)
            clean = model.generate(
                agent_direct_prompt(CODE, "acc", 0, "", "", 0, "", "passed"), attempt=1
            )
            failing = model.generate(
                agent_direct_prompt(
                    CODE, "acc", 1,
                    "t.c:1:1: error: expected '}' [-Wunbalanced-brace]",
                    "", None, None, None,
                ),
                attempt=1,
            )
            clean_invalid += "JUDGEMENT: invalid" in clean
            failing_invalid += "JUDGEMENT: invalid" in failing
        assert failing_invalid > clean_invalid

    def test_environment_errors_mostly_shrugged_off(self):
        """toolchain-limitation failures carry little weight."""
        flagged = 0
        for seed in range(30):
            model = DeepSeekCoderSim(seed=seed)
            response = model.generate(
                agent_direct_prompt(
                    CODE, "acc", 2,
                    "t.c: error: internal compiler limitation [-Wtoolchain-limitation]",
                    "", None, None, None,
                ),
                attempt=1,
            )
            flagged += "JUDGEMENT: invalid" in response
        assert flagged < 12  # trust_environment_error = 0.08 (+ static noise)

    def test_indirect_description_reflects_tool_outcome(self):
        model = DeepSeekCoderSim(seed=5)
        ok_prompt = agent_indirect_prompt(CODE, "acc", 0, "", "", 0, "", "passed")
        response = model.generate(ok_prompt, attempt=1)
        assert "compiler accepted" in response.lower() or "accepted the code" in response.lower()

    def test_vocabulary_followed_in_response(self):
        model = DeepSeekCoderSim(seed=6)
        direct_response = model.generate(direct_prompt(CODE, "acc"), attempt=1)
        assert ("FINAL JUDGEMENT: correct" in direct_response
                or "FINAL JUDGEMENT: incorrect" in direct_response)
        agent_response = model.generate(
            agent_direct_prompt(CODE, "acc", 0, "", "", 0, "", ""), attempt=1
        )
        assert ("FINAL JUDGEMENT: valid" in agent_response
                or "FINAL JUDGEMENT: invalid" in agent_response)
