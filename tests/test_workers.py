"""The pre-forked validation worker pool: lifecycle, pickling, crashes.

Everything here drives :class:`~repro.service.workers.WorkerPool` (and
the service wired on top of it) with *real* worker processes — fork and
spawn both — because the failure modes under test (a SIGKILLed worker
mid-batch, a wedged worker at close, inherited fault-injection state)
only exist across a process boundary.  Worker-side faults are armed
through ``REPRO_FAULT_POINTS`` in the environment: the parent's
programmatic ``install()`` state never reaches a worker, which re-reads
the environment via ``faultinject.reset()`` on boot.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time

import pytest

from repro.core import TestsuiteValidator
from repro.service.protocol import ValidateOptions, ValidateRequest
from repro.service.server import ValidationService
from repro.service.workers import (
    BatchResult,
    WorkerBatchError,
    WorkerConfig,
    WorkerPool,
    execute_batch,
)
from repro.testing import faultinject

OPTIONS = ValidateOptions(flavor="acc", judge="direct", early_exit=True, backend="closure")


@pytest.fixture(autouse=True)
def _disarm_faults(monkeypatch):
    """Parent-side fault state must never leak between tests — and the
    env var must start absent so only tests that set it arm workers."""
    monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
    faultinject.clear()
    yield
    faultinject.clear()


def _request(name: str, source: str) -> tuple[tuple[str, str], ...]:
    return ((name, source),)


def _validator_factory():
    validators = {}

    def validator_for(options):
        if options not in validators:
            validators[options] = TestsuiteValidator(
                flavor=options.flavor,
                judge_kind=options.judge,
                early_exit=options.early_exit,
                execution_backend=options.backend,
            )
        return validators[options]

    return validator_for


def _verdicts(result: BatchResult) -> list[list[str]]:
    return [[v["verdict"] for v in r["verdicts"]] for r in result.responses]


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------


class TestPoolLifecycle:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_boot_run_close(self, start_method, valid_acc_source):
        if start_method not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        pool = WorkerPool(2, WorkerConfig(), start_method=start_method)
        try:
            snap = pool.snapshot()
            assert snap["configured"] == 2
            assert snap["alive"] == 2
            assert snap["start_method"] == start_method
            result = pool.run_batch(OPTIONS, [_request("good.c", valid_acc_source)])
            assert _verdicts(result) == [["valid"]]
            assert pool.snapshot()["batches_dispatched"] == 1
        finally:
            assert pool.close()
        assert pool.snapshot()["alive"] == 0
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_batch(OPTIONS, [_request("late.c", valid_acc_source)])

    def test_pool_size_validated(self):
        with pytest.raises(ValueError, match="pool size"):
            WorkerPool(0, WorkerConfig())

    def test_close_terminates_a_wedged_worker(self, monkeypatch):
        """A worker that never reaches its recv loop (wedged at boot)
        cannot honour the polite stop; close() must escalate to
        terminate instead of hanging for the sleep's duration."""
        monkeypatch.setenv(faultinject.ENV_VAR, "worker:post-fork=sleep:30")
        pool = WorkerPool(1, WorkerConfig())
        t0 = time.monotonic()
        assert pool.close(timeout=0.5)
        assert time.monotonic() - t0 < 10.0
        assert pool.snapshot()["alive"] == 0


# ----------------------------------------------------------------------
# the batch payload crosses the pipe by pickle
# ----------------------------------------------------------------------


class TestBatchRoundTrip:
    def test_batch_result_pickles_faithfully(self, valid_acc_source):
        """The exact object workers ship back must survive pickling:
        responses, stage stats (locks dropped/reminted), cache delta."""
        result = execute_batch(
            _validator_factory(),
            OPTIONS,
            [
                _request("good.c", valid_acc_source),
                _request("variant.c", valid_acc_source.replace("3.0", "3.5")),
            ],
        )
        result.cache_delta = {"execute": {"hits": 1, "misses": 2}}
        clone = pickle.loads(pickle.dumps(result))
        assert clone.responses == result.responses
        assert clone.cache_delta == result.cache_delta
        assert clone.stats.snapshot() == result.stats.snapshot()
        # the reminted stats object is live, not a frozen copy
        clone.stats.merge(result.stats)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_worker_matches_in_process_execution(
        self, start_method, valid_acc_source
    ):
        if start_method not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        requests = [
            _request("good.c", valid_acc_source),
            _request("bad.c", valid_acc_source + "\nint broken( {\n"),
        ]
        control = execute_batch(_validator_factory(), OPTIONS, requests)
        pool = WorkerPool(1, WorkerConfig(), start_method=start_method)
        try:
            pooled = pool.run_batch(OPTIONS, requests)
        finally:
            pool.close()
        assert [r["verdicts"] for r in pooled.responses] == [
            r["verdicts"] for r in control.responses
        ]
        assert [r["summary"] for r in pooled.responses] == [
            r["summary"] for r in control.responses
        ]

    def test_name_collisions_split_into_chunks(self, valid_acc_source):
        """Two requests reusing a file name cannot share a pipeline run;
        the batch splits and each request still gets its own verdict."""
        requests = [
            _request("same.c", valid_acc_source),
            _request("same.c", valid_acc_source + "\nint broken( {\n"),
        ]
        result = execute_batch(_validator_factory(), OPTIONS, requests)
        assert _verdicts(result) == [["valid"], ["invalid"]]
        assert [r["batch"]["chunk"] for r in result.responses] == [1, 1]


# ----------------------------------------------------------------------
# crash tolerance
# ----------------------------------------------------------------------


class TestCrashTolerance:
    def test_kill_mid_batch_retries_on_respawned_worker(
        self, monkeypatch, valid_acc_source
    ):
        """The canonical failure: SIGKILL after the batch executed but
        before its result was sent.  The parent must detect the death,
        respawn the slot, retry once, and return verdicts identical to
        an undisturbed run — counting one restart and one retry."""
        monkeypatch.setenv(faultinject.ENV_VAR, "worker:pre-result@2=kill")
        control = execute_batch(
            _validator_factory(), OPTIONS, [_request("b.c", valid_acc_source)]
        )
        pool = WorkerPool(1, WorkerConfig())
        try:
            first = pool.run_batch(OPTIONS, [_request("a.c", valid_acc_source)])
            assert _verdicts(first) == [["valid"]]
            # the worker's second batch dies at worker:pre-result; the
            # respawned worker's fresh hit counter lets the retry land
            second = pool.run_batch(OPTIONS, [_request("b.c", valid_acc_source)])
            snap = pool.snapshot()
        finally:
            pool.close()
        assert [r["verdicts"] for r in second.responses] == [
            r["verdicts"] for r in control.responses
        ]
        assert snap["restarts"] == 1
        assert snap["retries"] == 1
        assert snap["alive"] == 1

    def test_worker_killed_while_idle_is_replaced(self, valid_acc_source):
        pool = WorkerPool(1, WorkerConfig())
        try:
            victim = pool._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            result = pool.run_batch(OPTIONS, [_request("a.c", valid_acc_source)])
            assert _verdicts(result) == [["valid"]]
            snap = pool.snapshot()
        finally:
            pool.close()
        assert snap["restarts"] == 1
        assert snap["retries"] == 0  # no batch was lost, so no retry

    def test_worker_side_exception_fails_fast_without_retry(
        self, monkeypatch, valid_acc_source
    ):
        """A deterministic in-worker exception would just repeat on a
        retry: it must surface as WorkerBatchError with the traceback,
        leave the worker alive, and count no restart."""
        monkeypatch.setenv(faultinject.ENV_VAR, "worker:pre-result=raise")
        pool = WorkerPool(1, WorkerConfig())
        try:
            with pytest.raises(WorkerBatchError, match="FaultError"):
                pool.run_batch(OPTIONS, [_request("a.c", valid_acc_source)])
            snap = pool.snapshot()
            assert snap["restarts"] == 0
            assert snap["batch_errors"] == 1
            assert snap["alive"] == 1
            # the fault disarmed after one shot: the worker still serves
            result = pool.run_batch(OPTIONS, [_request("b.c", valid_acc_source)])
            assert _verdicts(result) == [["valid"]]
        finally:
            pool.close()

    def test_second_crash_on_same_batch_propagates(self, monkeypatch, valid_acc_source):
        """Retry is once, not forever: a batch that kills its worker
        every time must fail the request, not crash-loop the pool."""
        monkeypatch.setenv(faultinject.ENV_VAR, "worker:pre-result=kill")
        pool = WorkerPool(1, WorkerConfig())
        try:
            from repro.service.workers import WorkerCrash

            with pytest.raises(WorkerCrash):
                pool.run_batch(OPTIONS, [_request("a.c", valid_acc_source)])
            snap = pool.snapshot()
        finally:
            pool.close()
        assert snap["retries"] == 1
        assert snap["restarts"] == 2  # original + the retry's replacement


# ----------------------------------------------------------------------
# the service over the pool: stats merge + byte identity
# ----------------------------------------------------------------------


def _service_validate(service: ValidationService, sources: dict[str, str]) -> dict:
    request = ValidateRequest(files=tuple(sources.items()), options=OPTIONS)
    return service.submit(request).result(timeout=120)


class TestServiceOverPool:
    def test_stats_merge_from_workers(self, valid_acc_source, tmp_path):
        """Worker-side pipeline stats and cache counters must land in
        the parent's ``/v1/stats`` aggregates, same as in-process."""
        from repro.cache.bundle import PipelineCache

        cache = PipelineCache(cache_dir=tmp_path / "cache")
        service = ValidationService(cache=cache, workers=1, max_latency=0.005)
        try:
            _service_validate(service, {"a.c": valid_acc_source})
            _service_validate(service, {"a.c": valid_acc_source})
            snap = service.stats_snapshot()
        finally:
            service.drain(timeout=30.0)
        assert snap["service"]["workers"]["configured"] == 1
        assert snap["service"]["workers"]["batches_dispatched"] == 2
        assert snap["pipeline"]["stages"]["compile"]["processed"] == 2
        # the repeat was served from the worker's cache; its hit counter
        # must fold into the parent's summary
        assert snap["cache"]["hits"] >= 1
        # drain closed the pool politely: workers flushed to the shared dir
        assert (tmp_path / "cache").exists()

    def test_workers_zero_snapshot_shape(self):
        service = ValidationService(workers=0)
        try:
            snap = service.stats_snapshot()["service"]["workers"]
        finally:
            service.drain(timeout=10.0)
        assert snap == {
            "configured": 0,
            "alive": 0,
            "restarts": 0,
            "batches_dispatched": 0,
        }

    def test_byte_identity_workers4_vs_workers0_over_corpus(self, acc_corpus):
        """The acceptance gate in miniature: the same corpus through a
        4-worker service and the in-process spec must produce
        byte-identical verdict payloads."""
        sources = {test.name: test.source for test in acc_corpus[:12]}
        names = sorted(sources)
        groups = [names[i : i + 3] for i in range(0, len(names), 3)]

        def run(workers: int) -> str:
            service = ValidationService(workers=workers, max_latency=0.005)
            try:
                verdicts = []
                for group in groups:
                    response = _service_validate(
                        service, {name: sources[name] for name in group}
                    )
                    verdicts.append(response["verdicts"])
                return json.dumps(verdicts, sort_keys=True)
            finally:
                service.drain(timeout=60.0)

        assert run(4) == run(0)
