"""Tests for the feature-coverage analysis extension."""

from repro.corpus.coverage import measure_coverage, uncovered_features
from repro.corpus.features import catalog


class TestCoverage:
    def test_corpus_covers_most_features(self, acc_corpus):
        report = measure_coverage("acc", list(acc_corpus))
        assert report.tests_total == len(acc_corpus)
        assert report.coverage_fraction > 0.5

    def test_counts_accumulate(self, acc_corpus):
        report = measure_coverage("acc", list(acc_corpus))
        assert sum(report.feature_counts.values()) >= len(report.covered)

    def test_by_category_totals_match_catalog(self, acc_corpus):
        report = measure_coverage("acc", list(acc_corpus))
        by_cat = report.by_category()
        total = sum(t for _, t in by_cat.values())
        assert total == len(catalog("acc"))
        for covered, cat_total in by_cat.values():
            assert 0 <= covered <= cat_total

    def test_uncovered_plus_covered_is_catalog(self, omp_corpus):
        report = measure_coverage("omp", list(omp_corpus))
        assert report.covered | report.uncovered == set(catalog("omp"))
        assert not report.covered & report.uncovered

    def test_uncovered_features_listed(self, omp_corpus):
        gaps = uncovered_features("omp", list(omp_corpus))
        assert all(f.model == "omp" for f in gaps)

    def test_render_mentions_categories(self, acc_corpus):
        text = measure_coverage("acc", list(acc_corpus)).render()
        assert "Feature coverage" in text
        assert "data" in text

    def test_wrong_model_tests_ignored(self, acc_corpus, omp_corpus):
        mixed = list(acc_corpus) + list(omp_corpus)
        report = measure_coverage("acc", mixed)
        assert all(ident.startswith("acc.") for ident in report.covered)

    def test_empty_suite(self):
        report = measure_coverage("acc", [])
        assert report.coverage_fraction == 0.0
        assert report.tests_total == 0
