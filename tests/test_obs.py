"""Unified telemetry: tracer, metrics registry, exporters, service wiring.

The load-bearing properties under test:

* spans form one tree per request even when the work crosses threads
  and processes (the worker ships its spans home in ``BatchResult``);
* the metrics registry merges across processes exactly like
  ``PipelineStats`` — baseline, diff, apply;
* ``GET /v1/metrics`` serves Prometheus text and ``X-Request-Id`` is
  echoed and recoverable from the span log;
* telemetry is provably inert: tracing on cannot change verdict bytes
  or campaign digests.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.obs import trace
from repro.obs.export import (
    chrome_trace,
    load_span_log,
    render_gantt,
    render_summary,
    summarize_spans,
    write_span_log,
)
from repro.obs.metrics import (
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)
from repro.service.protocol import ValidateOptions, ValidateRequest
from repro.service.server import ValidationService, make_server
from repro.service.workers import WorkerConfig, WorkerPool
from repro.testing import faultinject

OPTIONS = ValidateOptions(
    flavor="acc", judge="direct", early_exit=True, backend="closure"
)


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    """Every test starts with no ambient tracer, fresh metrics, and no
    armed faults — and must leave the process the same way."""
    monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
    faultinject.clear()
    trace.uninstall()
    reset_metrics()
    yield
    trace.uninstall()
    reset_metrics()
    faultinject.clear()


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_share_a_trace_and_link_parents(self):
        tracer = trace.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert len(tracer) == 2

    def test_sibling_roots_get_distinct_traces(self):
        tracer = trace.Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_explicit_parent_crosses_threads(self):
        """contextvars do not cross threads; the captured TraceContext
        must — exactly how the scheduler parents its stage spans."""
        tracer = trace.Tracer()
        seen = {}

        def work(ctx):
            with tracer.span("child", parent=ctx) as child:
                seen["child"] = child

        with tracer.span("root") as root:
            thread = threading.Thread(target=work, args=(root.context,))
            thread.start()
            thread.join()
        child = seen["child"]
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_module_span_is_noop_without_tracer(self):
        assert trace.active() is None
        with trace.span("anything") as span:
            # the noop handle tolerates the instrumentation's writes
            span.attrs["crashed"] = True
            assert span.context is None
        assert trace.current() is None

    def test_installed_restores_the_previous_tracer(self):
        first = trace.Tracer()
        trace.install(first)
        with trace.installed(trace.Tracer()) as second:
            assert trace.active() is second
        assert trace.active() is first

    def test_absorb_reparents_shipped_dicts(self):
        """The parent folds worker spans (already parented under the
        shipped context) into its buffer as real records."""
        parent = trace.Tracer()
        with parent.span("pool.dispatch") as dispatch:
            remote = trace.Tracer()
            with remote.span("worker.execute_batch", parent=dispatch.context):
                pass
            shipped = [s.to_json() for s in remote.drain()]
        assert parent.absorb(shipped) == 1
        worker_span = [s for s in parent.spans if s.name == "worker.execute_batch"][0]
        assert worker_span.trace_id == dispatch.trace_id
        assert worker_span.parent_id == dispatch.span_id

    def test_span_ids_do_not_touch_the_global_rng(self):
        import random

        random.seed(99)
        expected = random.random()
        random.seed(99)
        tracer = trace.Tracer()
        with tracer.span("rng-neutral"):
            pass
        assert random.random() == expected


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", kind="a").inc()
        reg.counter("hits_total", kind="a").inc(2)
        reg.counter("hits_total", kind="b").inc()
        assert reg.counter("hits_total", kind="a").state() == 3
        assert reg.counter("hits_total", kind="b").state() == 1

    def test_counter_refuses_to_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        state = hist.state()
        assert state["counts"] == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert state["count"] == 3
        assert state["sum"] == pytest.approx(5.55)

    def test_diff_apply_round_trip_is_the_worker_protocol(self):
        """Fork inherits parent counts: the baseline must keep them out
        of the delta, and only growth may ship."""
        worker = MetricsRegistry()
        worker.counter("batches_total").inc(7)  # inherited pre-fork
        baseline = worker.export_state()

        worker.counter("batches_total").inc(2)
        worker.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        delta, new_baseline = worker.diff(baseline)

        parent = MetricsRegistry()
        parent.apply(delta)
        assert parent.counter("batches_total").state() == 2
        assert parent.histogram("lat_seconds", buckets=(1.0,)).state()["count"] == 1

        # nothing moved since: the next delta is empty
        next_delta, _ = worker.diff(new_baseline)
        assert next_delta == {}

    def test_gauges_stay_out_of_diffs(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(9)
        assert reg.export_state() == {}

    def test_merge_folds_another_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(1)
        b.counter("n_total").inc(4)
        a.merge(b)
        assert a.counter("n_total").state() == 5

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("req_total", code="200").inc(3)
        reg.gauge("depth").set(2)
        hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = reg.render_prometheus()
        assert '# TYPE req_total counter' in text
        assert 'req_total{code="200"} 3' in text
        assert "# TYPE depth gauge" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text  # cumulative
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_reset_clears_the_global_registry(self):
        get_metrics().counter("stale_total").inc()
        reset_metrics()
        assert get_metrics().snapshot() == {}


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


def _make_spans():
    tracer = trace.Tracer()
    with tracer.span("service.request", request_id="req-1"):
        with tracer.span("stage.compile", file="a.c"):
            pass
        with tracer.span("stage.execute", file="a.c"):
            pass
    return tracer.spans


class TestExport:
    def test_span_log_round_trip(self, tmp_path):
        spans = _make_spans()
        path = tmp_path / "spans.jsonl"
        write_span_log(spans, path)
        loaded = load_span_log(path)
        assert [s["name"] for s in loaded] == [s.name for s in spans]
        assert loaded[0]["trace_id"] == spans[0].trace_id

    def test_chrome_trace_shape(self):
        payload = chrome_trace(_make_spans())
        events = payload["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0  # µs, relative to the earliest span
            assert event["dur"] >= 0
            assert event["args"]["trace_id"]
        assert events[0]["ts"] == 0
        # attrs travel in args so request ids are searchable in Perfetto
        names = {e["name"]: e for e in events}
        assert names["service.request"]["args"]["request_id"] == "req-1"

    def test_summarize_collects_names_and_request_ids(self):
        summary = summarize_spans(_make_spans())
        assert summary["spans"] == 3
        assert summary["traces"] == 1
        assert summary["request_ids"] == ["req-1"]
        assert set(summary["by_name"]) == {
            "service.request", "stage.compile", "stage.execute",
        }
        text = render_summary(summary)
        assert "req-1" in text and "stage.compile" in text

    def test_gantt_renders_stage_rows(self):
        text = render_gantt(_make_spans())
        assert "a.c" in text
        assert "C=compile" in text


# ----------------------------------------------------------------------
# service wiring (HTTP + cross-process)
# ----------------------------------------------------------------------


@pytest.fixture()
def traced_server(tmp_path):
    """A live daemon with a trace log, torn down (and flushed) after."""
    server = make_server(
        port=0, max_latency=0.005, trace_log=str(tmp_path / "spans.jsonl")
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.service.drain(timeout=10.0)
        server.shutdown()
        server.server_close()
        thread.join(10.0)


def _http(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request(
            method, path,
            body=json.dumps(body) if body is not None else None,
            headers=headers or {},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestServiceTelemetry:
    def test_request_id_echoed_and_in_span_log(
        self, traced_server, valid_acc_source, tmp_path
    ):
        status, headers, _ = _http(
            traced_server, "POST", "/v1/validate",
            body={"files": {"a.c": valid_acc_source}},
            headers={"X-Request-Id": "req-telemetry-1"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "req-telemetry-1"

        traced_server.service.drain(timeout=10.0)
        spans = load_span_log(tmp_path / "spans.jsonl")
        request_spans = [s for s in spans if s["name"] == "service.request"]
        assert request_spans[0]["attrs"]["request_id"] == "req-telemetry-1"
        # the whole request is one trace: batch and stages hang off it
        trace_id = request_spans[0]["trace_id"]
        names = {s["name"] for s in spans if s["trace_id"] == trace_id}
        assert {"service.request", "service.batch", "stage.judge"} <= names

    def test_request_id_generated_when_absent(self, traced_server, valid_acc_source):
        status, headers, _ = _http(
            traced_server, "POST", "/v1/validate",
            body={"files": {"a.c": valid_acc_source}},
        )
        assert status == 200
        assert len(headers["X-Request-Id"]) == 16  # new_id(): 8 hex bytes

    def test_metrics_endpoint_serves_prometheus_text(
        self, traced_server, valid_acc_source
    ):
        _http(
            traced_server, "POST", "/v1/validate",
            body={"files": {"a.c": valid_acc_source}},
        )
        status, headers, body = _http(traced_server, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert 'service_requests_total{endpoint="validate",status="200"} 1' in text
        assert "pipeline_stage_seconds_bucket" in text
        assert "service_batcher_completed_total 1" in text
        assert "service_batch_size_bucket" in text
        assert "service_uptime_seconds" in text

    def test_metrics_endpoint_nonempty_on_fresh_daemon(self, traced_server):
        status, _, body = _http(traced_server, "GET", "/v1/metrics")
        assert status == 200
        text = body.decode()
        # exposition-time gauges guarantee series before any traffic
        assert "service_queue_capacity" in text
        assert "service_workers_configured" in text


class TestCrossProcessReassembly:
    def test_worker_spans_come_home_in_one_trace(self, valid_acc_source):
        tracer = trace.Tracer()
        pool = WorkerPool(1, WorkerConfig())
        try:
            with trace.installed(tracer):
                with tracer.span("service.batch") as batch:
                    result = pool.run_batch(
                        OPTIONS, [(("a.c", valid_acc_source),)]
                    )
                    trace.active().absorb(result.spans or [])
        finally:
            pool.close()
        spans = tracer.spans
        by_name = {s.name: s for s in spans}
        assert {"service.batch", "pool.dispatch", "worker.execute_batch",
                "scheduler.run", "stage.judge"} <= set(by_name)
        assert len({s.trace_id for s in spans}) == 1
        assert by_name["worker.execute_batch"].parent_id == by_name["pool.dispatch"].span_id
        assert by_name["worker.execute_batch"].pid != by_name["pool.dispatch"].pid

    def test_crashed_attempt_and_retry_are_both_visible(
        self, monkeypatch, valid_acc_source
    ):
        """The kill-mid-batch scenario end to end: the trace must show
        both dispatch attempts (the first marked crashed) and the
        counters must agree with the pool's own snapshot."""
        monkeypatch.setenv(faultinject.ENV_VAR, "worker:pre-result@2=kill")
        tracer = trace.Tracer()
        pool = WorkerPool(1, WorkerConfig())
        try:
            with trace.installed(tracer):
                first = pool.run_batch(OPTIONS, [(("a.c", valid_acc_source),)])
                second = pool.run_batch(OPTIONS, [(("b.c", valid_acc_source),)])
                for result in (first, second):
                    tracer.absorb(result.spans or [])
            snap = pool.snapshot()
        finally:
            pool.close()
        assert snap["restarts"] == 1 and snap["retries"] == 1

        dispatches = [s for s in tracer.spans if s.name == "pool.dispatch"]
        assert len(dispatches) == 3  # batch 1; batch 2 crashed; batch 2 retry
        crashed = [s for s in dispatches if s.attrs.get("crashed")]
        assert len(crashed) == 1
        assert crashed[0].attrs["attempt"] == 1
        retried = [s for s in dispatches if s.attrs.get("attempt") == 2]
        assert len(retried) == 1

        registry = get_metrics()
        assert registry.counter("service_worker_restarts_total").state() == 1
        assert registry.counter("service_worker_retries_total").state() == 1

        # the killed attempt's spans died with the worker; the retry's
        # came home under the second dispatch span
        workers = [s for s in tracer.spans if s.name == "worker.execute_batch"]
        assert len(workers) == 2
        assert workers[1].trace_id == retried[0].trace_id

    def test_worker_metrics_deltas_fold_into_parent(self, valid_acc_source):
        service = ValidationService(workers=1, max_latency=0.005)
        try:
            request = ValidateRequest(
                files=(("a.c", valid_acc_source),), options=OPTIONS
            )
            service.submit(request).result(timeout=120)
        finally:
            service.drain(timeout=30.0)
        registry = get_metrics()
        # these counters only move inside the worker process
        assert registry.counter(
            "pipeline_stage_items_total", stage="judge"
        ).state() == 1
        assert registry.histogram(
            "pipeline_stage_seconds", stage="compile"
        ).state()["count"] == 1


# ----------------------------------------------------------------------
# inertness: tracing on cannot change results
# ----------------------------------------------------------------------


class TestInertness:
    def test_verdict_bytes_identical_with_tracing_on(self, acc_corpus):
        sources = {test.name: test.source for test in acc_corpus[:4]}

        def run(workers, traced):
            service = ValidationService(workers=workers, max_latency=0.005)
            try:
                request = ValidateRequest(
                    files=tuple(sources.items()), options=OPTIONS
                )
                if traced:
                    with trace.installed(trace.Tracer()):
                        response = service.submit(request).result(timeout=120)
                else:
                    response = service.submit(request).result(timeout=120)
                return json.dumps(response["verdicts"], sort_keys=True)
            finally:
                service.drain(timeout=60.0)

        untraced = run(0, traced=False)
        assert run(0, traced=True) == untraced
        assert run(1, traced=True) == untraced

    def test_campaign_digest_unmoved_by_tracing(self):
        from repro.fuzz.campaign import Campaign, CampaignConfig

        config = CampaignConfig(
            seed=5, rounds=1, batch_size=4, seed_count=2,
            workers=1, judge_workers=1, triage="divergent",
        )
        plain = Campaign(config).run()
        with trace.installed(trace.Tracer()) as tracer:
            traced = Campaign(config).run()
        assert traced.digest() == plain.digest()
        # the run really was observed, not skipped
        assert get_metrics().counter("fuzz_rounds_total").state() >= 1
