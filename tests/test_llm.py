"""Unit tests for the simulated LLM: tokenizer, knowledge, analysis, model."""

import pytest

from repro.judge.prompts import agent_direct_prompt, agent_indirect_prompt, direct_prompt
from repro.llm.analysis import ShallowAnalyzer
from repro.llm.knowledge import DirectiveKnowledge, edit_distance
from repro.llm.model import DeepSeekCoderSim
from repro.llm.profiles import (
    AGENT_DIRECT,
    AGENT_INDIRECT,
    DIRECT,
    MODES,
    profile_for,
    trust_for_codes,
)
from repro.llm.tokenizer import SimTokenizer


class TestTokenizer:
    def test_count_positive(self):
        assert SimTokenizer().count("int main() { return 0; }") > 5

    def test_deterministic(self):
        tok = SimTokenizer()
        text = "some code text with identifiers_and_numbers 12345"
        assert tok.tokenize(text) == tok.tokenize(text)

    def test_long_words_split(self):
        pieces = SimTokenizer(max_piece=4).tokenize("abcdefgh")
        assert pieces == ["abcd", "efgh"]

    def test_whitespace_folds(self):
        assert SimTokenizer().tokenize("a    b") == ["a", " ", "b"]

    def test_truncate_bounds_tokens(self):
        tok = SimTokenizer()
        text = "word " * 1000
        truncated = tok.truncate(text, 50)
        assert tok.count(truncated) <= 50

    def test_truncate_noop_for_short_text(self):
        tok = SimTokenizer()
        assert tok.truncate("short", 100) == "short"


class TestKnowledge:
    def test_edit_distance_basics(self):
        assert edit_distance("parallel", "parallel") == 0
        assert edit_distance("paralel", "parallel") == 1
        assert edit_distance("lopo", "loop") == 2

    def test_edit_distance_cap(self):
        assert edit_distance("abcdefgh", "zyxwvuts", cap=2) == 3

    def test_known_word(self):
        knowledge = DirectiveKnowledge()
        assert knowledge.classify_word("parallel") == "known"
        assert knowledge.classify_word("copyin") == "known"

    def test_shaky_word(self):
        assert DirectiveKnowledge().classify_word("deviceptr") == "shaky"

    def test_typo_detected(self):
        knowledge = DirectiveKnowledge()
        assert knowledge.classify_word("paralel") == "typo-of-known"
        assert knowledge.classify_word("kernles") == "typo-of-known"

    def test_suspicious_words_filters_known(self):
        knowledge = DirectiveKnowledge()
        words = ["parallel", "loop", "paralel", "copyin"]
        assert knowledge.suspicious_words(words) == ["paralel"]


class TestShallowAnalyzer:
    def test_valid_acc_signals(self, valid_acc_source):
        signals = ShallowAnalyzer().analyze(valid_acc_source, "c")
        assert signals.has_directives
        assert "acc" in signals.directive_flavors
        assert signals.brace_imbalance == 0
        assert not signals.undeclared_candidates
        assert not signals.suspicious_directive_words
        assert signals.has_check_logic
        assert signals.has_failure_path

    def test_no_directives_detected(self):
        signals = ShallowAnalyzer().analyze("int main() { return 0; }", "c")
        assert not signals.has_directives

    def test_api_calls_count_as_model_usage(self):
        source = "#include <openacc.h>\nint main() { acc_init(0); return 0; }"
        signals = ShallowAnalyzer().analyze(source, "c")
        assert signals.has_directives
        assert "acc" in signals.directive_flavors

    def test_brace_imbalance_detected(self, valid_acc_source):
        broken = valid_acc_source.replace("{", "", 1)
        signals = ShallowAnalyzer().analyze(broken, "c")
        assert signals.looks_unbalanced

    def test_braces_in_strings_ignored(self):
        source = 'int main() { printf("{{{"); return 0; }'
        signals = ShallowAnalyzer().analyze(source, "c")
        assert signals.brace_imbalance == 0

    def test_suspicious_directive_word(self, valid_acc_source):
        broken = valid_acc_source.replace("parallel loop", "paralel loop")
        signals = ShallowAnalyzer().analyze(broken, "c")
        assert "paralel" in signals.suspicious_directive_words

    def test_clause_arguments_not_suspicious(self):
        source = (
            "#include <openacc.h>\nint main() { double zzqy[4];\n"
            "#pragma acc parallel loop copy(zzqy[0:4])\n"
            "for (int i = 0; i < 4; i++) { zzqy[i] = i; }\nreturn 0; }"
        )
        signals = ShallowAnalyzer().analyze(source, "c")
        assert not signals.suspicious_directive_words

    def test_undeclared_candidate_found(self, valid_acc_source):
        broken = valid_acc_source.replace(
            "err = err + 1;", "err = err + 1;\nchk_total = chk_total + 1;"
        )
        signals = ShallowAnalyzer().analyze(broken, "c")
        assert "chk_total" in signals.undeclared_candidates

    def test_unallocated_pointer_found(self):
        source = "int main() { double *buf;\nreturn 0; }"
        signals = ShallowAnalyzer().analyze(source, "c")
        assert "buf" in signals.unallocated_pointers

    def test_missing_check_logic(self, valid_acc_source):
        broken = valid_acc_source.replace(
            """    if (err != 0) {
        printf("FAILED with %d errors\\n", err);
        return 1;
    }
""",
            "",
        )
        signals = ShallowAnalyzer().analyze(broken, "c")
        assert not signals.has_failure_path
        assert not signals.has_check_logic

    def test_fortran_language_autodetect(self, valid_f90_source):
        signals = ShallowAnalyzer().analyze(valid_f90_source)
        assert signals.language == "f90"
        assert signals.has_directives

    def test_fortran_balance(self, valid_f90_source):
        signals = ShallowAnalyzer().analyze(valid_f90_source, "f90")
        assert signals.brace_imbalance == 0
        broken = valid_f90_source.replace("end do\n  do i = 1, n\n    if", "do i = 1, n\n    if", 1)
        assert ShallowAnalyzer().analyze(broken, "f90").brace_imbalance != 0


class TestProfiles:
    def test_profile_exists_for_every_mode_and_flavor(self):
        for flavor in ("acc", "omp"):
            for mode in MODES:
                profile = profile_for(flavor, mode)
                assert profile.flavor == flavor
                assert profile.mode == mode

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            profile_for("acc", "zero-shot")

    def test_direct_profiles_have_no_tools(self):
        assert not profile_for("acc", DIRECT).uses_tools
        assert profile_for("acc", AGENT_DIRECT).uses_tools
        assert profile_for("omp", AGENT_INDIRECT).uses_tools

    def test_agent_trusts_calibrated_ordering(self):
        """Agent prompts raise detection: calibration sanity."""
        direct = profile_for("acc", DIRECT)
        agent = profile_for("acc", AGENT_DIRECT)
        assert agent.detect_no_directives > direct.detect_no_directives
        assert agent.false_alarm < direct.false_alarm

    def test_trust_for_codes_picks_max_category(self):
        profile = profile_for("acc", AGENT_DIRECT)
        trust = trust_for_codes(profile, ["unbalanced-brace", "undeclared"])
        assert trust == profile.trust_semantic_error

    def test_trust_environment_low(self):
        profile = profile_for("acc", AGENT_DIRECT)
        assert trust_for_codes(profile, ["toolchain-limitation"]) == profile.trust_environment_error
        assert profile.trust_environment_error < 0.2


class TestModel:
    def test_deterministic_generation(self, valid_acc_source):
        model_a = DeepSeekCoderSim(seed=1)
        model_b = DeepSeekCoderSim(seed=1)
        prompt = direct_prompt(valid_acc_source, "acc")
        assert model_a.generate(prompt) == model_b.generate(prompt)

    def test_seed_changes_output_distribution(self, valid_acc_source):
        prompt = direct_prompt(valid_acc_source, "acc")
        outputs = {DeepSeekCoderSim(seed=s).generate(prompt) for s in range(8)}
        assert len(outputs) > 1

    def test_direct_prompt_uses_correct_vocabulary(self, valid_acc_source):
        model = DeepSeekCoderSim(seed=2)
        response = model.generate(direct_prompt(valid_acc_source, "acc"), attempt=1)
        assert "FINAL JUDGEMENT:" in response
        assert ("correct" in response) or ("incorrect" in response)

    def test_agent_prompt_uses_valid_vocabulary(self, valid_acc_source):
        model = DeepSeekCoderSim(seed=2)
        prompt = agent_direct_prompt(
            valid_acc_source, "acc", 0, "", "", 0, "", "PASSED\n"
        )
        response = model.generate(prompt, attempt=1)
        assert "FINAL JUDGEMENT: valid" in response or "FINAL JUDGEMENT: invalid" in response

    def test_indirect_prompt_describes_first(self, valid_acc_source):
        model = DeepSeekCoderSim(seed=2)
        prompt = agent_indirect_prompt(
            valid_acc_source, "acc", 0, "", "", 0, "", "PASSED\n"
        )
        response = model.generate(prompt, attempt=1)
        assert "This program" in response

    def test_compile_failure_usually_flagged(self, valid_acc_source):
        invalid = 0
        for seed in range(30):
            model = DeepSeekCoderSim(seed=seed)
            prompt = agent_direct_prompt(
                valid_acc_source, "acc", 1,
                "t.c:3:1: error: use of undeclared identifier 'x' [-Wundeclared]",
                "", None, None, None,
            )
            if "FINAL JUDGEMENT: invalid" in model.generate(prompt, attempt=1):
                invalid += 1
        assert invalid >= 20  # trust_semantic_error is 0.85

    def test_stats_accumulate(self, valid_acc_source):
        model = DeepSeekCoderSim(seed=3)
        model.generate(direct_prompt(valid_acc_source, "acc"))
        model.generate(direct_prompt(valid_acc_source, "acc"))
        assert model.stats.calls == 2
        assert model.stats.prompt_tokens > 0
        assert model.stats.simulated_seconds > 0

    def test_context_truncation(self):
        model = DeepSeekCoderSim(seed=4, max_context_tokens=200)
        long_prompt = direct_prompt("int x;\n" * 4000, "acc")
        response = model.generate(long_prompt)
        assert isinstance(response, str)

    def test_malformed_rate_nonzero_over_many_prompts(self):
        model = DeepSeekCoderSim(seed=6)
        malformed = 0
        for i in range(150):
            prompt = direct_prompt(f"int main() {{ return {i}; }}", "acc")
            response = model.generate(prompt, attempt=0)
            if "FINAL JUDGEMENT:" not in response:
                malformed += 1
        assert 0 < malformed < 30
