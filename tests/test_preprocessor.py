"""Unit tests for the preprocessor."""

from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.lexer import Lexer, TokenKind
from repro.compiler.preprocessor import Preprocessor


def preprocess(source: str, macros: dict | None = None):
    diags = DiagnosticEngine()
    tokens = Lexer(source, "t.c", diags).tokenize()
    pp = Preprocessor(diags, macros or {})
    result = pp.run(tokens)
    return result, diags


def token_texts(result) -> list[str]:
    return [t.text for t in result.tokens if t.kind is not TokenKind.EOF]


class TestIncludes:
    def test_known_header_ok(self):
        result, diags = preprocess("#include <stdio.h>\n")
        assert not diags.has_errors
        assert result.includes == ["stdio.h"]

    def test_quoted_header(self):
        result, diags = preprocess('#include "omp_testsuite.h"\n')
        assert not diags.has_errors

    def test_unknown_header_is_fatal(self):
        _, diags = preprocess("#include <no_such_header.h>\n")
        assert "missing-header" in diags.codes()

    def test_testsuite_header_provides_macros(self):
        result, _ = preprocess('#include "acc_testsuite.h"\nint x = LOOPCOUNT;\n')
        assert "1024" in token_texts(result)


class TestDefines:
    def test_object_macro_substitution(self):
        result, diags = preprocess("#define N 64\nint a[N];\n")
        assert not diags.has_errors
        assert "64" in token_texts(result)
        assert "N" not in token_texts(result)

    def test_macro_recorded_in_defines(self):
        result, _ = preprocess("#define SIZE 128\n")
        assert result.defines.get("SIZE") == "128"

    def test_recursive_substitution(self):
        result, _ = preprocess("#define A B\n#define B 7\nint x = A;\n")
        assert "7" in token_texts(result)

    def test_undef_removes_macro(self):
        result, _ = preprocess("#define N 1\n#undef N\nint x = N;\n")
        assert "N" in token_texts(result)

    def test_function_like_macro_warns_not_expands(self):
        _, diags = preprocess("#define SQ(x) ((x)*(x))\n")
        assert "pp-funcmacro" in diags.codes()
        assert not diags.has_errors

    def test_define_without_value_defaults_to_1(self):
        result, _ = preprocess("#define FLAG\nint x = FLAG;\n")
        assert "1" in token_texts(result)


class TestConditionals:
    def test_ifdef_taken(self):
        result, _ = preprocess("#ifdef _OPENACC\nint a;\n#endif\n", {"_OPENACC": "201711"})
        assert "a" in token_texts(result)

    def test_ifdef_not_taken(self):
        result, _ = preprocess("#ifdef _OPENMP\nint a;\n#endif\nint b;\n")
        texts = token_texts(result)
        assert "a" not in texts
        assert "b" in texts

    def test_ifndef(self):
        result, _ = preprocess("#ifndef MISSING\nint a;\n#endif\n")
        assert "a" in token_texts(result)

    def test_else_branch(self):
        result, _ = preprocess("#ifdef MISSING\nint a;\n#else\nint b;\n#endif\n")
        texts = token_texts(result)
        assert "a" not in texts and "b" in texts

    def test_if_defined_expression(self):
        result, _ = preprocess(
            "#if defined(_OPENACC)\nint a;\n#endif\n", {"_OPENACC": "201711"}
        )
        assert "a" in token_texts(result)

    def test_if_version_comparison(self):
        result, _ = preprocess(
            "#if _OPENMP >= 201511\nint a;\n#endif\n", {"_OPENMP": "201511"}
        )
        assert "a" in token_texts(result)

    def test_nested_conditionals(self):
        src = "#ifdef A\n#ifdef B\nint x;\n#endif\nint y;\n#endif\n"
        result, _ = preprocess(src, {"A": "1"})
        texts = token_texts(result)
        assert "x" not in texts and "y" in texts

    def test_unterminated_if_reports(self):
        _, diags = preprocess("#ifdef A\nint x;\n")
        assert "pp-mismatch" in diags.codes()

    def test_stray_endif_reports(self):
        _, diags = preprocess("#endif\n")
        assert "pp-mismatch" in diags.codes()


class TestPassthrough:
    def test_pragma_lines_survive(self):
        result, _ = preprocess("#pragma acc parallel loop\nfor(;;);\n")
        hash_lines = [t for t in result.tokens if t.kind is TokenKind.HASH_LINE]
        assert len(hash_lines) == 1
        assert "acc" in hash_lines[0].text

    def test_error_directive_reports(self):
        _, diags = preprocess("#error bad configuration\n")
        assert "pp-error" in diags.codes()

    def test_unsupported_directive_warns(self):
        _, diags = preprocess("#line 5\n")
        assert "pp-unsupported" in diags.codes()
        assert not diags.has_errors
