"""Unit tests for the generic stage scheduler."""

import threading

import pytest

from repro.pipeline.scheduler import StageScheduler, run_stage
from repro.pipeline.stages import Stage, StageOutcome
from repro.pipeline.stats import StageStats


class DoublingStage(Stage):
    name = "double"

    def __init__(self, workers: int = 2):
        self.workers = workers

    def process(self, payload, state):
        return StageOutcome(payload * 2, ok=True, done=True)


class PassStage(Stage):
    def __init__(self, name: str, workers: int = 1):
        self.name = name
        self.workers = workers

    def process(self, payload, state):
        return StageOutcome(payload + [self.name], ok=True)


class FilterStage(Stage):
    """Finishes odd numbers early, marking downstream stats skipped."""

    name = "filter"

    def __init__(self, downstream: tuple[str, ...]):
        self.downstream = downstream

    def process(self, payload, state):
        if payload % 2:
            return StageOutcome(payload, ok=False, done=True, skip_stats=self.downstream)
        return StageOutcome(payload, ok=True)


class ExplodingStage(Stage):
    name = "explode"

    def process(self, payload, state):
        if payload == "boom":
            raise RuntimeError("stage blew up")
        return StageOutcome(payload, ok=True, done=True)


class TestSchedulerBasics:
    def test_single_stage_processes_everything(self):
        result = run_stage(DoublingStage(), [1, 2, 3, 4])
        assert sorted(result.finished) == [2, 4, 6, 8]
        assert result.ok
        assert result.stats["double"].processed == 4
        assert result.stats["double"].passed == 4

    def test_chain_runs_stages_in_order(self):
        chain = [PassStage("a"), PassStage("b", workers=3), DoublingListStage()]
        result = StageScheduler(chain).run([[], []])
        assert result.ok
        for finished in result.finished:
            assert finished == ["a", "b", "a", "b"]

    def test_items_flow_through_last_stage_to_finished(self):
        # a non-terminal outcome at the last stage finishes the item
        result = run_stage(PassStage("only"), [[]])
        assert result.finished == [["only"]]

    def test_empty_input(self):
        result = run_stage(DoublingStage(), [])
        assert result.finished == []
        assert result.stats["double"].processed == 0

    def test_external_stats_are_used(self):
        stats = StageStats("double")
        run_stage(DoublingStage(), [1, 2], stats={"double": stats})
        assert stats.processed == 2

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            StageScheduler([PassStage("same"), PassStage("same")])

    def test_no_stages_rejected(self):
        with pytest.raises(ValueError):
            StageScheduler([])

    def test_back_pressure_small_queue(self):
        result = StageScheduler([DoublingStage(workers=1)], queue_capacity=1).run(
            list(range(50))
        )
        assert len(result.finished) == 50


class DoublingListStage(Stage):
    name = "repeat"

    def process(self, payload, state):
        return StageOutcome(payload + payload, ok=True, done=True)


class TestRoutingAndSkips:
    def test_early_finish_records_downstream_skips(self):
        chain = [FilterStage(downstream=("sink",)), SinkStage()]
        result = StageScheduler(chain).run([1, 2, 3, 4, 5])
        assert result.ok
        assert result.stats["filter"].failed == 3
        assert result.stats["sink"].processed == 2
        assert result.stats["sink"].skipped == 3

    def test_jump_routing_skips_a_stage(self):
        class Jumper(Stage):
            name = "jump"

            def process(self, payload, state):
                return StageOutcome(payload, ok=True, next_stage="sink")

        chain = [Jumper(), PassStage("never"), SinkStage()]
        result = StageScheduler(chain).run([10, 20])
        assert result.ok
        assert result.stats["never"].processed == 0
        assert result.stats["sink"].processed == 2

    def test_backward_routing_is_contained_as_error(self):
        class BadRouter(Stage):
            name = "bad"

            def process(self, payload, state):
                return StageOutcome(payload, ok=True, next_stage="bad")

        result = StageScheduler([BadRouter(), SinkStage()]).run([1])
        assert not result.ok
        assert result.errors[0].stage == "bad"

    def test_unknown_stage_routing_is_contained_as_error(self):
        class LostRouter(Stage):
            name = "lost"

            def process(self, payload, state):
                return StageOutcome(payload, ok=True, next_stage="nowhere")

        result = StageScheduler([LostRouter(), SinkStage()]).run([1])
        assert not result.ok
        assert "nowhere" in str(result.errors[0].error)


class SinkStage(Stage):
    name = "sink"

    def process(self, payload, state):
        return StageOutcome(payload, ok=True, done=True)


class TestErrorContainment:
    def test_raising_stage_does_not_hang_shutdown(self):
        """A stage exception must drain the run, not deadlock join()."""
        result = run_stage(ExplodingStage(), ["ok1", "boom", "ok2"])
        assert len(result.finished) == 3  # the failed item still drains
        assert len(result.errors) == 1
        assert result.errors[0].stage == "explode"
        assert result.errors[0].payload == "boom"
        assert isinstance(result.errors[0].error, RuntimeError)
        assert result.stats["explode"].failed == 1
        assert result.stats["explode"].passed == 2

    def test_all_worker_threads_join(self):
        before = threading.active_count()
        run_stage(ExplodingStage(), ["boom"] * 8)
        assert threading.active_count() == before


class TestAbort:
    def test_abort_drains_without_processing_backlog(self):
        """abort() parks the run via the sentinel path, skipping the queue."""
        processed = []
        lock = threading.Lock()

        class SlowStage(Stage):
            name = "slow"
            workers = 1

            def __init__(self):
                self.scheduler = None

            def process(self, payload, state):
                with lock:
                    processed.append(payload)
                if payload == 0:
                    self.scheduler.abort()
                return StageOutcome(payload, ok=True, done=True)

        stage = SlowStage()
        scheduler = StageScheduler([stage], queue_capacity=4)
        stage.scheduler = scheduler
        result = scheduler.run(list(range(64)))
        assert result.aborted
        # the first item triggered the abort; the long tail never ran
        assert len(processed) < 64
        assert len(result.finished) == len(processed)

    def test_abort_joins_all_worker_threads(self):
        before = threading.active_count()

        class AbortingStage(Stage):
            name = "aborting"
            workers = 3

            def __init__(self):
                self.scheduler = None

            def process(self, payload, state):
                self.scheduler.abort()
                return StageOutcome(payload, ok=True, done=True)

        stage = AbortingStage()
        scheduler = StageScheduler([stage], queue_capacity=2)
        stage.scheduler = scheduler
        scheduler.run(list(range(32)))
        assert threading.active_count() == before

    def test_run_clears_previous_abort(self):
        scheduler = StageScheduler([DoublingStage()])
        scheduler.abort()
        result = scheduler.run([1, 2])
        assert not result.aborted
        assert sorted(result.finished) == [2, 4]


class TestWorkerState:
    def test_state_built_once_per_worker(self):
        built = []
        lock = threading.Lock()

        class StatefulStage(Stage):
            name = "stateful"
            workers = 3

            def make_worker_state(self):
                with lock:
                    built.append(threading.get_ident())
                return object()

            def process(self, payload, state):
                assert state is not None
                return StageOutcome(payload, ok=True, done=True)

        result = run_stage(StatefulStage(), list(range(12)))
        assert result.ok
        assert len(built) == 3
        assert len(set(built)) == 3  # one state per distinct thread


class TestPipelineExtension:
    def test_extra_stage_stats_surface(self, valid_acc_source, model):
        """stages() is the override point; added stages must keep stats."""
        from repro.corpus.generator import TestFile
        from repro.pipeline.engine import PipelineConfig, ValidationPipeline

        class CountStage(Stage):
            name = "count"

            def process(self, payload, state):
                return StageOutcome(payload, ok=True)

        class ExtendedPipeline(ValidationPipeline):
            def stages(self):
                compile_, execute, judge = super().stages()
                return [compile_, execute, CountStage(), judge]

        files = [TestFile("t.c", "c", "acc", valid_acc_source, "x")]
        result = ExtendedPipeline(PipelineConfig(), model=model).run(files)
        assert result.stats.for_stage("count").processed == 1
        assert "count" in result.stats.summary()["stages"]
        assert result.records[0].pipeline_says_valid in (True, False)
