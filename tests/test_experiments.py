"""Tests for the experiment harness: environment, paperdata, runner."""

import pytest

from repro.compiler.driver import Compiler
from repro.corpus.generator import TestFile
from repro.experiments import EnvironmentModel, ExperimentConfig, Experiments
from repro.experiments import paperdata
from repro.experiments.config import _SCALES


class TestEnvironmentModel:
    def test_zero_rate_never_flaky(self):
        env = EnvironmentModel(compile_flake_rate=0.0)
        assert not any(env.is_flaky(f"file{i}.c") for i in range(50))

    def test_rate_approximately_respected(self):
        env = EnvironmentModel(compile_flake_rate=0.2, seed=3)
        flaky = sum(env.is_flaky(f"file{i}.c") for i in range(2000))
        assert 300 < flaky < 500

    def test_deterministic_per_name(self):
        env = EnvironmentModel(compile_flake_rate=0.5, seed=3)
        assert env.is_flaky("x.c") == env.is_flaky("x.c")

    def test_apply_replaces_successful_compile(self, valid_acc_source):
        env = EnvironmentModel(compile_flake_rate=1.0, seed=1)
        test = TestFile("t.c", "c", "acc", valid_acc_source, "x")
        compiled = Compiler(model="acc").compile(test.source, test.name)
        flaked = env.apply(test, compiled)
        assert flaked.returncode != 0
        assert "toolchain-limitation" in flaked.diagnostic_codes

    def test_apply_leaves_failures_alone(self):
        env = EnvironmentModel(compile_flake_rate=1.0, seed=1)
        test = TestFile("t.c", "c", "acc", "garbage", "x")
        compiled = Compiler(model="acc").compile(test.source, test.name)
        assert env.apply(test, compiled) is compiled


class TestPaperData:
    def test_counts_sum_to_published_totals(self):
        assert sum(paperdata.TABLE_I.counts.values()) == 1335
        assert sum(paperdata.TABLE_II.counts.values()) == 431
        assert sum(paperdata.TABLE_IV["Pipeline 1"].counts.values()) == 1782
        assert sum(paperdata.TABLE_V["Pipeline 1"].counts.values()) == 296

    def test_accuracy_matches_published_percentages(self):
        assert paperdata.TABLE_I.accuracy(3) == pytest.approx(94 / 117)
        assert paperdata.TABLE_II.accuracy(5) == pytest.approx(84 / 216)

    def test_overall_consistency(self):
        # mistakes + correct = total for Table III
        t3 = paperdata.TABLE_III["acc"]
        correct = sum(paperdata.TABLE_I.correct.values())
        assert t3.total_count - t3.total_mistakes == correct

    def test_pipeline_mistakes_consistent(self):
        t6 = paperdata.TABLE_VI["acc"][0]
        correct = sum(paperdata.TABLE_IV["Pipeline 1"].correct.values())
        assert t6.total_count - t6.total_mistakes == correct

    def test_figures_derive_from_tables(self):
        fig3 = paperdata.FIGURE_3["Pipeline 1"]
        assert fig3["model errors"] == pytest.approx(250 / 272)
        assert fig3["test logic"] == pytest.approx(38 / 176)
        fig5 = paperdata.FIGURE_5["LLMJ 1"]
        assert fig5["valid tests"] == pytest.approx(819 / 891)


class TestConfig:
    def test_scales_defined(self):
        assert set(_SCALES) == {"paper", "small", "tiny"}

    def test_paper_scale_counts(self):
        config = ExperimentConfig(scale="paper")
        assert config.part1_acc_count == 1336
        assert config.part2_acc_count == 1782
        assert config.part2_omp_count == 296

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale="huge")

    def test_protocol_languages(self):
        config = ExperimentConfig(scale="tiny")
        assert config.part1_omp_languages == ("c",)
        assert "f90" in config.part1_acc_languages
        assert config.part2_languages == ("c", "cpp")


@pytest.fixture(scope="module")
def tiny_experiments():
    return Experiments(ExperimentConfig(scale="tiny", seed=7, model_seed=5))


class TestExperimentsTiny:
    """Integration: the harness regenerates every artifact at tiny scale."""

    def test_table1_shape(self, tiny_experiments):
        result = tiny_experiments.table1()
        assert "Table I" in result.text
        report = result.reports[0]
        assert report.total_count == 60
        assert report.row_for(5) is not None

    def test_table3_has_both_flavors(self, tiny_experiments):
        result = tiny_experiments.table3()
        assert "OpenACC" in result.text and "OpenMP" in result.text

    def test_part2_reports_consistent(self, tiny_experiments):
        run = tiny_experiments.part2_run("acc")
        assert run.llmj1_report.total_count == run.pipeline1_report.total_count
        # the pipeline can only be stricter than its judge on invalid files
        assert run.pipeline1_report.row_for(1).accuracy >= run.llmj1_report.row_for(1).accuracy

    def test_agent_beats_direct_overall(self, tiny_experiments):
        """The paper's headline: agent-based judging is drastically better."""
        direct = tiny_experiments.part1_report("acc")
        agent = tiny_experiments.part2_run("acc").llmj1_report
        assert agent.overall_accuracy > direct.overall_accuracy

    def test_figures_have_series(self, tiny_experiments):
        fig3 = tiny_experiments.fig3()
        assert len(fig3.series) == 2
        fig5 = tiny_experiments.fig5()
        assert len(fig5.series) == 3
        assert fig5.series[0].axes[-1] == "valid tests"

    def test_all_tables_materialize(self, tiny_experiments):
        tables = tiny_experiments.all_tables()
        assert len(tables) == 9
        assert all(t.text for t in tables)

    def test_caching_returns_same_objects(self, tiny_experiments):
        assert tiny_experiments.part1_report("acc") is tiny_experiments.part1_report("acc")
        assert tiny_experiments.part2_run("omp") is tiny_experiments.part2_run("omp")


class TestReportGeneration:
    def test_experiments_md_written(self, tiny_experiments, tmp_path):
        from repro.experiments.report import write_experiments_md

        path = write_experiments_md(tiny_experiments, tmp_path / "EXPERIMENTS.md")
        text = path.read_text()
        assert "Table I" in text
        assert "paper" in text and "measured" in text
        assert "Figure 6" in text
        assert "Known residual deviations" in text
