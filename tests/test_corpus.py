"""Unit tests for corpus generation, templates, features, suites."""

import random

import pytest

from repro.compiler.driver import Compiler
from repro.corpus.features import OPENACC_FEATURES, OPENMP_FEATURES, catalog, features_at_or_below
from repro.corpus.generator import CorpusGenerator, TestFile, _issue_name
from repro.corpus.suite import TestSuite
from repro.corpus.templates import TEMPLATES, TemplateContext, templates_for
from repro.runtime.executor import Executor


class TestFeatures:
    def test_catalogs_nonempty(self):
        assert len(OPENACC_FEATURES) >= 20
        assert len(OPENMP_FEATURES) >= 25

    def test_catalog_lookup(self):
        assert catalog("acc") is OPENACC_FEATURES
        assert catalog("omp") is OPENMP_FEATURES
        with pytest.raises(ValueError):
            catalog("cuda")

    def test_version_filter(self):
        old = features_at_or_below("omp", 3.0)
        assert all(f.since <= 3.0 for f in old)
        assert len(old) < len(OPENMP_FEATURES)

    def test_feature_idents_match_model(self):
        for ident, feature in OPENACC_FEATURES.items():
            assert ident.startswith("acc.")
            assert feature.model == "acc"


class TestTemplates:
    def test_registry_covers_both_models(self):
        assert templates_for("acc", "c")
        assert templates_for("omp", "c")
        assert templates_for("acc", "f90")

    def test_every_template_declares_features(self):
        for spec in TEMPLATES:
            assert spec.features, spec.name

    @pytest.mark.parametrize("spec", TEMPLATES, ids=lambda s: s.name)
    def test_every_template_renders_compiles_and_passes(self, spec):
        """Each template must produce a valid, self-checking test."""
        rng = random.Random(5)
        model = spec.models[0]
        language = spec.languages[0]
        ctx = TemplateContext(rng=rng, model=model, language=language)
        source = spec.render(ctx)
        ext = {"c": ".c", "cpp": ".cpp", "f90": ".f90"}[language]
        compiler = Compiler(model=model)
        compiled = compiler.compile(source, f"t{ext}")
        assert compiled.ok, f"{spec.name}: {compiled.stderr}"
        result = Executor().run(compiled)
        assert result.returncode == 0, f"{spec.name}: rc={result.returncode} {result.stderr}"

    def test_template_context_randomizes(self):
        rng = random.Random(1)
        sizes = {TemplateContext(rng=rng, model="acc", language="c").size for _ in range(20)}
        assert len(sizes) > 1


class TestGenerator:
    def test_generates_requested_count(self, acc_corpus):
        assert len(acc_corpus) == 36

    def test_deterministic_with_seed(self):
        a = CorpusGenerator(seed=3).generate("omp", 6)
        b = CorpusGenerator(seed=3).generate("omp", 6)
        assert [t.source for t in a] == [t.source for t in b]

    def test_different_seeds_differ(self):
        a = CorpusGenerator(seed=3).generate("omp", 6)
        b = CorpusGenerator(seed=4).generate("omp", 6)
        assert [t.source for t in a] != [t.source for t in b]

    def test_unknown_language_raises(self):
        with pytest.raises(ValueError):
            CorpusGenerator(seed=1).generate("acc", 3, languages=("rust",))

    def test_names_unique(self, acc_corpus):
        names = [t.name for t in acc_corpus]
        assert len(names) == len(set(names))

    def test_all_validated_files_run_clean(self, omp_corpus):
        compiler = Compiler(model="omp")
        executor = Executor()
        for test in omp_corpus[:8]:
            compiled = compiler.compile(test.source, test.name)
            assert compiled.ok
            assert executor.run(compiled).returncode == 0


class TestTestFile:
    def test_valid_by_default(self):
        test = TestFile("a.c", "c", "acc", "int main(){return 0;}", "t")
        assert test.is_valid
        assert test.issue is None

    def test_with_issue_marks_invalid(self):
        test = TestFile("a.c", "c", "acc", "src", "t").with_issue(2, "mutated")
        assert not test.is_valid
        assert test.issue == 2
        assert test.source == "mutated"
        assert "__issue2" in test.name

    def test_issue5_stays_valid(self):
        test = TestFile("a.c", "c", "acc", "src", "t").with_issue(5)
        assert test.is_valid

    def test_issue_name_without_extension(self):
        assert _issue_name("plain", 3) == "plain__issue3"


class TestSuiteContainer:
    def test_split_half_partitions(self, acc_corpus):
        suite = TestSuite("s", "acc", list(acc_corpus))
        first, second = suite.split_half(seed=1)
        assert len(first) + len(second) == len(suite)
        names = {t.name for t in first} | {t.name for t in second}
        assert len(names) == len(suite)

    def test_split_half_seeded(self, acc_corpus):
        suite = TestSuite("s", "acc", list(acc_corpus))
        a1, _ = suite.split_half(seed=9)
        a2, _ = suite.split_half(seed=9)
        assert [t.name for t in a1] == [t.name for t in a2]

    def test_by_language(self, acc_corpus):
        suite = TestSuite("s", "acc", list(acc_corpus))
        for lang in suite.languages():
            assert all(t.language == lang for t in suite.by_language(lang))

    def test_save_and_load_roundtrip(self, acc_corpus, tmp_path):
        suite = TestSuite("roundtrip", "acc", list(acc_corpus)[:5])
        suite.save(tmp_path / "out")
        loaded = TestSuite.load(tmp_path / "out")
        assert loaded.name == "roundtrip"
        assert [t.name for t in loaded] == [t.name for t in suite]
        assert [t.source for t in loaded] == [t.source for t in suite]
