"""Legacy setup shim so `pip install -e .` works without network access
(the environment ships setuptools 65 without the `wheel` package, so the
PEP 660 editable path is unavailable)."""

from setuptools import setup

setup()
