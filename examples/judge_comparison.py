#!/usr/bin/env python
"""Compare the three judge configurations on one probed suite.

Runs the tool-less direct judge, the agent-based direct judge (LLMJ 1)
and the agent-based indirect judge (LLMJ 2) over the same OpenACC
probing population — tool outputs are collected once and shared, as in
the paper's record-all protocol — then prints a per-issue comparison
and the radar-figure series (Figure 5's shape).

Run:  python examples/judge_comparison.py
"""

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.judge.agent import ToolRunner
from repro.judge.llmj import AgentLLMJ, DirectLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.metrics.accuracy import EvaluationSet, score_evaluations
from repro.metrics.confusion import breakdown_by, confusion_matrix, render_breakdown
from repro.metrics.radar import radar_series, render_ascii_radar
from repro.metrics.tables import render_comparison_table
from repro.probing.prober import NegativeProber


def main() -> None:
    print("building the probing population ...")
    generator = CorpusGenerator(seed=2024)
    files = generator.generate("acc", 100, languages=("c", "cpp"))
    probed = NegativeProber(seed=8).probe(TestSuite("acc", "acc", files))

    model = DeepSeekCoderSim(seed=17)
    tools = ToolRunner("acc")
    judges = {
        "Direct LLMJ": DirectLLMJ(model, "acc"),
        "LLMJ 1": AgentLLMJ(model, "acc", kind="direct", tools=tools),
        "LLMJ 2": AgentLLMJ(model, "acc", kind="indirect", tools=tools),
    }

    print("collecting tool reports once (shared across agent judges) ...")
    reports = {test.name: tools.collect(test) for test in probed}

    metric_reports = {}
    all_verdicts = {}
    for label, judge in judges.items():
        verdicts = []
        for test in probed:
            if isinstance(judge, AgentLLMJ):
                result = judge.judge(test, reports[test.name])
            else:
                result = judge.judge(test)
            verdicts.append(result.says_valid)
        all_verdicts[label] = verdicts
        metric_reports[label] = score_evaluations(label, list(probed), verdicts)

    print()
    print(
        render_comparison_table(
            metric_reports["LLMJ 1"],
            metric_reports["LLMJ 2"],
            "Agent-based judges, per issue (OpenACC)",
        )
    )
    print()
    for label, report in metric_reports.items():
        print(
            f"{label:12s} overall={report.overall_accuracy:.1%} "
            f"bias={report.bias:+.3f}"
        )

    print()
    print("confusion matrix for LLMJ 1 ('invalid' is the positive class):")
    cm = confusion_matrix(
        EvaluationSet.from_records(list(probed), all_verdicts["LLMJ 1"])
    )
    print(cm.render())

    print()
    rows = breakdown_by(list(probed), all_verdicts["LLMJ 1"], "language")
    print(render_breakdown(rows, "LLMJ 1 accuracy by language:"))

    print()
    series = [radar_series(r, include_valid_axis=True) for r in metric_reports.values()]
    print(render_ascii_radar(series))


if __name__ == "__main__":
    main()
