#!/usr/bin/env python
"""Quickstart: validate candidate OpenACC compiler tests.

This is the paper's end product in five lines: hand the validator some
candidate test sources, get structured verdicts back.  One candidate is
a correct self-checking test; one has a corrupted directive; one lost
its verification logic (the failure mode only the LLM judge can catch).

Run:  python examples/quickstart.py
"""

from repro import TestsuiteValidator

GOOD_TEST = r"""
#include <stdio.h>
#include <stdlib.h>
#include <openacc.h>
#define N 256

int main() {
    double a[N];
    double expected[N];
    int err = 0;
    for (int i = 0; i < N; i++) {
        a[i] = (double)i;
        expected[i] = a[i] * 2.0 + 1.0;
    }
#pragma acc parallel loop copy(a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = a[i] * 2.0 + 1.0;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != expected[i]) {
            err = err + 1;
        }
    }
    if (err != 0) {
        printf("FAILED with %d errors\n", err);
        return 1;
    }
    printf("PASSED\n");
    return 0;
}
"""

# 'paralel' is not an OpenACC directive: the compiler stage catches this.
BAD_DIRECTIVE = GOOD_TEST.replace("#pragma acc parallel loop", "#pragma acc paralel loop")

# The self-check block is gone: compiles, runs, exits 0 — only the
# judge stage *could* notice the test no longer verifies anything, and
# the paper found judges catch this class only ~15-30% of the time, so
# expect this one to slip through (that blind spot is a key finding).
NO_CHECK = GOOD_TEST.replace(
    """    if (err != 0) {
        printf("FAILED with %d errors\\n", err);
        return 1;
    }
""",
    "",
)


def main() -> None:
    validator = TestsuiteValidator(flavor="acc", judge_kind="direct")
    report = validator.validate_sources(
        {
            "vector_scale.c": GOOD_TEST,
            "bad_directive.c": BAD_DIRECTIVE,
            "no_self_check.c": NO_CHECK,
        }
    )

    print("=== verdicts ===")
    for judged in report.files:
        marker = "PASS" if judged.is_valid else "FAIL"
        print(f"[{marker}] {judged.name}")
        print(f"        stage:  {judged.stage}")
        print(f"        reason: {judged.reason}")

    print("\n=== pipeline summary ===")
    for key, value in report.summary().items():
        print(f"  {key}: {value}")
    if report.stats is not None:
        print(f"  judge calls saved by early exit: {report.stats.judge_invocations_saved}")


if __name__ == "__main__":
    main()
