#!/usr/bin/env python
"""Pipeline triage of LLM-generated tests (the paper's motivating use).

The scenario from the paper's introduction: an LLM has generated a pile
of candidate compiler tests with a high invalidity rate, and compiling
+ running + judging *every* file serially is too slow.  This example
builds such a pile (valid synthetic tests mixed with mutated ones),
then triages it through the staged validation pipeline twice — with and
without early exit — and compares cost.

The early-exit win is measured in *judge invocations saved* and
simulated GPU seconds (a 33B judge is the expensive stage), exactly the
argument of §III-C.

Run:  python examples/pipeline_triage.py
"""

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.llm.model import DeepSeekCoderSim
from repro.metrics.accuracy import score_evaluations
from repro.pipeline.engine import PipelineConfig, ValidationPipeline
from repro.probing.prober import NegativeProber


def run_pipeline(files, early_exit: bool):
    config = PipelineConfig(
        flavor="omp",
        judge_kind="direct",
        early_exit=early_exit,
        compile_workers=2,
        execute_workers=2,
        judge_workers=1,
    )
    pipeline = ValidationPipeline(config, model=DeepSeekCoderSim(seed=5))
    return pipeline.run(files)


def main() -> None:
    print("building a candidate pile with a high invalidity rate ...")
    generator = CorpusGenerator(seed=99)
    valid = generator.generate("omp", 60, languages=("c", "cpp"))
    suite = TestSuite("omp-candidates", "omp", valid)
    # mutate 1/2 of the files: this mimics an LLM generator whose
    # output frequently fails to compile or run
    probed = NegativeProber(seed=3).probe(suite)
    files = list(probed)
    n_invalid = sum(1 for f in files if not f.is_valid)
    print(f"  {len(files)} candidates, {n_invalid} known-invalid")

    for early_exit in (False, True):
        label = "early-exit" if early_exit else "record-all"
        result = run_pipeline(files, early_exit)
        verdicts = [record.pipeline_says_valid for record in result.records]
        ordered = [record.test for record in result.records]
        report = score_evaluations(f"Pipeline ({label})", ordered, verdicts)
        stats = result.stats.summary()
        print(f"\n=== {label} pipeline ===")
        print(f"  accuracy:              {report.overall_accuracy:.1%}")
        print(f"  bias:                  {report.bias:+.3f}")
        print(f"  wall time:             {stats['wall_seconds']:.2f}s")
        print(f"  judge calls:           {stats['stages']['judge']['processed']}")
        print(f"  judge calls saved:     {stats['judge_invocations_saved']}")
        print(f"  simulated GPU seconds: {stats['stages']['judge']['simulated_seconds']:.0f}")


if __name__ == "__main__":
    main()
