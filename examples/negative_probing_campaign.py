#!/usr/bin/env python
"""Negative-probing campaign: measure a judge's blind spots.

Reproduces the paper's §III-A protocol end to end at a small scale:

1. generate a validated synthetic OpenACC V&V suite (C, C++, Fortran);
2. split it in half and corrupt one half with the five issue types;
3. judge every file with the tool-less direct prompt;
4. print the per-issue accuracy table, overall accuracy and bias —
   the paper's Table I / III shape.

Run:  python examples/negative_probing_campaign.py
"""

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.judge.llmj import DirectLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.metrics.accuracy import score_evaluations
from repro.metrics.tables import render_issue_table
from repro.probing.prober import NegativeProber


def main() -> None:
    print("generating a validated OpenACC V&V corpus ...")
    generator = CorpusGenerator(seed=1234)
    files = generator.generate("acc", 120, languages=("c", "cpp", "f90"))
    suite = TestSuite("acc-demo", "acc", files)
    print(f"  {len(files)} tests across languages {suite.languages()}")

    print("applying negative probing (half mutated, half unchanged) ...")
    probed = NegativeProber(seed=42).probe(suite)
    counts = probed.issue_counts()
    print("  issue counts:", {k: v for k, v in counts.items() if v})

    print("judging every file with the direct-analysis prompt ...")
    model = DeepSeekCoderSim(seed=7)
    judge = DirectLLMJ(model, "acc")
    verdicts = []
    for test in probed:
        result = judge.judge(test)
        verdicts.append(result.says_valid)

    report = score_evaluations("Direct LLMJ", list(probed), verdicts)
    print()
    print(render_issue_table(report, "Negative probing results (OpenACC, direct prompt)"))
    print()
    print(f"overall accuracy: {report.overall_accuracy:.2%}")
    print(f"bias:             {report.bias:+.3f}  "
          f"({'permissive' if report.bias > 0 else 'restrictive'} mistakes dominate)")
    print()
    print(f"LLM calls: {model.stats.calls}, "
          f"~{model.stats.prompt_tokens // 1000}k prompt tokens, "
          f"simulated GPU time {model.stats.simulated_seconds / 60:.1f} min")


if __name__ == "__main__":
    main()
