#!/usr/bin/env python
"""Automated test generation with LLMJ filtering (the closed loop).

The paper's future-work target: generate candidate compiler tests with
a code LLM, then use the validation pipeline — compile, execute, judge
— to admit only trustworthy tests into the suite, with no human review.

This example asks the (simulated) generation model for two candidates
per OpenACC catalog feature, filters them through the pipeline, and
prints the yield, the rejection breakdown by stage, the residual risk
(defective tests that slipped through), and the feature coverage of the
accepted suite.

Run:  python examples/automated_generation.py
"""

from repro.corpus.features import catalog
from repro.generation import AutomatedSuiteBuilder


def main() -> None:
    features = sorted(catalog("acc"))
    print(f"targeting {len(features)} OpenACC catalog features, "
          f"2 candidates each ...\n")

    builder = AutomatedSuiteBuilder(
        flavor="acc",
        seed=2024,
        candidates_per_feature=2,
        judge_kind="direct",
    )
    report = builder.build(features)

    print(report.render())

    print("\nsample of accepted tests:")
    for test in report.accepted[:6]:
        print(f"  {test.name}  (template={test.template})")

    suite = report.suite("llm-generated-acc")
    print(f"\nassembled suite '{suite.name}' with {len(suite)} tests "
          f"across languages {suite.languages()}")
    print("note: defective-but-admitted tests correspond to the paper's "
          "hardest class\n(missing verification logic) — the known blind "
          "spot of current LLM judges.")


if __name__ == "__main__":
    main()
