#!/usr/bin/env python
"""Validation-as-a-service: run the daemon in-process and query it.

Starts the HTTP serving layer on an ephemeral port, fires a burst of
concurrent validation requests at it (so the micro-batcher actually
groups them), inspects ``/v1/stats``, makes one judge-only call, and
drains gracefully.  The same daemon runs standalone via::

    llm4vv serve --port 8347 --cache-dir .cache
    llm4vv client my_test.c --port 8347

Run:  python examples/serve_and_query.py
"""

import threading

from repro.service import ServiceClient, make_server

VALID_TEST = r"""
#include <stdio.h>
#include <stdlib.h>
#include <openacc.h>
#define N 128

int main() {
    double a[N];
    double expected[N];
    int err = 0;
    for (int i = 0; i < N; i++) {
        a[i] = (double)i;
        expected[i] = a[i] * 2.0 + 1.0;
    }
#pragma acc parallel loop copy(a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = a[i] * 2.0 + 1.0;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != expected[i]) {
            err = err + 1;
        }
    }
    if (err != 0) {
        printf("FAILED with %d errors\n", err);
        return 1;
    }
    printf("PASSED\n");
    return 0;
}
"""

# drop the opening brace of main(): fails at the compile stage
BROKEN_TEST = VALID_TEST.replace("{", "", 1)


def main() -> None:
    # 1. the daemon: ThreadingHTTPServer + micro-batching admission
    server = make_server(port=0, max_latency=0.02, max_batch_size=8)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    print(f"daemon up on http://{host}:{port}")

    client = ServiceClient(host=host, port=port)
    print("health:", client.healthz())

    # 2. a concurrent burst: ten clients, one shared pipeline batch
    def hit(index: int, source: str, results: dict) -> None:
        results[index] = client.validate({f"candidate_{index}.c": source})

    results: dict[int, dict] = {}
    threads = [
        threading.Thread(
            target=hit,
            args=(i, VALID_TEST if i % 2 == 0 else BROKEN_TEST, results),
        )
        for i in range(10)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for index in sorted(results):
        verdict = results[index]["verdicts"][0]
        batch = results[index]["batch"]
        print(
            f"  candidate_{index}.c: {verdict['verdict']:7s} "
            f"at {verdict['stage']} stage (batch of {batch['size']})"
        )

    # 3. live introspection: batching counters, pipeline stats, cache
    stats = client.stats()
    batching = stats["service"]["batching"]
    pipeline = stats["pipeline"]
    print(
        f"batching: {batching['completed']} requests in "
        f"{batching['batches']} batches (largest {batching['largest_batch']})"
    )
    print(
        f"pipeline: {pipeline['files_total']} files, "
        f"judge skipped {pipeline['judge_invocations_saved']} "
        f"(early exit at compile/execute)"
    )

    # 4. judge-only call: no pipeline, just the agent judge
    judged = client.judge("candidate_0.c", VALID_TEST)
    print(f"judge-only: says_valid={judged['says_valid']}")

    # 5. graceful drain: queued work finishes, then the listener stops
    server.drain_and_shutdown()
    server.server_close()
    print("drained and stopped")


if __name__ == "__main__":
    main()
