#!/usr/bin/env python
"""Ablation studies over the validation method's design choices.

Three questions the paper's design raises, answered empirically:

1. What does the pipeline's early exit buy? (judge calls and simulated
   GPU time saved, at zero accuracy cost)
2. How does real-toolchain nonconformance on valid tests open a gap
   between pipeline accuracy and judge accuracy? (the mechanism behind
   the paper's Table IV vs Table VII discrepancy)
3. How stable are the headline numbers across judge sampling seeds?

Run:  python examples/ablation_studies.py
"""

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.experiments.ablations import (
    early_exit_ablation,
    flake_rate_sweep,
    seed_variance,
)
from repro.probing.prober import NegativeProber


def main() -> None:
    print("building a probed OpenACC population ...")
    files = CorpusGenerator(seed=61).generate("acc", 48, languages=("c", "cpp"))
    population = list(NegativeProber(seed=62).probe(TestSuite("abl", "acc", files)))
    print(f"  {len(population)} files\n")

    print("=== 1. early-exit ablation ===")
    result = early_exit_ablation(population)
    print(f"  accuracy (record-all): {result.accuracy_record_all:.1%}")
    print(f"  accuracy (early-exit): {result.accuracy_early_exit:.1%}")
    print(f"  judge calls saved:     {result.judge_calls_saved} "
          f"of {result.judge_calls_record_all}")
    print(f"  simulated judge-time speedup: {result.speedup:.2f}x\n")

    print("=== 2. toolchain-flake sweep ===")
    print("  rate   pipeline-valid   judge-valid    gap")
    for point in flake_rate_sweep(population, rates=(0.0, 0.07, 0.14, 0.28)):
        print(
            f"  {point.flake_rate:4.0%}   {point.pipeline_valid_accuracy:12.1%}"
            f"   {point.judge_valid_accuracy:10.1%}   {point.gap:+6.1%}"
        )
    print("  (the judge discounts toolchain-limitation errors, so its accuracy")
    print("   holds while the pipeline's falls — the paper's Table IV/VII gap)\n")

    print("=== 3. judge-seed variance ===")
    variance = seed_variance(population, seeds=(1, 2, 3, 4, 5))
    print(f"  accuracies: {[f'{a:.1%}' for a in variance.accuracies]}")
    print(f"  mean ± std: {variance.accuracy_mean:.1%} ± {variance.accuracy_std:.1%}")
    print(f"  bias mean:  {variance.bias_mean:+.3f}")


if __name__ == "__main__":
    main()
