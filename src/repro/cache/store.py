"""The result store: a thread-safe LRU with optional JSON persistence.

:class:`ResultCache` holds arbitrary Python values in memory under
content-addressed keys (see :mod:`repro.cache.keys`).  Namespaces whose
values round-trip through JSON can attach a :class:`Codec`, which
enables :meth:`save_to` / :meth:`load_from` — the on-disk warm-start
path used by the CLI's ``--cache-dir``.  Namespaces without a codec
(the compile cache, whose values carry live AST objects) stay
memory-only.
"""

from __future__ import annotations

import contextlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.metrics import get_metrics

try:  # POSIX advisory locks guard concurrent-process saves
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


@contextlib.contextmanager
def _interprocess_lock(lock_path: Path) -> Iterator[None]:
    """Exclusive advisory lock serialising writers across processes.

    Readers never need it: writes land via atomic rename, so a reader
    sees either the old or the new file, never a torn one.  Where
    ``flock`` is unavailable the lock degrades to a no-op and
    merge-on-save plus pid-unique temp files still prevent corruption
    (though a concurrent writer's entries may then be lost to a race).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    with open(lock_path, "a+") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


@dataclass(frozen=True)
class Codec:
    """Value (de)serialisation for disk persistence."""

    encode: Callable[[Any], Any]  # value -> JSON-able object
    decode: Callable[[Any], Any]  # JSON-able object -> value


class ResultCache:
    """Bounded LRU mapping content keys to stage results.

    Thread-safe; eviction is least-recently-*used* (a ``get`` refreshes
    recency).  Hit/miss/eviction counters feed the CLI's cache summary.
    """

    def __init__(self, name: str, max_entries: int = 65536, codec: Codec | None = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.name = name
        self.max_entries = max_entries
        self.codec = codec
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                value = self._entries[key]
            else:
                self.misses += 1
                value = None
        get_metrics().counter(
            "cache_lookups_total",
            namespace=self.name,
            result="miss" if value is None else "hit",
        ).inc()
        return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        The compute runs outside the lock: concurrent misses may both
        compute (results are deterministic, so last-write-wins is safe).
        """
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # ------------------------------------------------------------------
    # disk persistence (codec namespaces only)
    # ------------------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self.codec is not None

    def save_to(self, directory: str | Path) -> Path | None:
        """Write all entries to ``<directory>/<name>.json`` (atomic).

        Safe under concurrent processes: the write happens under an
        exclusive ``<name>.json.lock`` and *merges* with whatever is
        already on disk (keys persisted by sibling shards survive; for
        keys both sides hold, this process's value wins — keys are
        content-addressed, so both sides computed the same value
        anyway).  The merged payload is capped at ``max_entries`` so
        the file honours the same bound as the in-memory LRU.  The
        payload then lands via write-to-temp plus atomic rename, so
        readers never observe a torn file.

        An unwritable destination (e.g. a path naming an existing file)
        loses persistence, never the run: returns None instead of
        raising, mirroring :meth:`load_from`'s corrupt-file tolerance.
        """
        if self.codec is None:
            return None
        directory = Path(directory)
        try:
            with self._lock:
                payload = {
                    key: self.codec.encode(value) for key, value in self._entries.items()
                }
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{self.name}.json"
            with _interprocess_lock(directory / f"{self.name}.json.lock"):
                if path.exists():
                    try:
                        disk = json.loads(path.read_text())
                    except (json.JSONDecodeError, OSError, ValueError):
                        disk = {}
                    # merge up to the LRU bound: this process's entries
                    # always survive; older disk-only entries fill the
                    # remainder, so the file cannot grow without limit
                    for key, raw in disk.items():
                        if len(payload) >= self.max_entries:
                            break
                        payload.setdefault(key, raw)
                # imported here, not at module top: repro.core's package
                # __init__ pulls in the validator stack, which reaches
                # back into this module
                from repro.core.atomicio import atomic_write_text

                atomic_write_text(path, json.dumps(payload), fault_tag="cache")
        except (OSError, TypeError, ValueError):
            return None
        return path

    @staticmethod
    def disk_snapshot(directory: str | Path, name: str) -> dict[str, object] | None:
        """Counters for ``<directory>/<name>.json`` without loading values.

        Returns ``None`` when the namespace has no persisted file;
        otherwise entry count, payload size and a corruption flag (a
        corrupt file reads as zero entries, mirroring
        :meth:`load_from`'s cold-cache tolerance).
        """
        path = Path(directory) / f"{name}.json"
        try:
            size = path.stat().st_size
        except OSError:
            # absent — or unlinked by a concurrent purge/save between
            # calls; either way the namespace has no persisted file
            return None
        snapshot: dict[str, object] = {"bytes": size}
        try:
            payload = json.loads(path.read_text())
            snapshot["entries"] = len(payload) if isinstance(payload, dict) else 0
            snapshot["corrupt"] = not isinstance(payload, dict)
        except (json.JSONDecodeError, OSError, ValueError):
            snapshot["entries"] = 0
            snapshot["corrupt"] = True
        return snapshot

    @staticmethod
    def purge_namespace(directory: str | Path, name: str) -> bool:
        """Delete one namespace's persisted file (and stray temp files).

        Runs under the same ``<name>.json.lock`` writers take, so a
        purge cannot race a concurrent :meth:`save_to` into resurrecting
        half a file.  Returns True when a persisted file was removed.
        """
        directory = Path(directory)
        path = directory / f"{name}.json"
        removed = False
        if not directory.is_dir():
            return False
        with _interprocess_lock(directory / f"{name}.json.lock"):
            if path.exists():
                path.unlink()
                removed = True
            for stray in directory.glob(f"{name}.json.*.tmp"):
                with contextlib.suppress(OSError):
                    stray.unlink()
        return removed

    def load_from(self, directory: str | Path) -> int:
        """Merge entries from ``<directory>/<name>.json``; returns count.

        Corrupt or unreadable files are treated as a cold cache, never
        an error — a cache must not be able to break a run.
        """
        if self.codec is None:
            return 0
        path = Path(directory) / f"{self.name}.json"
        if not path.exists():
            return 0
        try:
            payload = json.loads(path.read_text())
            decoded = {key: self.codec.decode(raw) for key, raw in payload.items()}
        except (json.JSONDecodeError, OSError, KeyError, TypeError, ValueError):
            return 0
        for key, value in decoded.items():
            self.put(key, value)
        return len(decoded)
