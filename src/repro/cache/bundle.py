"""The pipeline-wide cache bundle.

:class:`PipelineCache` groups one :class:`ResultCache` per cacheable
stage kind:

* ``compile`` — memory-only (values carry live AST objects);
* ``execute`` — persistent (plain :class:`ExecutionResult` data);
* ``judge``  — persistent (:class:`JudgeResult` round-trips via JSON).

One bundle is shared by every consumer of a run — corpus generation,
the validation pipeline's stages, the experiment runner's retroactive
judge pass — so repeated work de-duplicates across all of them, and
across :class:`Experiments` instances when callers share the bundle.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

from repro.cache.store import Codec, ResultCache
from repro.judge.llmj import JudgeResult
from repro.runtime.executor import ExecutionResult

_EXECUTION_CODEC = Codec(
    encode=lambda result: asdict(result),
    decode=lambda data: ExecutionResult(**data),
)

_JUDGE_CODEC = Codec(
    encode=lambda result: result.to_json(),
    decode=JudgeResult.from_json,
)


class PipelineCache:
    """Shared content-addressed caches for compile/execute/judge work."""

    def __init__(self, max_entries: int = 65536, cache_dir: str | Path | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.compile = ResultCache("compile", max_entries)
        self.execute = ResultCache("execute", max_entries, codec=_EXECUTION_CODEC)
        self.judge = ResultCache("judge", max_entries, codec=_JUDGE_CODEC)

    @property
    def namespaces(self) -> list[ResultCache]:
        return [self.compile, self.execute, self.judge]

    # ------------------------------------------------------------------

    def load(self) -> int:
        """Warm persistent namespaces from ``cache_dir``; returns count."""
        if self.cache_dir is None:
            return 0
        return sum(ns.load_from(self.cache_dir) for ns in self.namespaces)

    def save(self) -> list[Path]:
        """Persist codec-backed namespaces to ``cache_dir``."""
        if self.cache_dir is None:
            return []
        paths = [ns.save_to(self.cache_dir) for ns in self.namespaces]
        return [path for path in paths if path is not None]

    def clear(self) -> None:
        for ns in self.namespaces:
            ns.clear()

    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(ns.hits for ns in self.namespaces)

    @property
    def misses(self) -> int:
        return sum(ns.misses for ns in self.namespaces)

    def summary(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "namespaces": {ns.name: ns.snapshot() for ns in self.namespaces},
        }
