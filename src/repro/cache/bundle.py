"""The pipeline-wide cache bundle.

:class:`PipelineCache` groups one :class:`ResultCache` per cacheable
stage kind:

* ``compile`` — memory-only (values carry live AST objects);
* ``execute`` — persistent (plain :class:`ExecutionResult` data);
* ``judge``  — persistent (:class:`JudgeResult` round-trips via JSON);
* ``fuzz``   — persistent (differential walk+closure outcomes, stored
  as plain JSON dicts by the fuzzing campaign engine).

One bundle is shared by every consumer of a run — corpus generation,
the validation pipeline's stages, the experiment runner's retroactive
judge pass — so repeated work de-duplicates across all of them, and
across :class:`Experiments` instances when callers share the bundle.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

from repro.cache.store import Codec, ResultCache
from repro.judge.llmj import JudgeResult
from repro.runtime.executor import ExecutionResult

_EXECUTION_CODEC = Codec(
    encode=lambda result: asdict(result),
    decode=lambda data: ExecutionResult(**data),
)

_JUDGE_CODEC = Codec(
    encode=lambda result: result.to_json(),
    decode=JudgeResult.from_json,
)

# fuzz values are stored pre-encoded (DifferentialOutcome.to_json dicts)
# so the bundle needs no import from repro.fuzz (which imports us)
_FUZZ_CODEC = Codec(encode=lambda value: value, decode=lambda value: value)


class PipelineCache:
    """Shared content-addressed caches for compile/execute/judge work."""

    def __init__(self, max_entries: int = 65536, cache_dir: str | Path | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.compile = ResultCache("compile", max_entries)
        self.execute = ResultCache("execute", max_entries, codec=_EXECUTION_CODEC)
        self.judge = ResultCache("judge", max_entries, codec=_JUDGE_CODEC)
        self.fuzz = ResultCache("fuzz", max_entries, codec=_FUZZ_CODEC)

    @property
    def namespaces(self) -> list[ResultCache]:
        return [self.compile, self.execute, self.judge, self.fuzz]

    # ------------------------------------------------------------------

    def load(self) -> int:
        """Warm persistent namespaces from ``cache_dir``; returns count."""
        if self.cache_dir is None:
            return 0
        return sum(ns.load_from(self.cache_dir) for ns in self.namespaces)

    def save(self) -> list[Path]:
        """Persist codec-backed namespaces to ``cache_dir``."""
        if self.cache_dir is None:
            return []
        paths = [ns.save_to(self.cache_dir) for ns in self.namespaces]
        return [path for path in paths if path is not None]

    def clear(self) -> None:
        for ns in self.namespaces:
            ns.clear()

    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(ns.hits for ns in self.namespaces)

    @property
    def misses(self) -> int:
        return sum(ns.misses for ns in self.namespaces)

    def summary(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "namespaces": {ns.name: ns.snapshot() for ns in self.namespaces},
        }


#: Every namespace a :class:`PipelineCache` persists or holds in memory.
NAMESPACE_NAMES = ("compile", "execute", "judge", "fuzz")


def disk_summary(directory: str | Path) -> dict[str, dict[str, object] | None]:
    """Per-namespace on-disk counters for a ``--cache-dir`` directory.

    The operational counterpart of :meth:`PipelineCache.summary`:
    entries/bytes/corruption per namespace *without* decoding values
    into memory (``None`` marks a namespace with no persisted file —
    the memory-only compile cache always reads as ``None``).
    """
    return {
        name: ResultCache.disk_snapshot(directory, name)
        for name in NAMESPACE_NAMES
    }


def purge_dir(directory: str | Path, namespace: str | None = None) -> list[str]:
    """Remove persisted cache files; returns the namespaces purged.

    ``namespace=None`` purges every namespace.  Deletions take each
    namespace's writer lock (the flock protocol shards use), so a purge
    concurrent with a saving shard removes either the old file or the
    new one — never leaves a torn mix.
    """
    if namespace is not None and namespace not in NAMESPACE_NAMES:
        raise ValueError(
            f"unknown namespace {namespace!r} (have {list(NAMESPACE_NAMES)})"
        )
    names = NAMESPACE_NAMES if namespace is None else (namespace,)
    return [
        name for name in names if ResultCache.purge_namespace(directory, name)
    ]
