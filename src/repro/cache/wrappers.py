"""Caching wrappers around the stage workhorses.

Each wrapper exposes the same call surface as the object it wraps
(``compile`` / ``run`` / ``judge``) so stages, the corpus generator and
the experiment runner can use either interchangeably.  The wrapped
computation only runs on a cache miss; because every workhorse here is
a pure function of its content-addressed inputs (seeded model, seeded
environment, deterministic interpreter), a hit is observationally
identical to a recompute.
"""

from __future__ import annotations

from repro.cache.keys import compile_key, execute_key, judge_key
from repro.cache.store import ResultCache
from repro.compiler.driver import Compiler, CompileResult
from repro.corpus.generator import TestFile
from repro.judge.agent import ToolReport
from repro.judge.llmj import AgentLLMJ, DirectLLMJ, JudgeResult
from repro.runtime.executor import ExecutionResult, Executor


class CachingCompiler:
    """Content-addressed cache in front of :class:`Compiler`.

    Values carry live AST objects (the execute stage consumes
    ``CompileResult.unit``), so this namespace is memory-only.

    The closure execution backend memoizes its lowered program on the
    unit object itself (``repro.runtime.compilebody.lower_unit``), so a
    compile-cache hit also carries the lowered closures: repeated
    executions of one unit — worker scaling, ablations, Part-Two
    re-judging — skip both parsing *and* lowering.
    """

    def __init__(self, inner: Compiler, cache: ResultCache):
        self.inner = inner
        self.cache = cache

    @property
    def model(self) -> str:
        return self.inner.model

    def compile(self, source: str, filename: str = "<input>") -> CompileResult:
        key = compile_key(self.inner.fingerprint(), filename, source)
        return self.cache.get_or_compute(key, lambda: self.inner.compile(source, filename))


class CachingExecutor:
    """Content-addressed cache in front of :class:`Executor`.

    Keyed on the compile result's content key (which pins toolchain,
    filename and source) plus the step limit; results are plain data,
    so this namespace persists to disk.  Results without a content key
    (hand-built in tests) execute uncached.

    The execution *backend* is deliberately NOT part of the key: the
    walk and closure backends are observationally identical (asserted
    corpus-wide by ``tests/test_backend_equivalence.py``), so results
    computed under either warm-start the other.
    """

    def __init__(self, inner: Executor, cache: ResultCache):
        self.inner = inner
        self.cache = cache

    def run(self, compiled: CompileResult) -> ExecutionResult:
        if not compiled.content_key:
            return self.inner.run(compiled)
        key = execute_key(compiled.content_key, self.inner.step_limit)
        return self.cache.get_or_compute(key, lambda: self.inner.run(compiled))


def _report_parts(report: ToolReport) -> list:
    return [
        report.compile_rc,
        report.compile_stderr,
        report.compile_stdout,
        report.run_rc,
        report.run_stderr,
        report.run_stdout,
        list(report.diagnostic_codes),
    ]


class CachingAgentJudge:
    """Content-addressed cache in front of :class:`AgentLLMJ`.

    The key covers everything the prompt is built from (source, tool
    observables) plus the judge/model fingerprint, so a hit skips
    prompt construction and generation entirely.
    """

    def __init__(self, inner: AgentLLMJ, cache: ResultCache):
        self.inner = inner
        self.cache = cache

    @property
    def mode(self) -> str:
        return self.inner.mode

    def judge(self, test: TestFile, report: ToolReport | None = None) -> JudgeResult:
        if report is None:
            report = self.inner.tools.collect(test)
        key = judge_key(
            self.inner.fingerprint(), test.name, test.source, _report_parts(report)
        )
        return self.cache.get_or_compute(key, lambda: self.inner.judge(test, report))


class CachingDirectJudge:
    """Content-addressed cache in front of :class:`DirectLLMJ`."""

    def __init__(self, inner: DirectLLMJ, cache: ResultCache):
        self.inner = inner
        self.cache = cache

    @property
    def mode(self) -> str:
        return self.inner.mode

    def judge(self, test: TestFile) -> JudgeResult:
        key = judge_key(self.inner.fingerprint(), test.name, test.source, None)
        return self.cache.get_or_compute(key, lambda: self.inner.judge(test))
