"""Content-addressed cache keys.

Every cache entry is addressed by the SHA-256 of *what produced it*:
the stage's configuration fingerprint plus the full input content
(source text, tool observables).  Two runs that would compute the same
artifact therefore hash to the same key, regardless of process, thread,
or :class:`Experiments` instance — the property the warm-run benchmarks
rely on.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

_SEPARATOR = "\x1f"  # unit separator: cannot appear in JSON text


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest of an ordered tuple of key parts.

    Parts are canonicalised through JSON (sorted keys, no whitespace)
    so dicts, tuples/lists, numbers and strings all hash stably across
    processes — unlike :func:`hash`, which is salted per interpreter.
    Unsupported part types raise ``TypeError``: a silent fallback (e.g.
    ``default=str`` rendering ``object at 0x...``) would make keys
    per-process, which shows up only as a mysteriously cold cache.
    """
    hasher = hashlib.sha256()
    for part in parts:
        encoded = json.dumps(part, sort_keys=True, separators=(",", ":"))
        hasher.update(encoded.encode("utf-8"))
        hasher.update(_SEPARATOR.encode("utf-8"))
    return hasher.hexdigest()


def compile_key(fingerprint: str, filename: str, source: str) -> str:
    """Key for one compiler invocation."""
    return content_key("compile", fingerprint, filename, source)


def execute_key(compile_content_key: str, step_limit: int) -> str:
    """Key for one execution of a successfully compiled unit.

    The compiled AST is fully determined by the compile inputs, so the
    compile content key plus the executor's step limit addresses the
    run outcome.
    """
    return content_key("execute", compile_content_key, step_limit)


def judge_key(fingerprint: str, test_name: str, source: str, report_parts: Any) -> str:
    """Key for one judge verdict (direct or agent-based)."""
    return content_key("judge", fingerprint, test_name, source, report_parts)
