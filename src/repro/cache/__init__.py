"""Content-addressed result caching for the validation pipeline.

Layering (see ``ARCHITECTURE.md``):

* :mod:`repro.cache.keys` — SHA-256 content keys over source + stage
  configuration fingerprints;
* :mod:`repro.cache.store` — thread-safe LRU :class:`ResultCache` with
  optional JSON disk persistence per namespace;
* :mod:`repro.cache.wrappers` — drop-in caching fronts for
  ``Compiler`` / ``Executor`` / the LLM judges;
* :mod:`repro.cache.bundle` — :class:`PipelineCache`, the per-run
  bundle shared by generation, pipeline stages and experiments.

Only ``keys`` and ``store`` are imported eagerly: the compiler driver
imports ``repro.cache.keys`` at module load, so this package root must
not (transitively) import the driver back.
"""

from __future__ import annotations

from repro.cache.keys import compile_key, content_key, execute_key, judge_key
from repro.cache.store import Codec, ResultCache

_LAZY = {
    "PipelineCache": ("repro.cache.bundle", "PipelineCache"),
    "CachingCompiler": ("repro.cache.wrappers", "CachingCompiler"),
    "CachingExecutor": ("repro.cache.wrappers", "CachingExecutor"),
    "CachingAgentJudge": ("repro.cache.wrappers", "CachingAgentJudge"),
    "CachingDirectJudge": ("repro.cache.wrappers", "CachingDirectJudge"),
}

__all__ = [
    "Codec",
    "ResultCache",
    "content_key",
    "compile_key",
    "execute_key",
    "judge_key",
    *_LAZY,
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
