"""A deterministic tokenizer for prompt/response accounting.

Real LLM serving is budgeted in tokens; the simulator needs the same
accounting for its cost model (pipeline throughput, prompt-size
statistics).  The tokenizer is a BPE-shaped approximation: words split
into sub-word chunks of at most ``max_piece`` characters, punctuation
and whitespace runs tokenized separately.  It is stable across runs and
close to the ~3.5 chars/token ratio code models exhibit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[A-Za-z_]+|\d+|\s+|[^\w\s]")


@dataclass(frozen=True)
class SimTokenizer:
    """Deterministic sub-word tokenizer."""

    max_piece: int = 6

    def tokenize(self, text: str) -> list[str]:
        pieces: list[str] = []
        for match in _TOKEN_RE.finditer(text):
            chunk = match.group(0)
            if chunk.isspace():
                # whitespace folds into a single token per run
                pieces.append(" ")
                continue
            for i in range(0, len(chunk), self.max_piece):
                pieces.append(chunk[i : i + self.max_piece])
        return pieces

    def count(self, text: str) -> int:
        return len(self.tokenize(text))

    def truncate(self, text: str, max_tokens: int) -> str:
        """Keep at most ``max_tokens`` tokens (context-window model)."""
        pieces = []
        total = 0
        for match in _TOKEN_RE.finditer(text):
            chunk = match.group(0)
            n = 1 if chunk.isspace() else (len(chunk) + self.max_piece - 1) // self.max_piece
            if total + n > max_tokens:
                break
            total += n
            pieces.append(chunk)
        return "".join(pieces)
