"""The simulated model's shallow code reading.

This is *not* the compiler front-end: it is the regex/heuristic-level
pattern matching a language model performs when it "reads" code.  It is
deliberately approximate — declarations are recognized by surface
syntax, brace counting ignores strings, undeclared-variable hunting
misses aliases — because those imperfections are exactly what the
capability profile's detection probabilities then gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.llm.knowledge import DirectiveKnowledge

_C_KEYWORDS = frozenset(
    """if else for while do return break continue int double float char void
    long short unsigned signed const static sizeof struct switch case default
    include define pragma main printf fprintf malloc calloc free memset memcpy
    fabs sqrt pow exp abs true false bool NULL stdio stdlib math openacc omp
    stdout stderr""".split()
)

_DIRECTIVE_LINE_RE = re.compile(r"^\s*#pragma\s+(acc|omp)\b(.*)$", re.MULTILINE)
_FORTRAN_DIRECTIVE_RE = re.compile(r"^\s*!\$(acc|omp)\b(.*)$", re.MULTILINE | re.IGNORECASE)
_DECL_RE = re.compile(
    r"\b(?:int|double|float|char|long|short|unsigned|size_t|bool)\b[\s\*]+"
    r"([A-Za-z_]\w*(?:\s*,\s*\*?\s*[A-Za-z_]\w*)*)"
)
_FORTRAN_DECL_RE = re.compile(
    r"::\s*(.+)$", re.MULTILINE
)
_IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)\b")
_WORD_RE = re.compile(r"[A-Za-z_]\w*")


@dataclass
class CodeSignals:
    """What the simulated model noticed while reading the code."""

    language: str = "c"
    line_count: int = 0
    has_directives: bool = False
    directive_flavors: set[str] = field(default_factory=set)
    directive_lines: list[str] = field(default_factory=list)
    suspicious_directive_words: list[str] = field(default_factory=list)
    brace_imbalance: int = 0
    undeclared_candidates: list[str] = field(default_factory=list)
    unallocated_pointers: list[str] = field(default_factory=list)
    has_main: bool = False
    has_check_logic: bool = False
    has_failure_path: bool = False
    has_memory_alloc: bool = False

    @property
    def looks_unbalanced(self) -> bool:
        return self.brace_imbalance != 0

    @property
    def is_simple(self) -> bool:
        """Short code without a failure path draws fewer hallucinations."""
        return not self.has_failure_path or self.line_count < 25

    def summary(self) -> dict[str, object]:
        return {
            "directives": sorted(self.directive_flavors),
            "directive_count": len(self.directive_lines),
            "suspicious_words": list(self.suspicious_directive_words),
            "brace_imbalance": self.brace_imbalance,
            "undeclared": list(self.undeclared_candidates),
            "unallocated_pointers": list(self.unallocated_pointers),
            "check_logic": self.has_check_logic,
            "failure_path": self.has_failure_path,
        }


class ShallowAnalyzer:
    """Extracts :class:`CodeSignals` from raw source text."""

    def __init__(self, knowledge: DirectiveKnowledge | None = None):
        self.knowledge = knowledge or DirectiveKnowledge()

    def analyze(self, source: str, language: str | None = None) -> CodeSignals:
        if language is None:
            language = "f90" if _looks_like_fortran(source) else "c"
        if language == "f90":
            return self._analyze_fortran(source)
        return self._analyze_c(source)

    # ------------------------------------------------------------------

    def _analyze_c(self, source: str) -> CodeSignals:
        signals = CodeSignals(language="c", line_count=source.count("\n") + 1)
        stripped = _strip_strings_and_comments(source)

        for match in _DIRECTIVE_LINE_RE.finditer(source):
            signals.has_directives = True
            signals.directive_flavors.add(match.group(1))
            line = match.group(0).strip()
            signals.directive_lines.append(line)
            # clause arguments are variable names, not vocabulary: only the
            # words outside parentheses are directive/clause spellings
            words = _WORD_RE.findall(_strip_parenthesized(match.group(2)))
            signals.suspicious_directive_words.extend(self.knowledge.suspicious_words(words))

        # runtime-API usage counts as model usage: a reader recognizes
        # acc_init()/omp_get_num_threads() as OpenACC/OpenMP code even
        # with no pragma in sight
        if re.search(r"\bacc_\w+\s*\(", source):
            signals.has_directives = True
            signals.directive_flavors.add("acc")
        if re.search(r"\bomp_\w+\s*\(", source):
            signals.has_directives = True
            signals.directive_flavors.add("omp")

        signals.brace_imbalance = stripped.count("{") - stripped.count("}")
        signals.has_main = re.search(r"\bmain\s*\(", source) is not None
        signals.has_memory_alloc = "malloc" in source or "calloc" in source
        signals.has_failure_path = (
            re.search(r"return\s+[1-9]", source) is not None
            or "exit(1)" in source.replace(" ", "")
            or "EXIT_FAILURE" in source
        )
        signals.has_check_logic = signals.has_failure_path and (
            re.search(r"\bif\s*\(", source) is not None
            and re.search(r"(!=|==|>|<|fabs)", source) is not None
        )

        declared = self._collect_declared_c(source)
        # identifier scan over code only — preprocessor/pragma lines are
        # vocabulary, not uses
        code_only = re.sub(r"^\s*#.*$", "", stripped, flags=re.MULTILINE)
        used = set(_IDENT_RE.findall(code_only))
        candidates = sorted(
            name
            for name in used - declared
            if name not in _C_KEYWORDS
            and not name.startswith(("acc_", "omp_", "__"))
            and len(name) > 2
            and not name.isupper()  # macros look declared to a reader
        )
        signals.undeclared_candidates = candidates[:8]

        # pointers declared but never assigned an allocation
        for match in re.finditer(r"\b(?:int|double|float|char|long)\s*\*\s*([A-Za-z_]\w*)\s*;", source):
            name = match.group(1)
            if not re.search(rf"\b{name}\s*=", source):
                signals.unallocated_pointers.append(name)
        return signals

    def _collect_declared_c(self, source: str) -> set[str]:
        declared: set[str] = set()
        for match in _DECL_RE.finditer(source):
            for part in match.group(1).split(","):
                name = part.strip().lstrip("*").strip()
                word = _WORD_RE.match(name)
                if word:
                    declared.add(word.group(0))
        for match in re.finditer(r"#define\s+(\w+)", source):
            declared.add(match.group(1))
        for match in re.finditer(r"\bfor\s*\(\s*(?:int|long)?\s*([A-Za-z_]\w*)\s*=", source):
            declared.add(match.group(1))
        for match in re.finditer(r"\b(\w+)\s*\(", source):
            declared.add(match.group(1))  # function names (and calls)
        return declared

    # ------------------------------------------------------------------

    def _analyze_fortran(self, source: str) -> CodeSignals:
        signals = CodeSignals(language="f90", line_count=source.count("\n") + 1)
        for match in _FORTRAN_DIRECTIVE_RE.finditer(source):
            signals.has_directives = True
            signals.directive_flavors.add(match.group(1).lower())
            signals.directive_lines.append(match.group(0).strip())
            words = _WORD_RE.findall(_strip_parenthesized(match.group(2)))
            signals.suspicious_directive_words.extend(self.knowledge.suspicious_words(words))
        opens = len(re.findall(r"^\s*do\s+\w+\s*=", source, re.MULTILINE | re.IGNORECASE))
        closes = len(re.findall(r"^\s*end\s*do\b", source, re.MULTILINE | re.IGNORECASE))
        if_opens = len(re.findall(r"^\s*if\s*\(.*\)\s*then\s*$", source, re.MULTILINE | re.IGNORECASE))
        if_closes = len(re.findall(r"^\s*end\s*if\b", source, re.MULTILINE | re.IGNORECASE))
        signals.brace_imbalance = (opens - closes) + (if_opens - if_closes)
        signals.has_main = re.search(r"^\s*program\b", source, re.MULTILINE | re.IGNORECASE) is not None
        signals.has_failure_path = re.search(r"\bstop\s+[1-9]", source, re.IGNORECASE) is not None
        signals.has_check_logic = signals.has_failure_path and "if" in source.lower()

        declared: set[str] = set()
        for match in _FORTRAN_DECL_RE.finditer(source):
            for part in match.group(1).split(","):
                word = _WORD_RE.match(part.strip())
                if word:
                    declared.add(word.group(0).lower())
        for match in re.finditer(r"^\s*(?:program|subroutine|function)\s+(\w+)", source, re.MULTILINE | re.IGNORECASE):
            declared.add(match.group(1).lower())
        body = re.sub(r"!.*$", "", source, flags=re.MULTILINE)
        body = re.sub(r'"[^"]*"|\'[^\']*\'', "", body)  # strings are not identifiers
        used = {w.lower() for w in _IDENT_RE.findall(body)}
        fortran_keywords = {
            "program", "end", "implicit", "none", "integer", "real", "logical",
            "do", "if", "then", "else", "print", "stop", "abs", "sqrt", "max",
            "min", "mod", "and", "or", "not", "exit", "cycle", "call", "use",
            "parameter", "double", "precision",
        }
        candidates = sorted(used - declared - fortran_keywords)
        signals.undeclared_candidates = [c for c in candidates if len(c) > 2][:8]
        return signals


def _strip_parenthesized(text: str) -> str:
    """Drop parenthesized clause arguments, keeping clause names."""
    out: list[str] = []
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def _looks_like_fortran(source: str) -> bool:
    return bool(re.search(r"^\s*(program|subroutine|module)\b", source, re.MULTILINE | re.IGNORECASE))


def _strip_strings_and_comments(source: str) -> str:
    """Remove string literals and comments before brace counting."""
    out: list[str] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == '"' or ch == "'":
            quote = ch
            i += 1
            while i < n and source[i] != quote:
                i += 2 if source[i] == "\\" else 1
            i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            i += 2
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                i += 1
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)
