"""The simulated model's (imperfect) knowledge of OpenACC and OpenMP.

A 33B code model knows the common directive vocabulary well and the
long tail imperfectly.  This module holds the vocabulary the simulator
"remembers" and an edit-distance matcher it uses to decide whether a
directive word *looks* misspelled — the shallow, pattern-matching kind
of check an LLM performs, as opposed to the exact table lookup the real
front-end performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Directive words the model knows confidently (high-frequency in
#: training corpora).
WELL_KNOWN_WORDS = frozenset(
    {
        "parallel", "for", "loop", "kernels", "data", "target", "teams",
        "distribute", "simd", "atomic", "barrier", "critical", "single",
        "master", "sections", "section", "task", "reduction", "private",
        "shared", "copyin", "copyout", "copy", "create", "map", "update",
        "enter", "exit", "wait", "async", "collapse", "schedule",
        "firstprivate", "lastprivate", "num_threads", "device", "present",
        "gang", "worker", "vector", "seq", "independent", "serial",
        "num_gangs", "num_workers", "vector_length", "if", "default",
        "taskwait", "flush", "ordered", "taskloop", "declare", "routine",
        "host_data", "use_device", "threadprivate", "nowait", "to", "from",
        "tofrom", "alloc", "delete", "self", "host",
    }
)

#: Words the model half-remembers — it will not reliably flag typos here.
SHAKY_WORDS = frozenset(
    {
        "deviceptr", "attach", "detach", "no_create", "if_present",
        "finalize", "device_resident", "link", "defaultmap", "is_device_ptr",
        "use_device_ptr", "proc_bind", "dist_schedule", "grainsize",
        "num_tasks", "safelen", "simdlen", "aligned", "linear", "cache",
        "tile", "device_type", "bind", "nohost", "copyprivate", "hint",
    }
)

KNOWN_WORDS = WELL_KNOWN_WORDS | SHAKY_WORDS


def edit_distance(a: str, b: str, cap: int = 3) -> int:
    """Levenshtein distance with an early-exit cap."""
    if a == b:
        return 0
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            val = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
            cur.append(val)
            best = min(best, val)
        if best > cap:
            return cap + 1
        prev = cur
    return prev[-1]


@dataclass
class DirectiveKnowledge:
    """Misspelling detection the way a language model does it."""

    well_known: frozenset[str] = field(default=WELL_KNOWN_WORDS)
    shaky: frozenset[str] = field(default=SHAKY_WORDS)

    def classify_word(self, word: str) -> str:
        """'known' | 'shaky' | 'typo-of-known' | 'unknown'."""
        low = word.lower()
        if low in self.well_known:
            return "known"
        if low in self.shaky:
            return "shaky"
        # looks like a typo of a well-known word?
        for known in self.well_known:
            if abs(len(known) - len(low)) <= 2 and edit_distance(low, known, cap=2) <= 2:
                return "typo-of-known"
        return "unknown"

    def suspicious_words(self, directive_words: list[str]) -> list[str]:
        """Words in a directive line the model would find suspect."""
        return [
            w
            for w in directive_words
            if self.classify_word(w) in ("typo-of-known", "unknown")
        ]
