"""Simulated code LLM (deepseek-coder-33B-instruct stand-in).

The paper's judge is a 33-billion-parameter model running on A100s;
this package substitutes a deterministic-seeded simulator that
preserves everything the experiments measure:

* it consumes the *same prompts* (Listings 1-4) and emits step-by-step
  rationale text terminated by the required ``FINAL JUDGEMENT:`` token
  (with a small malformed-response rate, like a real LLM);
* its judgment is produced by genuinely analyzing the code in the
  prompt with a *noisy, shallow* static analyzer
  (:mod:`repro.llm.analysis`) — regex/heuristic-level reasoning, not
  the real front-end — gated by per-signal detection probabilities
  (:mod:`repro.llm.profiles`) calibrated once against the paper's
  published accuracy tables;
* when the prompt carries tool outputs (agent mode), the simulator
  reads the compiler/runtime sections and weighs them with
  per-diagnostic-category trust factors, reproducing the paper's
  finding that agent prompts drastically improve the judge.

Nothing downstream of the model object (prompt construction, response
parsing, metrics, pipeline) knows it is synthetic.
"""

from repro.llm.model import DeepSeekCoderSim, GenerationStats
from repro.llm.profiles import CapabilityProfile, profile_for
from repro.llm.tokenizer import SimTokenizer

__all__ = [
    "DeepSeekCoderSim",
    "GenerationStats",
    "CapabilityProfile",
    "profile_for",
    "SimTokenizer",
]
