"""Capability profiles for the simulated judge.

A profile holds the per-signal detection probabilities and the
per-diagnostic-category trust factors that gate the simulator's noisy
analysis.  The constants below were calibrated **once** against the
paper's published tables (I, II, VII, VIII) and then frozen — see
DESIGN.md §5.  Experiments *measure* the end-to-end system; they do not
read these tables back.

Naming:

* ``detect_*`` — probability the judge notices a code-level signal its
  shallow analyzer surfaced (direct mode has no other evidence);
* ``trust_*`` — probability the judge acts on a tool observation in its
  prompt (agent modes only);
* ``false_alarm`` — probability of hallucinating a defect in
  directive-bearing code when nothing was noticed;
  ``false_alarm_simple_factor`` scales it down for short code without
  self-check logic (less surface to complain about).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Prompting modes.
DIRECT = "direct"
AGENT_DIRECT = "agent-direct"
AGENT_INDIRECT = "agent-indirect"

MODES = (DIRECT, AGENT_DIRECT, AGENT_INDIRECT)


@dataclass(frozen=True)
class CapabilityProfile:
    """Detection/trust probabilities for one (model flavor, mode) pair."""

    flavor: str  # 'acc' | 'omp'
    mode: str  # one of MODES

    # -- code-level signal detection ------------------------------------
    detect_misspelled_directive: float = 0.1
    detect_unbalanced_brackets: float = 0.1
    detect_undeclared_variable: float = 0.1
    detect_missing_allocation: float = 0.1
    detect_no_directives: float = 0.5
    detect_missing_check_logic: float = 0.1

    # -- tool-output trust (agent modes) ---------------------------------
    trust_directive_error: float = 0.0
    trust_syntax_error: float = 0.0
    trust_semantic_error: float = 0.0
    trust_runtime_fault: float = 0.0
    trust_nonzero_exit: float = 0.0
    #: Toolchain-limitation failures ("internal error: unsupported
    #: feature combination") are environment problems, not test
    #: problems — the judge mostly (correctly) shrugs them off.
    trust_environment_error: float = 0.08

    # -- hallucination ----------------------------------------------------
    false_alarm: float = 0.1
    false_alarm_simple_factor: float = 0.6

    # -- response behaviour -----------------------------------------------
    malformed_response_rate: float = 0.02

    @property
    def uses_tools(self) -> bool:
        return self.mode in (AGENT_DIRECT, AGENT_INDIRECT)


_PROFILES: dict[tuple[str, str], CapabilityProfile] = {}


def _register(profile: CapabilityProfile) -> None:
    _PROFILES[(profile.flavor, profile.mode)] = profile


# ---------------------------------------------------------------------------
# Direct (tool-less) judging — calibrated to Tables I / II.
# The model barely notices syntax-level defects in OpenACC code, spots a
# total absence of OpenACC easily, and is permissive overall; on OpenMP
# it is better at syntax but blind to "no OpenMP here" and heavily
# hallucinates problems in valid directive code.
# ---------------------------------------------------------------------------

_register(
    CapabilityProfile(
        flavor="acc",
        mode=DIRECT,
        detect_misspelled_directive=0.06,
        detect_unbalanced_brackets=0.04,
        detect_undeclared_variable=0.06,
        detect_missing_allocation=0.05,
        detect_no_directives=0.78,
        detect_missing_check_logic=0.04,
        false_alarm=0.12,
        false_alarm_simple_factor=0.6,
    )
)

_register(
    CapabilityProfile(
        flavor="omp",
        mode=DIRECT,
        detect_misspelled_directive=0.02,
        detect_unbalanced_brackets=0.32,
        detect_undeclared_variable=0.10,
        detect_missing_allocation=0.05,
        detect_no_directives=0.04,
        detect_missing_check_logic=0.02,
        false_alarm=0.61,
        false_alarm_simple_factor=0.55,
    )
)

# ---------------------------------------------------------------------------
# Agent-based judging — calibrated to Tables VII / VIII.
# Tool outputs dominate: compile/runtime failures are mostly (not
# always!) trusted, hallucination collapses, and "is this even an
# OpenACC/OpenMP test?" becomes easy because the prompt frames the
# question against tool evidence.
# ---------------------------------------------------------------------------

_register(
    CapabilityProfile(
        flavor="acc",
        mode=AGENT_DIRECT,  # LLMJ 1
        detect_misspelled_directive=0.25,
        detect_unbalanced_brackets=0.15,
        detect_undeclared_variable=0.2,
        detect_missing_allocation=0.15,
        detect_no_directives=0.97,
        detect_missing_check_logic=0.10,
        trust_directive_error=0.67,
        trust_syntax_error=0.76,
        trust_semantic_error=0.85,
        trust_runtime_fault=0.72,
        trust_nonzero_exit=0.68,
        false_alarm=0.08,
        false_alarm_simple_factor=0.6,
    )
)

_register(
    CapabilityProfile(
        flavor="acc",
        mode=AGENT_INDIRECT,  # LLMJ 2
        detect_misspelled_directive=0.3,
        detect_unbalanced_brackets=0.12,
        detect_undeclared_variable=0.2,
        detect_missing_allocation=0.2,
        detect_no_directives=1.0,
        detect_missing_check_logic=0.16,
        trust_directive_error=0.82,
        trust_syntax_error=0.55,
        trust_semantic_error=0.83,
        trust_runtime_fault=0.80,
        trust_nonzero_exit=0.74,
        false_alarm=0.21,
        false_alarm_simple_factor=0.6,
    )
)

_register(
    CapabilityProfile(
        flavor="omp",
        mode=AGENT_DIRECT,  # LLMJ 1
        detect_misspelled_directive=0.1,
        detect_unbalanced_brackets=0.15,
        detect_undeclared_variable=0.15,
        detect_missing_allocation=0.1,
        detect_no_directives=0.65,
        detect_missing_check_logic=0.70,
        trust_directive_error=0.47,
        trust_syntax_error=0.57,
        trust_semantic_error=0.69,
        trust_runtime_fault=0.60,
        trust_nonzero_exit=0.55,
        false_alarm=0.07,
        false_alarm_simple_factor=0.6,
    )
)

_register(
    CapabilityProfile(
        flavor="omp",
        mode=AGENT_INDIRECT,  # LLMJ 2
        detect_misspelled_directive=0.1,
        detect_unbalanced_brackets=0.1,
        detect_undeclared_variable=0.12,
        detect_missing_allocation=0.1,
        detect_no_directives=0.85,
        detect_missing_check_logic=0.45,
        trust_directive_error=0.45,
        trust_syntax_error=0.46,
        trust_semantic_error=0.58,
        trust_runtime_fault=0.58,
        trust_nonzero_exit=0.52,
        false_alarm=0.04,
        false_alarm_simple_factor=0.6,
    )
)


def profile_for(flavor: str, mode: str) -> CapabilityProfile:
    """Look up the frozen calibration for one (flavor, mode)."""
    try:
        return _PROFILES[(flavor, mode)]
    except KeyError:
        raise ValueError(f"no capability profile for flavor={flavor!r} mode={mode!r}") from None


#: Diagnostic-code → trust-category mapping used by the decision engine.
DIAGNOSTIC_TRUST_CATEGORY = {
    # directive-level rejections
    "bad-directive": "directive",
    "unknown-clause": "directive",
    "clause-not-allowed": "directive",
    "clause-needs-arg": "directive",
    "bad-reduction": "directive",
    "bad-map": "directive",
    "bad-schedule": "directive",
    "bad-default": "directive",
    "bad-depend": "directive",
    "bad-proc-bind": "directive",
    "missing-clause": "directive",
    "clause-conflict": "directive",
    "unsupported-feature": "directive",
    "directive-needs-loop": "directive",
    "directive-needs-construct": "directive",
    "bad-clause-syntax": "directive",
    # plain syntax
    "syntax": "syntax",
    "unbalanced-brace": "syntax",
    "unbalanced-block": "syntax",
    "expected-declaration": "syntax",
    "unterminated-comment": "syntax",
    "unterminated-literal": "syntax",
    "stray-character": "syntax",
    "pp-mismatch": "syntax",
    "pp-include": "syntax",
    "pp-define": "syntax",
    "pp-error": "syntax",
    "missing-header": "syntax",
    "late-declaration": "syntax",
    # semantic
    "undeclared": "semantic",
    "undeclared-function": "semantic",
    "no-main": "semantic",
    "redeclaration": "semantic",
    # environment / toolchain limitations (injected by EnvironmentModel)
    "toolchain-limitation": "environment",
}


def trust_for_codes(profile: CapabilityProfile, codes: list[str]) -> float:
    """The trust the judge places in a failing compile, given its codes.

    The judge reads the whole stderr; the *most convincing* category
    drives its confidence (semantic > syntax > directive ordering is
    not assumed — we take the max of the per-category trusts present).
    """
    trusts = []
    for code in codes:
        category = DIAGNOSTIC_TRUST_CATEGORY.get(code)
        if category == "directive":
            trusts.append(profile.trust_directive_error)
        elif category == "syntax":
            trusts.append(profile.trust_syntax_error)
        elif category == "semantic":
            trusts.append(profile.trust_semantic_error)
        elif category == "environment":
            trusts.append(profile.trust_environment_error)
    if not trusts:
        return profile.trust_syntax_error
    return max(trusts)
