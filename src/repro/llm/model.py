"""``DeepSeekCoderSim`` — the simulated deepseek-coder-33B-instruct.

The public surface mimics an instruction-tuned chat model: you hand it
a prompt string, it returns a completion string.  Internally it

1. parses the prompt's structure (task framing, embedded code, optional
   tool-output sections, required judgment vocabulary);
2. reads the code with the shallow analyzer;
3. samples a verdict from the capability profile (seeded per prompt, so
   identical prompts yield identical completions — greedy-decoding
   semantics);
4. renders a step-by-step rationale ending in the required
   ``FINAL JUDGEMENT:`` phrase, with a small malformed-response rate.

Generation statistics (token counts, simulated wall time at a
33B-on-A100 service rate) are accumulated on the instance for the
pipeline's cost model.
"""

from __future__ import annotations

import hashlib
import random
import re
import threading
from dataclasses import dataclass, field

from repro.llm.analysis import CodeSignals, ShallowAnalyzer
from repro.llm.profiles import (
    AGENT_DIRECT,
    AGENT_INDIRECT,
    DIRECT,
    CapabilityProfile,
    profile_for,
    trust_for_codes,
)
from repro.llm.tokenizer import SimTokenizer

#: Service-rate model: prompt ingestion and token generation speeds of a
#: 33B model on one A100 (order-of-magnitude figures; only relative cost
#: matters to the pipeline benches).
PROMPT_TOKENS_PER_SECOND = 2400.0
COMPLETION_TOKENS_PER_SECOND = 34.0


def simulated_call_seconds(prompt_tokens: int, completion_tokens: int) -> float:
    """Service time of one call under the 33B-on-A100 rate model."""
    return (
        prompt_tokens / PROMPT_TOKENS_PER_SECOND
        + completion_tokens / COMPLETION_TOKENS_PER_SECOND
    )


@dataclass
class GenerationStats:
    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    simulated_seconds: float = 0.0
    malformed_responses: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record(self, prompt_tokens: int, completion_tokens: int, malformed: bool) -> None:
        with self._lock:
            self.calls += 1
            self.prompt_tokens += prompt_tokens
            self.completion_tokens += completion_tokens
            self.simulated_seconds += simulated_call_seconds(prompt_tokens, completion_tokens)
            if malformed:
                self.malformed_responses += 1


@dataclass
class _ParsedPrompt:
    code: str
    flavor: str | None  # 'acc' | 'omp' | None
    vocabulary: tuple[str, str]  # (positive, negative)
    mode: str
    compile_rc: int | None = None
    compile_stderr: str = ""
    run_rc: int | None = None
    run_stderr: str = ""
    run_stdout: str = ""


@dataclass
class _Decision:
    verdict: str  # 'valid' | 'invalid'
    reason: str
    evidence: str


class DeepSeekCoderSim:
    """Deterministic-seeded stand-in for deepseek-coder-33B-instruct.

    Parameters
    ----------
    seed:
        Global seed; completions are a pure function of (seed, prompt).
    max_context_tokens:
        Prompts longer than this are truncated head-first, like a real
        serving stack.
    """

    name = "deepseek-coder-33b-instruct (simulated)"

    def __init__(self, seed: int = 20240822, max_context_tokens: int = 16384):
        self.seed = seed
        self.max_context_tokens = max_context_tokens
        self.tokenizer = SimTokenizer()
        self.analyzer = ShallowAnalyzer()
        self.stats = GenerationStats()

    # ------------------------------------------------------------------

    def generate(self, prompt: str, attempt: int = 0) -> str:
        """One chat completion for ``prompt``."""
        prompt = self.tokenizer.truncate(prompt, self.max_context_tokens)
        rng = self._rng_for(prompt, attempt)
        parsed = self._parse_prompt(prompt)
        profile = profile_for(parsed.flavor or "acc", parsed.mode)
        signals = self.analyzer.analyze(parsed.code)
        decision = self._decide(parsed, signals, profile, rng)
        malformed = attempt == 0 and rng.random() < profile.malformed_response_rate
        response = self._render(parsed, signals, decision, rng, malformed)
        self.stats.record(
            self.tokenizer.count(prompt), self.tokenizer.count(response), malformed
        )
        return response

    # ------------------------------------------------------------------

    def _rng_for(self, prompt: str, attempt: int) -> random.Random:
        digest = hashlib.sha256(f"{self.seed}:{attempt}:{prompt}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # ------------------------------------------------------------------
    # prompt understanding
    # ------------------------------------------------------------------

    _CODE_MARKERS = (
        "Here is the code for you to analyze:",
        "Here is the code:",
        "Here is the code.",
    )

    def _parse_prompt(self, prompt: str) -> _ParsedPrompt:
        code = ""
        for marker in self._CODE_MARKERS:
            idx = prompt.rfind(marker)
            if idx >= 0:
                code = prompt[idx + len(marker):].strip()
                break
        else:
            # fall back: assume the largest brace-bearing tail is code
            idx = prompt.find("#include")
            if idx < 0:
                idx = max(prompt.find("#pragma"), 0)
            code = prompt[idx:].strip()

        if "FINAL JUDGEMENT: correct" in prompt:
            vocabulary = ("correct", "incorrect")
        else:
            vocabulary = ("valid", "invalid")

        flavor = None
        if re.search(r"\bOpenACC\b", prompt):
            flavor = "acc"
        if re.search(r"\bOpenMP\b", prompt):
            flavor = "omp" if flavor is None else flavor
        head = prompt[: len(prompt) - len(code)] if code else prompt
        if flavor is None:
            flavor = "acc" if "acc" in head else ("omp" if "omp" in head else None)

        has_tool_info = "Compiler return code:" in prompt
        if not has_tool_info:
            mode = DIRECT
        elif prompt.lstrip().lower().startswith("describe"):
            mode = AGENT_INDIRECT
        else:
            mode = AGENT_DIRECT

        parsed = _ParsedPrompt(code=code, flavor=flavor, vocabulary=vocabulary, mode=mode)
        if has_tool_info:
            parsed.compile_rc = _find_int(prompt, r"Compiler return code:\s*(-?\d+)")
            parsed.compile_stderr = _find_section(prompt, "Compiler STDERR:", ("Compiler STDOUT:",))
            parsed.run_rc = _find_int(prompt, r"(?<!Compiler )Return code:\s*(-?\d+)")
            parsed.run_stderr = _find_section(prompt, "STDERR:", ("STDOUT:", "Using this information",))
            parsed.run_stdout = _find_section(prompt, "STDOUT:", ("Using this information", "Here is the code"))
        return parsed

    # ------------------------------------------------------------------
    # judgment
    # ------------------------------------------------------------------

    def _decide(
        self,
        parsed: _ParsedPrompt,
        signals: CodeSignals,
        profile: CapabilityProfile,
        rng: random.Random,
    ) -> _Decision:
        flavor = parsed.flavor

        # 1. is this even a directive test for the requested model?
        flavor_present = (
            flavor in signals.directive_flavors if flavor else signals.has_directives
        )
        if not flavor_present:
            if rng.random() < profile.detect_no_directives:
                model_name = {"acc": "OpenACC", "omp": "OpenMP"}.get(flavor or "", "directive")
                return _Decision(
                    "invalid",
                    f"the code contains no {model_name} directives at all",
                    "no-directives",
                )

        # 2. tool evidence (agent modes)
        if profile.uses_tools:
            if parsed.compile_rc not in (None, 0):
                codes = _diag_codes(parsed.compile_stderr)
                if rng.random() < trust_for_codes(profile, codes):
                    return _Decision(
                        "invalid",
                        "the compiler rejected the code "
                        f"(return code {parsed.compile_rc})",
                        "compile-error",
                    )
            elif parsed.run_rc not in (None, 0):
                fault = parsed.run_rc in (124, 134, 136, 139)
                trust = profile.trust_runtime_fault if fault else profile.trust_nonzero_exit
                if rng.random() < trust:
                    return _Decision(
                        "invalid",
                        f"the program failed at run time (return code {parsed.run_rc})",
                        "runtime-error",
                    )

        # 3. code-level signals
        if signals.suspicious_directive_words and rng.random() < profile.detect_misspelled_directive:
            word = signals.suspicious_directive_words[0]
            return _Decision(
                "invalid", f"the directive word '{word}' is not a valid directive or clause",
                "misspelled-directive",
            )
        if signals.looks_unbalanced and rng.random() < profile.detect_unbalanced_brackets:
            return _Decision(
                "invalid", "the brackets in this file do not balance", "unbalanced",
            )
        if signals.undeclared_candidates and rng.random() < profile.detect_undeclared_variable:
            name = signals.undeclared_candidates[0]
            return _Decision(
                "invalid", f"the variable '{name}' is used but never declared", "undeclared",
            )
        if signals.unallocated_pointers and rng.random() < profile.detect_missing_allocation:
            name = signals.unallocated_pointers[0]
            return _Decision(
                "invalid", f"the pointer '{name}' is used without any allocation", "no-alloc",
            )
        if (
            signals.has_directives
            and not signals.has_check_logic
            and rng.random() < profile.detect_missing_check_logic
        ):
            return _Decision(
                "invalid",
                "the test performs a computation but never verifies its result",
                "missing-logic",
            )

        # 4. hallucination on directive-bearing code
        if signals.has_directives:
            rate = profile.false_alarm
            if signals.is_simple:
                rate *= profile.false_alarm_simple_factor
            if rng.random() < rate:
                return _Decision("invalid", self._hallucinate(signals, rng), "hallucination")

        return _Decision("valid", "the code satisfies all of the evaluation criteria", "clean")

    def _hallucinate(self, signals: CodeSignals, rng: random.Random) -> str:
        claims = [
            "the data clauses do not cover every array used inside the region",
            "the reduction is applied to a variable that is also written directly",
            "the loop iterations carry a dependence that the directive ignores",
            "the data movement between host and device is incomplete",
            "the directive is missing a required clause for this computation",
            "the comparison tolerance is not appropriate for this datatype",
        ]
        if signals.directive_lines:
            line = signals.directive_lines[0].strip()
            claims.append(f"the directive '{line[:60]}' is not appropriate for this computation")
        return rng.choice(claims)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    _CRITERIA_COMMENTS = {
        "acc": [
            ("Syntax", "the OpenACC directives and pragmas appear syntactically well-formed"),
            ("Directive Appropriateness", "the directives chosen match the parallel computation"),
            ("Clause Correctness", "the clauses follow the OpenACC specification"),
            ("Memory Management", "data movement between CPU and GPU is handled by the data clauses"),
            ("Compliance", "the code follows current OpenACC practice"),
            ("Logic", "the test compares a serial reference against the parallel result"),
        ],
        "omp": [
            ("Syntax", "the OpenMP directives and pragmas appear syntactically well-formed"),
            ("Directive Appropriateness", "the directives chosen match the parallel computation"),
            ("Clause Correctness", "the clauses follow the OpenMP specification"),
            ("Memory Management", "the map clauses describe the data movement"),
            ("Compliance", "the code follows current OpenMP practice"),
            ("Logic", "the test compares a serial reference against the parallel result"),
        ],
    }

    def _render(
        self,
        parsed: _ParsedPrompt,
        signals: CodeSignals,
        decision: _Decision,
        rng: random.Random,
        malformed: bool,
    ) -> str:
        positive, negative = parsed.vocabulary
        verdict_word = positive if decision.verdict == "valid" else negative
        lines: list[str] = []

        if parsed.mode == AGENT_INDIRECT:
            lines.append(self._describe_code(parsed, signals))
            lines.append("")

        flavor = parsed.flavor or ("omp" if "omp" in signals.directive_flavors else "acc")
        comments = self._CRITERIA_COMMENTS[flavor if flavor in ("acc", "omp") else "acc"]
        if parsed.mode != AGENT_INDIRECT:
            lines.append("Let me evaluate the code against each criterion step by step.")
            for title, ok_text in comments[: rng.randint(4, 6)]:
                if decision.verdict == "invalid" and title == "Syntax" and decision.evidence in (
                    "misspelled-directive", "unbalanced", "compile-error",
                ):
                    lines.append(f"{title}: there is a problem here — {decision.reason}.")
                else:
                    lines.append(f"{title}: {ok_text}.")
            lines.append("")

        if decision.verdict == "invalid":
            lines.append(
                f"Overall, I believe this is an {negative} test because {decision.reason}."
            )
        else:
            lines.append(
                f"Overall, the program initializes its data, performs the computation, "
                f"and verifies the result, so I believe this is a {positive} test."
            )

        phrase = f"FINAL JUDGEMENT: {verdict_word}"
        if malformed:
            # realistic failure modes: wrong casing, reworded phrase
            phrase = rng.choice(
                [
                    f"Final judgement: {verdict_word}",
                    f"FINAL JUDGMENT: {verdict_word}",
                    f"My final verdict is that the test is {verdict_word}.",
                ]
            )
        lines.append(phrase)
        return "\n".join(lines)

    def _describe_code(self, parsed: _ParsedPrompt, signals: CodeSignals) -> str:
        parts: list[str] = []
        model_name = {"acc": "OpenACC", "omp": "OpenMP"}.get(parsed.flavor or "", "directive-based")
        if signals.directive_lines:
            parts.append(
                f"This program is a {model_name} test containing "
                f"{len(signals.directive_lines)} directive(s)."
            )
            parts.append(
                "It initializes its input arrays, offloads a computation via "
                f"'{signals.directive_lines[0][:70]}', and then inspects the results."
            )
        elif signals.has_directives:
            parts.append(
                f"This program exercises the {model_name} runtime API rather "
                f"than directives."
            )
        else:
            parts.append(
                f"This program contains no {model_name} directives; it is plain serial code."
            )
        if parsed.compile_rc is not None:
            if parsed.compile_rc == 0:
                parts.append("The compiler accepted the code without errors.")
            else:
                first = parsed.compile_stderr.strip().splitlines()
                detail = first[0] if first else "an error"
                parts.append(f"The compiler rejected the code: {detail}")
        if parsed.run_rc is not None and parsed.compile_rc == 0:
            if parsed.run_rc == 0:
                parts.append("When run, the program exits successfully with return code 0.")
            else:
                parts.append(f"When run, the program fails with return code {parsed.run_rc}.")
        if signals.has_check_logic:
            parts.append(
                "The program computes a serial reference and compares it against the "
                "offloaded result, returning a nonzero code when they disagree."
            )
        else:
            parts.append("The program does not appear to verify its own results.")
        return " ".join(parts)


def _find_int(text: str, pattern: str) -> int | None:
    match = re.search(pattern, text)
    return int(match.group(1)) if match else None


def _find_section(text: str, start_marker: str, end_markers: tuple[str, ...]) -> str:
    idx = text.find(start_marker)
    if idx < 0:
        return ""
    start = idx + len(start_marker)
    end = len(text)
    for marker in end_markers:
        pos = text.find(marker, start)
        if 0 <= pos < end:
            end = pos
    return text[start:end].strip()


def _diag_codes(stderr: str) -> list[str]:
    """Diagnostic categories as a reader would extract them.

    Prefers the ``[-Wcode]`` tags our driver renders; falls back to
    message-text pattern matching for foreign stderr.
    """
    codes = re.findall(r"\[-W([\w-]+)\]", stderr)
    if codes:
        return codes
    out: list[str] = []
    if re.search(r"undeclared|undefined", stderr, re.IGNORECASE):
        out.append("undeclared")
    if re.search(r"expected|unterminated|stray", stderr, re.IGNORECASE):
        out.append("syntax")
    if re.search(r"directive|clause|pragma", stderr, re.IGNORECASE):
        out.append("bad-directive")
    return out
