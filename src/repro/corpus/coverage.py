"""Feature-coverage analysis of a test suite.

An extension beyond the paper's evaluation: given a suite (or a probed
population), report which specification features the corpus exercises,
per category, and which catalog features are uncovered.  The V&V
projects the paper builds on track exactly this kind of coverage
matrix for their manually-written suites.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.corpus.features import Feature, catalog
from repro.corpus.generator import TestFile


@dataclass
class CoverageReport:
    """Feature coverage of one collection of tests."""

    model: str
    tests_total: int
    feature_counts: Counter = field(default_factory=Counter)

    @property
    def covered(self) -> set[str]:
        return set(self.feature_counts)

    @property
    def uncovered(self) -> set[str]:
        return set(catalog(self.model)) - self.covered

    @property
    def coverage_fraction(self) -> float:
        total = len(catalog(self.model))
        return len(self.covered) / total if total else 0.0

    def by_category(self) -> dict[str, tuple[int, int]]:
        """category -> (covered, total) over the catalog."""
        cat = catalog(self.model)
        totals: Counter = Counter(f.category for f in cat.values())
        covered: Counter = Counter(
            cat[ident].category for ident in self.covered if ident in cat
        )
        return {name: (covered.get(name, 0), totals[name]) for name in sorted(totals)}

    def most_exercised(self, n: int = 5) -> list[tuple[str, int]]:
        return self.feature_counts.most_common(n)

    def render(self) -> str:
        lines = [
            f"Feature coverage ({self.model}): "
            f"{len(self.covered)}/{len(catalog(self.model))} features "
            f"({self.coverage_fraction:.0%}) across {self.tests_total} tests",
        ]
        for category, (covered, total) in self.by_category().items():
            lines.append(f"  {category:10s} {covered}/{total}")
        if self.uncovered:
            lines.append("  uncovered: " + ", ".join(sorted(self.uncovered)))
        return "\n".join(lines)


def measure_coverage(model: str, tests: list[TestFile]) -> CoverageReport:
    """Coverage of the catalog features by a list of tests."""
    report = CoverageReport(model=model, tests_total=len(tests))
    for test in tests:
        if test.model != model:
            continue
        for ident in test.features:
            if ident.startswith(f"{model}."):
                report.feature_counts[ident] += 1
    return report


def uncovered_features(model: str, tests: list[TestFile]) -> list[Feature]:
    """Catalog features no test exercises (generation gap analysis)."""
    report = measure_coverage(model, tests)
    cat = catalog(model)
    return [cat[ident] for ident in sorted(report.uncovered)]
