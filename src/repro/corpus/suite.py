"""Test-suite containers: grouping, splitting, persistence.

The paper's protocol splits the manually written suite in half at
random — one half is mutated (invalid), one half stays unchanged
(valid).  :meth:`TestSuite.split_half` implements that split with a
seeded RNG so experiments are reproducible.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.atomicio import atomic_write_text
from repro.corpus.generator import TestFile


@dataclass
class TestSuite:
    """An ordered collection of test files with metadata."""

    __test__ = False  # not a pytest test class despite the name

    name: str
    model: str
    files: list[TestFile] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self):
        return iter(self.files)

    def by_language(self, language: str) -> list[TestFile]:
        return [f for f in self.files if f.language == language]

    def by_issue(self, issue: int | None) -> list[TestFile]:
        return [f for f in self.files if f.issue == issue]

    def languages(self) -> list[str]:
        seen: list[str] = []
        for f in self.files:
            if f.language not in seen:
                seen.append(f.language)
        return seen

    # ------------------------------------------------------------------

    def split_half(self, seed: int = 0) -> tuple["TestSuite", "TestSuite"]:
        """Random half/half split (mutation candidates, unchanged)."""
        rng = random.Random(seed)
        shuffled = list(self.files)
        rng.shuffle(shuffled)
        mid = len(shuffled) // 2
        first = TestSuite(f"{self.name}-mutate", self.model, shuffled[:mid])
        second = TestSuite(f"{self.name}-unchanged", self.model, shuffled[mid:])
        return first, second

    # ------------------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Write sources plus a manifest.json into ``directory``."""
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        manifest = []
        for test in self.files:
            atomic_write_text(root / test.name, test.source)
            manifest.append(
                {
                    "name": test.name,
                    "language": test.language,
                    "model": test.model,
                    "template": test.template,
                    "features": list(test.features),
                    "issue": test.issue,
                }
            )
        # sources land before the manifest, and each write is atomic: a
        # kill mid-save leaves either a loadable older suite or files a
        # rewrite will simply replace — never a manifest naming sources
        # that are torn or missing
        atomic_write_text(
            root / "manifest.json",
            json.dumps({"name": self.name, "model": self.model, "files": manifest}, indent=2),
            fault_tag="suite-manifest",
        )
        return root

    @classmethod
    def load(cls, directory: str | Path) -> "TestSuite":
        root = Path(directory)
        data = json.loads((root / "manifest.json").read_text())
        files = [
            TestFile(
                name=entry["name"],
                language=entry["language"],
                model=entry["model"],
                source=(root / entry["name"]).read_text(),
                template=entry["template"],
                features=tuple(entry["features"]),
                issue=entry["issue"],
            )
            for entry in data["files"]
        ]
        return cls(name=data["name"], model=data["model"], files=files)
