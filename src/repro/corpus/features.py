"""Feature catalogs mirroring the OpenACC / OpenMP V&V suite coverage.

Each :class:`Feature` names one specification feature a test can
exercise.  The catalogs drive corpus generation (templates declare the
features they cover) and experiment reporting (per-feature accuracy
breakdowns, an extension beyond the paper's per-issue breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Feature:
    """One testable specification feature."""

    ident: str
    model: str  # 'acc' | 'omp'
    category: str  # 'compute' | 'data' | 'loop' | 'sync' | 'host' | 'api'
    description: str
    since: float = 1.0


OPENACC_FEATURES: dict[str, Feature] = {
    f.ident: f
    for f in [
        Feature("acc.parallel", "acc", "compute", "parallel construct offloads a region"),
        Feature("acc.kernels", "acc", "compute", "kernels construct auto-parallelizes a region"),
        Feature("acc.serial", "acc", "compute", "serial construct runs a region on one device thread"),
        Feature("acc.parallel-loop", "acc", "loop", "combined parallel loop construct"),
        Feature("acc.kernels-loop", "acc", "loop", "combined kernels loop construct"),
        Feature("acc.loop.gang", "acc", "loop", "gang-level loop scheduling"),
        Feature("acc.loop.worker", "acc", "loop", "worker-level loop scheduling"),
        Feature("acc.loop.vector", "acc", "loop", "vector-level loop scheduling"),
        Feature("acc.loop.seq", "acc", "loop", "sequential loop inside a compute region"),
        Feature("acc.loop.collapse", "acc", "loop", "collapse clause over nested loops"),
        Feature("acc.loop.independent", "acc", "loop", "independent clause assertion"),
        Feature("acc.reduction.add", "acc", "loop", "sum reduction"),
        Feature("acc.reduction.max", "acc", "loop", "max reduction"),
        Feature("acc.reduction.min", "acc", "loop", "min reduction"),
        Feature("acc.data.copy", "acc", "data", "structured data region with copy"),
        Feature("acc.data.copyin-copyout", "acc", "data", "copyin + copyout pairing"),
        Feature("acc.data.create", "acc", "data", "create clause device allocation"),
        Feature("acc.data.present", "acc", "data", "present clause on an enclosing mapping"),
        Feature("acc.enter-exit-data", "acc", "data", "unstructured enter/exit data"),
        Feature("acc.update", "acc", "data", "update host/device directive"),
        Feature("acc.private", "acc", "loop", "private clause on a loop"),
        Feature("acc.firstprivate", "acc", "compute", "firstprivate scalar capture"),
        Feature("acc.atomic", "acc", "sync", "atomic update"),
        Feature("acc.async-wait", "acc", "sync", "async clause with wait directive"),
        Feature("acc.if-clause", "acc", "compute", "if clause conditional offload"),
        Feature("acc.num-gangs", "acc", "compute", "num_gangs/num_workers/vector_length"),
        Feature("acc.api.device", "acc", "api", "device-query runtime API"),
        Feature("acc.api.memory", "acc", "api", "acc_copyin/acc_copyout runtime API"),
    ]
}

OPENMP_FEATURES: dict[str, Feature] = {
    f.ident: f
    for f in [
        Feature("omp.parallel", "omp", "host", "parallel region", 1.0),
        Feature("omp.parallel-for", "omp", "host", "parallel worksharing loop", 1.0),
        Feature("omp.for.schedule-static", "omp", "host", "static loop schedule", 1.0),
        Feature("omp.for.schedule-dynamic", "omp", "host", "dynamic loop schedule", 1.0),
        Feature("omp.sections", "omp", "host", "sections worksharing", 1.0),
        Feature("omp.single", "omp", "host", "single construct", 1.0),
        Feature("omp.master", "omp", "host", "master construct", 1.0),
        Feature("omp.critical", "omp", "sync", "critical section", 1.0),
        Feature("omp.atomic", "omp", "sync", "atomic update", 1.0),
        Feature("omp.barrier", "omp", "sync", "barrier synchronization", 1.0),
        Feature("omp.reduction.add", "omp", "host", "sum reduction", 1.0),
        Feature("omp.reduction.max", "omp", "host", "max reduction", 3.1),
        Feature("omp.private", "omp", "host", "private clause", 1.0),
        Feature("omp.firstprivate", "omp", "host", "firstprivate clause", 1.0),
        Feature("omp.lastprivate", "omp", "host", "lastprivate clause", 1.0),
        Feature("omp.simd", "omp", "host", "simd loop", 4.0),
        Feature("omp.task", "omp", "host", "explicit task", 3.0),
        Feature("omp.target", "omp", "device", "target offload region", 4.0),
        Feature("omp.target.map-tofrom", "omp", "device", "map(tofrom:) data movement", 4.0),
        Feature("omp.target.map-to-from", "omp", "device", "map(to:)+map(from:) pairing", 4.0),
        Feature("omp.target-data", "omp", "device", "structured target data region", 4.0),
        Feature("omp.target-update", "omp", "device", "target update to/from", 4.0),
        Feature("omp.target-enter-exit", "omp", "device", "unstructured target data", 4.5),
        Feature("omp.teams", "omp", "device", "teams construct", 4.0),
        Feature("omp.distribute", "omp", "device", "distribute worksharing", 4.0),
        Feature("omp.teams-distribute-parallel-for", "omp", "device",
                "combined target teams distribute parallel for", 4.0),
        Feature("omp.collapse", "omp", "device", "collapse clause", 3.0),
        Feature("omp.if-clause", "omp", "device", "if clause conditional offload", 4.0),
        Feature("omp.defaultmap", "omp", "device", "implicit scalar mapping", 4.5),
        Feature("omp.api.threads", "omp", "api", "thread-query runtime API", 1.0),
        Feature("omp.api.device", "omp", "api", "device-query runtime API", 4.0),
    ]
}


def catalog(model: str) -> dict[str, Feature]:
    """The feature catalog for a programming model."""
    if model == "acc":
        return OPENACC_FEATURES
    if model == "omp":
        return OPENMP_FEATURES
    raise ValueError(f"unknown model {model!r}")


def features_at_or_below(model: str, version: float) -> list[Feature]:
    """Features usable with a compiler supporting up to ``version``."""
    return [f for f in catalog(model).values() if f.since <= version]
