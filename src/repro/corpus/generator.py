"""Corpus generation: render templates into a validated test population.

:class:`CorpusGenerator` cycles the template registry with seeded
parameter jitter and (by default) *validates* every rendered file by
compiling and executing it — a generated "valid" test that does not
compile clean and exit 0 would poison the negative-probing ground
truth, so validation failures raise instead of being skipped silently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.compiler.driver import Compiler
from repro.corpus.templates import TemplateContext, TemplateSpec, templates_for
from repro.runtime.executor import Executor

EXTENSIONS = {"c": ".c", "cpp": ".cpp", "f90": ".f90"}


@dataclass(frozen=True)
class TestFile:
    """One test in the corpus (and, after probing, its mutants)."""

    __test__ = False  # not a pytest test class despite the name

    name: str
    language: str  # 'c' | 'cpp' | 'f90'
    model: str  # 'acc' | 'omp'
    source: str
    template: str
    features: tuple[str, ...] = ()
    issue: int | None = None  # negative-probing issue id (0-4), None/5 = unchanged

    @property
    def filename(self) -> str:
        return self.name

    @property
    def is_valid(self) -> bool:
        """Ground truth per the paper's system-of-verification."""
        return self.issue is None or self.issue == 5

    def with_issue(self, issue: int, source: str | None = None) -> "TestFile":
        return replace(
            self,
            issue=issue,
            source=source if source is not None else self.source,
            name=_issue_name(self.name, issue),
        )


def _issue_name(name: str, issue: int) -> str:
    stem, dot, ext = name.rpartition(".")
    if not dot:
        return f"{name}__issue{issue}"
    return f"{stem}__issue{issue}.{ext}"


class CorpusValidationError(Exception):
    """A rendered template failed its own compile/run validation."""


@dataclass
class CorpusGenerator:
    """Seeded generator over the template registry.

    ``cache`` (a :class:`repro.cache.bundle.PipelineCache`) makes the
    per-file validation compile/run content-addressed: regenerating the
    same corpus — the common case across experiment instances — reuses
    every check result instead of re-interpreting each program.
    """

    seed: int = 1234
    validate: bool = True
    step_limit: int = 3_000_000
    openmp_max_version: float = 4.5
    execution_backend: str = "closure"
    cache: object | None = None
    _validation_failures: list[str] = field(default_factory=list)

    def generate(
        self,
        model: str,
        count: int,
        languages: tuple[str, ...] = ("c", "cpp"),
    ) -> list[TestFile]:
        """Render ``count`` validated test files for one model."""
        rng = random.Random(f"{self.seed}:{model}:{','.join(languages)}")
        pool: list[tuple[str, TemplateSpec]] = []
        for language in languages:
            for spec in templates_for(model, language):
                pool.append((language, spec))
        if not pool:
            raise ValueError(f"no templates for model={model!r} languages={languages!r}")
        rng.shuffle(pool)
        compiler = Compiler(model=model, openmp_max_version=self.openmp_max_version)
        executor = Executor(step_limit=self.step_limit, backend=self.execution_backend)
        if self.cache is not None:
            from repro.cache.wrappers import CachingCompiler, CachingExecutor

            compiler = CachingCompiler(compiler, self.cache.compile)
            executor = CachingExecutor(executor, self.cache.execute)
        out: list[TestFile] = []
        attempts = 0
        idx = 0
        while len(out) < count:
            language, spec = pool[idx % len(pool)]
            idx += 1
            attempts += 1
            if attempts > count * 4 + 32:
                raise CorpusValidationError(
                    f"too many validation failures generating {model} corpus: "
                    f"{self._validation_failures[:5]}"
                )
            ctx = TemplateContext(rng=rng, model=model, language=language)
            source = spec.render(ctx)
            name = f"{model}_{spec.name}_{len(out):04d}{EXTENSIONS[language]}"
            test = TestFile(
                name=name,
                language=language,
                model=model,
                source=source,
                template=spec.name,
                features=spec.features,
            )
            if self.validate and not self._check(test, compiler, executor):
                continue
            out.append(test)
        return out

    def _check(self, test: TestFile, compiler: Compiler, executor: Executor) -> bool:
        compiled = compiler.compile(test.source, test.name)
        if not compiled.ok:
            self._validation_failures.append(
                f"{test.name}: compile rc={compiled.returncode}: "
                + compiled.stderr.splitlines()[0] if compiled.stderr else ""
            )
            return False
        result = executor.run(compiled)
        if not result.ok:
            self._validation_failures.append(
                f"{test.name}: run rc={result.returncode}: {result.stderr.strip()[:80]}"
            )
            return False
        return True

    @property
    def validation_failures(self) -> list[str]:
        return list(self._validation_failures)
