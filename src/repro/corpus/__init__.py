"""Synthetic V&V testsuite corpus.

The paper draws its negative-probing population from the manually
written OpenACC V&V and OpenMP V&V repositories.  Those suites are the
one input we cannot ship, so this package generates an equivalent
population: template-driven, self-checking compiler tests in C, C++ and
Fortran that cover the same feature families (compute constructs, data
clauses, reductions, loop scheduling, unstructured data movement,
atomics, host parallelism, runtime API usage).

Every generated test:

* compiles cleanly under :class:`repro.compiler.driver.Compiler`;
* runs under :class:`repro.runtime.executor.Executor` and exits 0 iff
  its serial-vs-device self-check passes;
* carries feature metadata used by experiments and the judge.
"""

from repro.corpus.generator import CorpusGenerator, TestFile
from repro.corpus.suite import TestSuite

__all__ = ["CorpusGenerator", "TestFile", "TestSuite"]
