"""Template library: self-checking OpenACC/OpenMP compiler tests.

Each template renders one complete test program following the V&V
suites' house style: initialize inputs, compute a serial reference,
perform the same computation through the directive feature under test,
compare with a tolerance, and ``return err`` so the exit code encodes
the verdict.  Templates are parameterized (array size, scalar
coefficients, variable-name pool, datatype) so one template yields many
distinct files.

Every template is registered via :func:`template` with the models,
languages and feature idents it covers; :mod:`repro.corpus.generator`
drives the registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

NAME_POOLS = [
    ("a", "b", "c"),
    ("x", "y", "z"),
    ("in1", "in2", "out"),
    ("src", "dst", "tmp"),
    ("data1", "data2", "result"),
]

SIZES = [128, 192, 256, 320]


@dataclass
class TemplateContext:
    """Randomized parameters shared by all templates."""

    rng: random.Random
    model: str  # 'acc' | 'omp'
    language: str  # 'c' | 'cpp' | 'f90'
    size: int = 0
    names: tuple[str, str, str] = ("a", "b", "c")
    dtype: str = "double"
    coeff: int = 2
    offset: int = 1

    def __post_init__(self) -> None:
        if self.size == 0:
            self.size = self.rng.choice(SIZES)
        self.names = self.rng.choice(NAME_POOLS)
        self.dtype = self.rng.choice(["double", "float", "double"])
        self.coeff = self.rng.randint(2, 9)
        self.offset = self.rng.randint(1, 7)

    # -- source helpers ----------------------------------------------------

    @property
    def header(self) -> str:
        runtime = "openacc.h" if self.model == "acc" else "omp.h"
        return (
            "#include <stdio.h>\n"
            "#include <stdlib.h>\n"
            "#include <math.h>\n"
            f"#include <{runtime}>\n"
        )

    @property
    def fmt(self) -> str:
        return "%f" if self.dtype in ("double", "float") else "%d"

    def tolerance_check(self, lhs: str, rhs: str) -> str:
        if self.dtype in ("double", "float"):
            return f"fabs({lhs} - {rhs}) > 1e-9"
        return f"{lhs} != {rhs}"


@dataclass(frozen=True)
class TemplateSpec:
    name: str
    models: tuple[str, ...]
    languages: tuple[str, ...]
    features: tuple[str, ...]
    render: Callable[[TemplateContext], str]


TEMPLATES: list[TemplateSpec] = []


def template(name: str, models: tuple[str, ...], languages: tuple[str, ...], features: tuple[str, ...]):
    def register(fn: Callable[[TemplateContext], str]) -> Callable[[TemplateContext], str]:
        TEMPLATES.append(TemplateSpec(name, models, languages, features, fn))
        return fn

    return register


def templates_for(model: str, language: str) -> list[TemplateSpec]:
    return [t for t in TEMPLATES if model in t.models and language in t.languages]


# ---------------------------------------------------------------------------
# C / C++ templates
# ---------------------------------------------------------------------------


def _compute_for_pragma(ctx: TemplateContext, extra: str = "") -> str:
    """The model's combined offloaded-loop directive."""
    a, b, _ = ctx.names
    n = ctx.size
    if ctx.model == "acc":
        return f"#pragma acc parallel loop copyin({a}[0:{n}]) copyout({b}[0:{n}]){extra}"
    return (
        f"#pragma omp target teams distribute parallel for "
        f"map(to: {a}[0:{n}]) map(from: {b}[0:{n}]){extra}"
    )


@template("vector_scale", ("acc", "omp"), ("c", "cpp"), ("acc.parallel-loop", "omp.teams-distribute-parallel-for", "acc.data.copyin-copyout", "omp.target.map-to-from"))
def t_vector_scale(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, off, T = ctx.size, ctx.coeff, ctx.offset, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} *{a} = ({T}*)malloc(N * sizeof({T}));
    {T} *{b} = ({T}*)malloc(N * sizeof({T}));
    {T} expected[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})i / {k}.0;
        expected[i] = {a}[i] * {k}.0 + {off}.0;
    }}
{_compute_for_pragma(ctx)}
    for (int i = 0; i < N; i++) {{
        {b}[i] = {a}[i] * {k}.0 + {off}.0;
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'expected[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("Test failed with %d errors\\n", err);
        return 1;
    }}
    printf("Test passed\\n");
    free({a});
    free({b});
    return 0;
}}
"""


@template("saxpy", ("acc", "omp"), ("c", "cpp"), ("acc.parallel-loop", "omp.teams-distribute-parallel-for"))
def t_saxpy(ctx: TemplateContext) -> str:
    x, y, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop copy({y}[0:{n}]) copyin({x}[0:{n}])"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for "
            f"map(tofrom: {y}[0:{n}]) map(to: {x}[0:{n}])"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {x}[N];
    {T} {y}[N];
    {T} expected[N];
    {T} alpha = {k}.5;
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {x}[i] = ({T})(i % 17);
        {y}[i] = ({T})(i % 5);
        expected[i] = alpha * {x}[i] + {y}[i];
    }}
{pragma}
    for (int i = 0; i < N; i++) {{
        {y}[i] = alpha * {x}[i] + {y}[i];
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{y}[i]', 'expected[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("saxpy failed: %d mismatches\\n", err);
        return 1;
    }}
    printf("saxpy passed\\n");
    return 0;
}}
"""


@template("reduction_sum", ("acc", "omp"), ("c", "cpp"), ("acc.reduction.add", "omp.reduction.add"))
def t_reduction_sum(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n = ctx.size
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop copyin({a}[0:{n}]) reduction(+:sum)"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for "
            f"map(to: {a}[0:{n}]) reduction(+:sum)"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    int {a}[N];
    long sum = 0;
    long expected = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = i % {ctx.coeff + 3};
        expected += {a}[i];
    }}
{pragma}
    for (int i = 0; i < N; i++) {{
        sum += {a}[i];
    }}
    if (sum != expected) {{
        printf("reduction mismatch: got %ld expected %ld\\n", sum, expected);
        return 1;
    }}
    printf("reduction passed: %ld\\n", sum);
    return 0;
}}
"""


@template("reduction_minmax", ("acc", "omp"), ("c", "cpp"), ("acc.reduction.max", "acc.reduction.min", "omp.reduction.max"))
def t_reduction_minmax(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n = ctx.size
    op = ctx.rng.choice(["max", "min"])
    cmp = ">" if op == "max" else "<"
    init = "-1000000" if op == "max" else "1000000"
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop copyin({a}[0:{n}]) reduction({op}:best)"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for "
            f"map(to: {a}[0:{n}]) reduction({op}:best)"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    int {a}[N];
    int best = {init};
    int expected = {init};
    for (int i = 0; i < N; i++) {{
        {a}[i] = (i * {ctx.coeff + 11}) % 1013;
        if ({a}[i] {cmp} expected) {{
            expected = {a}[i];
        }}
    }}
{pragma}
    for (int i = 0; i < N; i++) {{
        if ({a}[i] {cmp} best) {{
            best = {a}[i];
        }}
    }}
    if (best != expected) {{
        printf("{op} reduction mismatch: got %d expected %d\\n", best, expected);
        return 1;
    }}
    printf("{op} reduction passed\\n");
    return 0;
}}
"""


@template("matmul_collapse", ("acc", "omp"), ("c", "cpp"), ("acc.loop.collapse", "omp.collapse"))
def t_matmul_collapse(ctx: TemplateContext) -> str:
    m = ctx.rng.choice([16, 24, 32])
    T = ctx.dtype
    if ctx.model == "acc":
        pragma = "#pragma acc parallel loop collapse(2) copyin(ma, mb) copyout(mc)"
    else:
        pragma = (
            "#pragma omp target teams distribute parallel for collapse(2) "
            f"map(to: ma[0:{m}][0:{m}], mb[0:{m}][0:{m}]) map(from: mc[0:{m}][0:{m}])"
        )
    return f"""{ctx.header}#define M {m}

int main() {{
    {T} ma[M][M];
    {T} mb[M][M];
    {T} mc[M][M];
    {T} ref[M][M];
    int err = 0;
    for (int i = 0; i < M; i++) {{
        for (int j = 0; j < M; j++) {{
            ma[i][j] = ({T})((i + j) % 7);
            mb[i][j] = ({T})((i * j) % 5);
            mc[i][j] = 0.0;
            ref[i][j] = 0.0;
        }}
    }}
    for (int i = 0; i < M; i++) {{
        for (int j = 0; j < M; j++) {{
            for (int k = 0; k < M; k++) {{
                ref[i][j] += ma[i][k] * mb[k][j];
            }}
        }}
    }}
{pragma}
    for (int i = 0; i < M; i++) {{
        for (int j = 0; j < M; j++) {{
            {T} acc_sum = 0.0;
            for (int k = 0; k < M; k++) {{
                acc_sum += ma[i][k] * mb[k][j];
            }}
            mc[i][j] = acc_sum;
        }}
    }}
    for (int i = 0; i < M; i++) {{
        for (int j = 0; j < M; j++) {{
            if ({ctx.tolerance_check('mc[i][j]', 'ref[i][j]')}) {{
                err = err + 1;
            }}
        }}
    }}
    if (err != 0) {{
        printf("matmul failed: %d errors\\n", err);
        return 1;
    }}
    printf("matmul passed\\n");
    return 0;
}}
"""


@template("stencil_3point", ("acc", "omp"), ("c", "cpp"), ("acc.data.copy", "omp.target.map-tofrom"))
def t_stencil(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, T = ctx.size, ctx.dtype
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop copyin({a}[0:{n}]) copyout({b}[0:{n}])"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for "
            f"map(to: {a}[0:{n}]) map(from: {b}[0:{n}])"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 31);
        {b}[i] = 0.0;
        ref[i] = 0.0;
    }}
    for (int i = 1; i < N - 1; i++) {{
        ref[i] = ({a}[i - 1] + {a}[i] + {a}[i + 1]) / 3.0;
    }}
{pragma}
    for (int i = 1; i < N - 1; i++) {{
        {b}[i] = ({a}[i - 1] + {a}[i] + {a}[i + 1]) / 3.0;
    }}
    for (int i = 1; i < N - 1; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("stencil failed: %d errors\\n", err);
        return 1;
    }}
    printf("stencil passed\\n");
    return 0;
}}
"""


@template("data_region_multi", ("acc", "omp"), ("c", "cpp"), ("acc.data.copy", "acc.data.present", "omp.target-data"))
def t_data_region(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    if ctx.model == "acc":
        open_region = f"#pragma acc data copy({a}[0:{n}]) copyout({b}[0:{n}])"
        loop1 = f"#pragma acc parallel loop present({a}[0:{n}])"
        loop2 = f"#pragma acc parallel loop present({a}[0:{n}], {b}[0:{n}])"
    else:
        open_region = f"#pragma omp target data map(tofrom: {a}[0:{n}]) map(from: {b}[0:{n}])"
        loop1 = "#pragma omp target teams distribute parallel for"
        loop2 = "#pragma omp target teams distribute parallel for"
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref_a[N];
    {T} ref_b[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 13);
        {b}[i] = 0.0;
        ref_a[i] = {a}[i] * {k}.0;
        ref_b[i] = ref_a[i] + 1.0;
    }}
{open_region}
    {{
{loop1}
        for (int i = 0; i < N; i++) {{
            {a}[i] = {a}[i] * {k}.0;
        }}
{loop2}
        for (int i = 0; i < N; i++) {{
            {b}[i] = {a}[i] + 1.0;
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{a}[i]', 'ref_a[i]')}) {{
            err = err + 1;
        }}
        if ({ctx.tolerance_check(f'{b}[i]', 'ref_b[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("data region test failed: %d errors\\n", err);
        return 1;
    }}
    printf("data region test passed\\n");
    return 0;
}}
"""


@template("update_directive", ("acc", "omp"), ("c", "cpp"), ("acc.update", "omp.target-update"))
def t_update(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    if ctx.model == "acc":
        open_region = f"#pragma acc data copyin({a}[0:{n}]) copyout({b}[0:{n}])"
        update = f"#pragma acc update device({a}[0:{n}])"
        loop = "#pragma acc parallel loop"
    else:
        open_region = f"#pragma omp target data map(to: {a}[0:{n}]) map(from: {b}[0:{n}])"
        update = f"#pragma omp target update to({a}[0:{n}])"
        loop = "#pragma omp target teams distribute parallel for"
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})i;
        {b}[i] = 0.0;
        ref[i] = (({T})i + {k}.0) * 2.0;
    }}
{open_region}
    {{
        for (int i = 0; i < N; i++) {{
            {a}[i] = {a}[i] + {k}.0;
        }}
{update}
{loop}
        for (int i = 0; i < N; i++) {{
            {b}[i] = {a}[i] * 2.0;
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("update test failed: %d errors\\n", err);
        return 1;
    }}
    printf("update test passed\\n");
    return 0;
}}
"""


@template("enter_exit_data", ("acc", "omp"), ("c", "cpp"), ("acc.enter-exit-data", "omp.target-enter-exit"))
def t_enter_exit(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    if ctx.model == "acc":
        enter = f"#pragma acc enter data copyin({a}[0:{n}])"
        loop = f"#pragma acc parallel loop present({a}[0:{n}])"
        leave = f"#pragma acc exit data copyout({a}[0:{n}])"
    else:
        enter = f"#pragma omp target enter data map(to: {a}[0:{n}])"
        loop = "#pragma omp target teams distribute parallel for"
        leave = f"#pragma omp target exit data map(from: {a}[0:{n}])"
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 19);
        ref[i] = {a}[i] + {k}.0;
    }}
{enter}
{loop}
    for (int i = 0; i < N; i++) {{
        {a}[i] = {a}[i] + {k}.0;
    }}
{leave}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{a}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("enter/exit data failed: %d errors\\n", err);
        return 1;
    }}
    printf("enter/exit data passed\\n");
    return 0;
}}
"""


@template("private_clause", ("acc", "omp"), ("c", "cpp"), ("acc.private", "omp.private"))
def t_private(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop private(scratch) copyin({a}[0:{n}]) copyout({b}[0:{n}])"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for private(scratch) "
            f"map(to: {a}[0:{n}]) map(from: {b}[0:{n}])"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    {T} scratch = 0.0;
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 23);
        ref[i] = {a}[i] * {k}.0 + 1.0;
    }}
{pragma}
    for (int i = 0; i < N; i++) {{
        scratch = {a}[i] * {k}.0;
        {b}[i] = scratch + 1.0;
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("private clause test failed: %d errors\\n", err);
        return 1;
    }}
    printf("private clause test passed\\n");
    return 0;
}}
"""


@template("firstprivate_scalar", ("acc", "omp"), ("c", "cpp"), ("acc.firstprivate", "omp.firstprivate"))
def t_firstprivate(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop firstprivate(factor) copyin({a}[0:{n}]) copyout({b}[0:{n}])"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for firstprivate(factor) "
            f"map(to: {a}[0:{n}]) map(from: {b}[0:{n}])"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    {T} factor = {k}.25;
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 11);
        ref[i] = {a}[i] * factor;
    }}
{pragma}
    for (int i = 0; i < N; i++) {{
        {b}[i] = {a}[i] * factor;
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("firstprivate test failed: %d errors\\n", err);
        return 1;
    }}
    printf("firstprivate test passed\\n");
    return 0;
}}
"""


@template("if_clause", ("acc", "omp"), ("c", "cpp"), ("acc.if-clause", "omp.if-clause"))
def t_if_clause(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop if(use_device) copy({a}[0:{n}])"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for if(use_device) "
            f"map(tofrom: {a}[0:{n}])"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} ref[N];
    int use_device = 1;
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})i;
        ref[i] = ({T})i + {k}.0;
    }}
{pragma}
    for (int i = 0; i < N; i++) {{
        {a}[i] = {a}[i] + {k}.0;
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{a}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("if clause test failed: %d errors\\n", err);
        return 1;
    }}
    printf("if clause test passed\\n");
    return 0;
}}
"""


@template("atomic_update", ("acc", "omp"), ("c", "cpp"), ("acc.atomic", "omp.atomic"))
def t_atomic(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n = ctx.size
    if ctx.model == "acc":
        outer = f"#pragma acc parallel loop copyin({a}[0:{n}]) copy(hits)"
        atomic = "#pragma acc atomic update"
    else:
        outer = "#pragma omp parallel for shared(hits)"
        atomic = "#pragma omp atomic"
    return f"""{ctx.header}#define N {n}

int main() {{
    int {a}[N];
    int hits = 0;
    int expected = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = i % {ctx.coeff + 2};
        if ({a}[i] == 0) {{
            expected = expected + 1;
        }}
    }}
{outer}
    for (int i = 0; i < N; i++) {{
        if ({a}[i] == 0) {{
{atomic}
            hits = hits + 1;
        }}
    }}
    if (hits != expected) {{
        printf("atomic count mismatch: got %d expected %d\\n", hits, expected);
        return 1;
    }}
    printf("atomic test passed\\n");
    return 0;
}}
"""


@template("gang_worker_vector", ("acc",), ("c", "cpp"), ("acc.loop.gang", "acc.loop.worker", "acc.loop.vector", "acc.num-gangs"))
def t_gang_worker_vector(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    sched = ctx.rng.choice(["gang", "gang worker", "gang vector", "gang worker vector"])
    tuning = ctx.rng.choice(["", " num_gangs(8)", " num_gangs(4) vector_length(64)"])
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 29);
        ref[i] = {a}[i] + {k}.0;
    }}
#pragma acc parallel copyin({a}[0:{n}]) copyout({b}[0:{n}]){tuning}
    {{
#pragma acc loop {sched}
        for (int i = 0; i < N; i++) {{
            {b}[i] = {a}[i] + {k}.0;
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("gang/worker/vector test failed: %d errors\\n", err);
        return 1;
    }}
    printf("gang/worker/vector test passed\\n");
    return 0;
}}
"""


@template("kernels_construct", ("acc",), ("c", "cpp"), ("acc.kernels", "acc.kernels-loop"))
def t_kernels(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 37);
        ref[i] = {a}[i] * {k}.0 - 1.0;
    }}
#pragma acc kernels copyin({a}[0:{n}]) copyout({b}[0:{n}])
    {{
#pragma acc loop independent
        for (int i = 0; i < N; i++) {{
            {b}[i] = {a}[i] * {k}.0 - 1.0;
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("kernels test failed: %d errors\\n", err);
        return 1;
    }}
    printf("kernels test passed\\n");
    return 0;
}}
"""


@template("serial_construct", ("acc",), ("c", "cpp"), ("acc.serial",))
def t_serial(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n, T = ctx.size, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} total = 0.0;
    {T} expected = 0.0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 7);
        expected += {a}[i];
    }}
#pragma acc serial copyin({a}[0:{n}]) copy(total)
    {{
        for (int i = 0; i < N; i++) {{
            total += {a}[i];
        }}
    }}
    if ({ctx.tolerance_check('total', 'expected')}) {{
        printf("serial construct mismatch\\n");
        return 1;
    }}
    printf("serial construct passed\\n");
    return 0;
}}
"""


@template("async_wait", ("acc",), ("c", "cpp"), ("acc.async-wait",))
def t_async_wait(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})i;
        ref[i] = ({T})i * {k}.0;
    }}
#pragma acc parallel loop async copyin({a}[0:{n}]) copyout({b}[0:{n}])
    for (int i = 0; i < N; i++) {{
        {b}[i] = {a}[i] * {k}.0;
    }}
#pragma acc wait
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("async/wait test failed: %d errors\\n", err);
        return 1;
    }}
    printf("async/wait test passed\\n");
    return 0;
}}
"""


@template("seq_loop", ("acc",), ("c", "cpp"), ("acc.loop.seq",))
def t_seq_loop(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n, T = ctx.size, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} prefix[N];
    {T} ref[N];
    int err = 0;
    {T} running = 0.0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 9);
        running += {a}[i];
        ref[i] = running;
    }}
#pragma acc parallel copyin({a}[0:{n}]) copyout(prefix[0:{n}])
    {{
#pragma acc loop seq
        for (int i = 0; i < N; i++) {{
            if (i == 0) {{
                prefix[i] = {a}[i];
            }} else {{
                prefix[i] = prefix[i - 1] + {a}[i];
            }}
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check('prefix[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("seq loop test failed: %d errors\\n", err);
        return 1;
    }}
    printf("seq loop test passed\\n");
    return 0;
}}
"""


@template("runtime_api", ("acc", "omp"), ("c", "cpp"), ("acc.api.device", "omp.api.threads", "omp.api.device"))
def t_runtime_api(ctx: TemplateContext) -> str:
    if ctx.model == "acc":
        body = """    int ndev = acc_get_num_devices(acc_device_default);
    if (ndev < 1) {
        printf("no devices available\\n");
        return 1;
    }
    acc_init(acc_device_default);
    int devnum = acc_get_device_num(acc_device_default);
    if (devnum < 0) {
        printf("bad device number\\n");
        return 1;
    }
    acc_shutdown(acc_device_default);"""
    else:
        body = """    int maxt = omp_get_max_threads();
    if (maxt < 1) {
        printf("bad max threads\\n");
        return 1;
    }
    int ndev = omp_get_num_devices();
    if (ndev < 0) {
        printf("bad device count\\n");
        return 1;
    }
    omp_set_num_threads(maxt);"""
    return f"""{ctx.header}
int main() {{
{body}
    printf("runtime API test passed\\n");
    return 0;
}}
"""


@template("api_memory", ("acc",), ("c", "cpp"), ("acc.api.memory",))
def t_api_memory(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 15);
        ref[i] = {a}[i] * {k}.0;
    }}
    acc_copyin({a}, N * sizeof({T}));
    if (!acc_is_present({a}, N * sizeof({T}))) {{
        printf("data not present after acc_copyin\\n");
        return 1;
    }}
#pragma acc parallel loop present({a}[0:{n}])
    for (int i = 0; i < N; i++) {{
        {a}[i] = {a}[i] * {k}.0;
    }}
    acc_copyout({a}, N * sizeof({T}));
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{a}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("API memory test failed: %d errors\\n", err);
        return 1;
    }}
    printf("API memory test passed\\n");
    return 0;
}}
"""


# -- OpenMP host-side templates ------------------------------------------------


@template("parallel_for_schedule", ("omp",), ("c", "cpp"), ("omp.parallel-for", "omp.for.schedule-static", "omp.for.schedule-dynamic"))
def t_parallel_for_schedule(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    kind = ctx.rng.choice(["static", "dynamic", "guided", "static, 16"])
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 21);
        ref[i] = {a}[i] * {k}.0 + 2.0;
    }}
#pragma omp parallel for schedule({kind})
    for (int i = 0; i < N; i++) {{
        {b}[i] = {a}[i] * {k}.0 + 2.0;
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("schedule({kind}) test failed: %d errors\\n", err);
        return 1;
    }}
    printf("schedule test passed\\n");
    return 0;
}}
"""


@template("sections", ("omp",), ("c", "cpp"), ("omp.sections",))
def t_sections(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref_a[N];
    {T} ref_b[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = 0.0;
        {b}[i] = 0.0;
        ref_a[i] = ({T})i * {k}.0;
        ref_b[i] = ({T})i + {k}.0;
    }}
#pragma omp parallel
    {{
#pragma omp sections
        {{
#pragma omp section
            {{
                for (int i = 0; i < N; i++) {{
                    {a}[i] = ({T})i * {k}.0;
                }}
            }}
#pragma omp section
            {{
                for (int i = 0; i < N; i++) {{
                    {b}[i] = ({T})i + {k}.0;
                }}
            }}
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{a}[i]', 'ref_a[i]')}) {{
            err = err + 1;
        }}
        if ({ctx.tolerance_check(f'{b}[i]', 'ref_b[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("sections test failed: %d errors\\n", err);
        return 1;
    }}
    printf("sections test passed\\n");
    return 0;
}}
"""


@template("single_master_critical", ("omp",), ("c", "cpp"), ("omp.single", "omp.master", "omp.critical", "omp.barrier"))
def t_single_master_critical(ctx: TemplateContext) -> str:
    kind = ctx.rng.choice(["single", "master", "critical"])
    return f"""{ctx.header}
int main() {{
    int counter = 0;
    int flag = 0;
#pragma omp parallel
    {{
#pragma omp {kind}
        {{
            counter = counter + 1;
            flag = 1;
        }}
#pragma omp barrier
    }}
    if (flag != 1) {{
        printf("{kind} region did not execute\\n");
        return 1;
    }}
    if (counter < 1) {{
        printf("counter not incremented\\n");
        return 1;
    }}
    printf("{kind} test passed\\n");
    return 0;
}}
"""


@template("simd_loop", ("omp",), ("c", "cpp"), ("omp.simd",))
def t_simd(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    variant = ctx.rng.choice(["simd", "parallel for simd", "simd simdlen(8)"])
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 33);
        ref[i] = {a}[i] - {k}.0;
    }}
#pragma omp {variant}
    for (int i = 0; i < N; i++) {{
        {b}[i] = {a}[i] - {k}.0;
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("simd test failed: %d errors\\n", err);
        return 1;
    }}
    printf("simd test passed\\n");
    return 0;
}}
"""


@template("task_basic", ("omp",), ("c", "cpp"), ("omp.task",))
def t_task(ctx: TemplateContext) -> str:
    n = ctx.rng.choice([64, 128])
    return f"""{ctx.header}#define N {n}

int main() {{
    int results[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        results[i] = 0;
    }}
#pragma omp parallel
    {{
#pragma omp single
        {{
            for (int i = 0; i < N; i++) {{
#pragma omp task firstprivate(i)
                {{
                    results[i] = i * {ctx.coeff};
                }}
            }}
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if (results[i] != i * {ctx.coeff}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("task test failed: %d errors\\n", err);
        return 1;
    }}
    printf("task test passed\\n");
    return 0;
}}
"""


@template("lastprivate", ("omp",), ("c", "cpp"), ("omp.lastprivate",))
def t_lastprivate(ctx: TemplateContext) -> str:
    n = ctx.size
    return f"""{ctx.header}#define N {n}

int main() {{
    int last = -1;
#pragma omp parallel for lastprivate(last)
    for (int i = 0; i < N; i++) {{
        last = i;
    }}
    if (last != N - 1) {{
        printf("lastprivate mismatch: got %d expected %d\\n", last, N - 1);
        return 1;
    }}
    printf("lastprivate test passed\\n");
    return 0;
}}
"""


@template("teams_distribute", ("omp",), ("c", "cpp"), ("omp.teams", "omp.distribute"))
def t_teams_distribute(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})i;
        ref[i] = ({T})i * {k}.0;
    }}
#pragma omp target teams map(tofrom: {a}[0:{n}])
    {{
#pragma omp distribute
        for (int i = 0; i < N; i++) {{
            {a}[i] = {a}[i] * {k}.0;
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{a}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("teams distribute failed: %d errors\\n", err);
        return 1;
    }}
    printf("teams distribute passed\\n");
    return 0;
}}
"""


@template("target_defaultmap", ("omp",), ("c", "cpp"), ("omp.target", "omp.defaultmap"))
def t_target_defaultmap(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 27);
        ref[i] = {a}[i] + {k}.0;
    }}
#pragma omp target map(tofrom: {a}[0:{n}])
    {{
        for (int i = 0; i < N; i++) {{
            {a}[i] = {a}[i] + {k}.0;
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{a}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("target test failed: %d errors\\n", err);
        return 1;
    }}
    printf("target test passed\\n");
    return 0;
}}
"""


@template("dot_product", ("acc", "omp"), ("c", "cpp"), ("acc.reduction.add", "omp.reduction.add"))
def t_dot_product(ctx: TemplateContext) -> str:
    x, y, _ = ctx.names
    n, T = ctx.size, ctx.dtype
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop copyin({x}[0:{n}], {y}[0:{n}]) reduction(+:dot)"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for "
            f"map(to: {x}[0:{n}], {y}[0:{n}]) reduction(+:dot)"
        )
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {x}[N];
    {T} {y}[N];
    {T} dot = 0.0;
    {T} expected = 0.0;
    for (int i = 0; i < N; i++) {{
        {x}[i] = ({T})(i % 9);
        {y}[i] = ({T})(i % 4);
        expected += {x}[i] * {y}[i];
    }}
{pragma}
    for (int i = 0; i < N; i++) {{
        dot += {x}[i] * {y}[i];
    }}
    if ({ctx.tolerance_check('dot', 'expected')}) {{
        printf("dot product mismatch\\n");
        return 1;
    }}
    printf("dot product passed\\n");
    return 0;
}}
"""


@template("histogram_atomic", ("acc", "omp"), ("c", "cpp"), ("acc.atomic", "omp.atomic"))
def t_histogram_atomic(ctx: TemplateContext) -> str:
    a, _, _ = ctx.names
    n = ctx.size
    bins = ctx.rng.choice([4, 8])
    if ctx.model == "acc":
        outer = f"#pragma acc parallel loop copyin({a}[0:{n}]) copy(hist)"
        atomic = "#pragma acc atomic update"
    else:
        outer = "#pragma omp parallel for shared(hist)"
        atomic = "#pragma omp atomic update"
    return f"""{ctx.header}#define N {n}
#define BINS {bins}

int main() {{
    int {a}[N];
    int hist[BINS];
    int ref[BINS];
    int err = 0;
    for (int b = 0; b < BINS; b++) {{
        hist[b] = 0;
        ref[b] = 0;
    }}
    for (int i = 0; i < N; i++) {{
        {a}[i] = (i * {ctx.coeff + 5}) % BINS;
        ref[{a}[i]] = ref[{a}[i]] + 1;
    }}
{outer}
    for (int i = 0; i < N; i++) {{
{atomic}
        hist[{a}[i]] = hist[{a}[i]] + 1;
    }}
    for (int b = 0; b < BINS; b++) {{
        if (hist[b] != ref[b]) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("histogram failed: %d bins wrong\\n", err);
        return 1;
    }}
    printf("histogram passed\\n");
    return 0;
}}
"""


@template("pointer_swap_buffers", ("acc", "omp"), ("c", "cpp"), ("acc.data.copy", "omp.target.map-tofrom"))
def t_pointer_swap(ctx: TemplateContext) -> str:
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    steps = ctx.rng.choice([2, 4])
    if ctx.model == "acc":
        pragma = f"#pragma acc parallel loop copyin(cur[0:{n}]) copyout(nxt[0:{n}])"
    else:
        pragma = (
            f"#pragma omp target teams distribute parallel for "
            f"map(to: cur[0:{n}]) map(from: nxt[0:{n}])"
        )
    return f"""{ctx.header}#define N {n}
#define STEPS {steps}

int main() {{
    {T} *cur = ({T}*)malloc(N * sizeof({T}));
    {T} *nxt = ({T}*)malloc(N * sizeof({T}));
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        cur[i] = ({T})(i % 5);
        ref[i] = cur[i];
    }}
    for (int s = 0; s < STEPS; s++) {{
        for (int i = 0; i < N; i++) {{
            ref[i] = ref[i] + {k}.0;
        }}
    }}
    for (int s = 0; s < STEPS; s++) {{
{pragma}
        for (int i = 0; i < N; i++) {{
            nxt[i] = cur[i] + {k}.0;
        }}
        {T} *swap = cur;
        cur = nxt;
        nxt = swap;
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check('cur[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("buffer swap failed: %d errors\\n", err);
        return 1;
    }}
    printf("buffer swap passed\\n");
    free(cur);
    free(nxt);
    return 0;
}}
"""


@template("nested_loops_inner_seq", ("acc",), ("c", "cpp"), ("acc.loop.gang", "acc.loop.seq"))
def t_nested_inner_seq(ctx: TemplateContext) -> str:
    rows = ctx.rng.choice([16, 24])
    cols = ctx.rng.choice([16, 32])
    T = ctx.dtype
    return f"""{ctx.header}#define R {rows}
#define C {cols}

int main() {{
    {T} m[R][C];
    {T} rowsum[R];
    {T} ref[R];
    int err = 0;
    for (int i = 0; i < R; i++) {{
        ref[i] = 0.0;
        rowsum[i] = 0.0;
        for (int j = 0; j < C; j++) {{
            m[i][j] = ({T})((i * j) % 7);
            ref[i] += m[i][j];
        }}
    }}
#pragma acc parallel copyin(m) copyout(rowsum)
    {{
#pragma acc loop gang
        for (int i = 0; i < R; i++) {{
            {T} acc_total = 0.0;
#pragma acc loop seq
            for (int j = 0; j < C; j++) {{
                acc_total += m[i][j];
            }}
            rowsum[i] = acc_total;
        }}
    }}
    for (int i = 0; i < R; i++) {{
        if ({ctx.tolerance_check('rowsum[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("nested loop test failed: %d errors\\n", err);
        return 1;
    }}
    printf("nested loop test passed\\n");
    return 0;
}}
"""


@template("barrier_phases", ("omp",), ("c", "cpp"), ("omp.barrier", "omp.parallel"))
def t_barrier_phases(ctx: TemplateContext) -> str:
    a, b, _ = ctx.names
    n, k, T = ctx.size, ctx.coeff, ctx.dtype
    return f"""{ctx.header}#define N {n}

int main() {{
    {T} {a}[N];
    {T} {b}[N];
    {T} ref[N];
    int err = 0;
    for (int i = 0; i < N; i++) {{
        {a}[i] = ({T})(i % 13);
        ref[i] = ({a}[i] + {k}.0) * 2.0;
    }}
#pragma omp parallel
    {{
#pragma omp for
        for (int i = 0; i < N; i++) {{
            {b}[i] = {a}[i] + {k}.0;
        }}
#pragma omp barrier
#pragma omp for
        for (int i = 0; i < N; i++) {{
            {b}[i] = {b}[i] * 2.0;
        }}
    }}
    for (int i = 0; i < N; i++) {{
        if ({ctx.tolerance_check(f'{b}[i]', 'ref[i]')}) {{
            err = err + 1;
        }}
    }}
    if (err != 0) {{
        printf("barrier phase test failed: %d errors\\n", err);
        return 1;
    }}
    printf("barrier phase test passed\\n");
    return 0;
}}
"""


# ---------------------------------------------------------------------------
# Fortran templates (OpenACC; the paper's Part One Fortran coverage)
# ---------------------------------------------------------------------------


@template("f_vector_add", ("acc",), ("f90",), ("acc.parallel-loop", "acc.data.copyin-copyout"))
def t_f_vector_add(ctx: TemplateContext) -> str:
    n = ctx.rng.choice([64, 100, 128])
    k = ctx.coeff
    return f"""program vecadd
  implicit none
  integer :: i, n
  real(8) :: a({n}), b({n}), c({n}), expected({n})
  integer :: err
  n = {n}
  err = 0
  do i = 1, n
    a(i) = i * 0.5
    b(i) = i * {k}.0
    expected(i) = a(i) + b(i)
  end do
  !$acc parallel loop copyin(a, b) copyout(c)
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
  do i = 1, n
    if (abs(c(i) - expected(i)) > 1.0e-9) then
      err = err + 1
    end if
  end do
  if (err > 0) then
    print *, "vector add FAILED"
    stop 1
  end if
  print *, "vector add PASSED"
end program vecadd
"""


@template("f_reduction", ("acc",), ("f90",), ("acc.reduction.add",))
def t_f_reduction(ctx: TemplateContext) -> str:
    n = ctx.rng.choice([64, 100, 128])
    return f"""program redsum
  implicit none
  integer :: i, n
  real(8) :: a({n})
  real(8) :: total, expected
  n = {n}
  total = 0.0
  expected = 0.0
  do i = 1, n
    a(i) = i * 1.0
    expected = expected + a(i)
  end do
  !$acc parallel loop copyin(a) reduction(+:total)
  do i = 1, n
    total = total + a(i)
  end do
  if (abs(total - expected) > 1.0e-9) then
    print *, "reduction FAILED"
    stop 1
  end if
  print *, "reduction PASSED"
end program redsum
"""


@template("f_scale", ("acc",), ("f90",), ("acc.parallel-loop",))
def t_f_scale(ctx: TemplateContext) -> str:
    n = ctx.rng.choice([64, 100, 128])
    k = ctx.coeff
    return f"""program scale
  implicit none
  integer :: i, n
  real(8) :: a({n}), expected({n})
  integer :: err
  n = {n}
  err = 0
  do i = 1, n
    a(i) = i * 1.0
    expected(i) = a(i) * {k}.0
  end do
  !$acc parallel loop copy(a)
  do i = 1, n
    a(i) = a(i) * {k}.0
  end do
  do i = 1, n
    if (abs(a(i) - expected(i)) > 1.0e-9) then
      err = err + 1
    end if
  end do
  if (err > 0) then
    print *, "scale FAILED"
    stop 1
  end if
  print *, "scale PASSED"
end program scale
"""
