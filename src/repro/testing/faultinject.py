"""Fault injection: die (or stall) at named points inside real code paths.

Durability claims are cheap; this module makes them testable.  Production
code calls :func:`fault_point` at the moments that matter for crash
recovery — after a round's checkpoint lands, *between* a tmp-file write
and its atomic rename, mid-drain — and by default those calls are free
no-ops.  A test (or a CI job) arms them through the environment:

    REPRO_FAULT_POINTS="campaign:post-round@2=kill" llm4vv fuzz run ...

kills the process with SIGKILL — no handlers, no cleanup, the closest
thing to a power cut — the second time the campaign finishes a round.
Recovery is then proved by ``--resume`` producing a digest-identical
manifest.

Spec grammar (comma-separated list in ``REPRO_FAULT_POINTS``)::

    point                 trigger on the 1st hit, action "kill"
    point@N               trigger on the Nth hit
    point=action          action: kill | exit:<code> | sleep:<seconds> | raise
    point@N=action        both

Actions:

``kill``
    ``os.kill(os.getpid(), SIGKILL)`` after flushing a stderr marker.
``exit:<code>``
    ``os._exit(code)`` — dies without running atexit hooks or finally
    blocks, but with a chosen exit code.
``sleep:<seconds>``
    stall at the point (every hit once armed).  Used to widen timing
    windows deterministically — e.g. slowing campaign rounds so a test
    can land SIGTERM while a job is provably mid-run.
``raise``
    raise :class:`FaultError` — an in-process fault for unit tests that
    want to observe the aftermath (torn-write checks) without dying.

Tests may also arm points programmatically with :func:`install`
(including a callable action) and reset with :func:`clear`.

Instrumented points in this repo (grep ``fault_point(`` for the list):

- ``campaign:post-seed`` / ``campaign:post-round`` — right after the
  fuzzing campaign's checkpoint write for the seed phase / a round.
- ``atomic-write:<tag>`` — inside :mod:`repro.core.atomicio`, between
  writing the pid-unique tmp file and the atomic rename.  Tags include
  ``checkpoint``, ``job-journal``, ``experiment-cell``, ``cache``.
- ``experiment:post-cell`` — after an experiment cell's result pickle
  has been renamed into the run directory.
- ``drain:mid`` — in the daemon's SIGTERM path, after jobs have
  checkpointed but before the batcher drains and the cache flushes.
- ``worker:post-fork`` — first thing a pre-forked validation worker
  does after re-arming faults from the environment, before building
  its model/cache/validators.  ``kill`` here exercises the pool's
  boot-crash respawn path.
- ``worker:pre-result`` — in a validation worker, after a batch has
  executed but before its result is sent back to the parent.  ``kill``
  here is the canonical "worker died mid-batch" scenario: the parent
  must detect the death, respawn, retry once, and still return
  byte-identical verdicts.

Stdlib-only on purpose: everything else in the package may import this
module without creating a cycle.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Union

ENV_VAR = "REPRO_FAULT_POINTS"

Action = Union[str, Callable[[str], None]]


class FaultError(RuntimeError):
    """Raised by the ``raise`` action; carries the point name."""


@dataclass
class _Armed:
    name: str
    remaining: int
    action: Action


_lock = threading.Lock()
#: None means "environment not parsed yet"; parsing is lazy so that
#: merely importing the package never reads the environment.
_points: dict[str, _Armed] | None = None


def _parse_spec(raw: str) -> dict[str, _Armed]:
    points: dict[str, _Armed] = {}
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, action = chunk.partition("=")
        name, _, at = name.strip().partition("@")
        try:
            hits = int(at) if at else 1
        except ValueError:
            raise ValueError(f"bad fault spec {chunk!r}: hit count must be an integer") from None
        if hits < 1:
            raise ValueError(f"bad fault spec {chunk!r}: hit count must be >= 1")
        points[name] = _Armed(name=name, remaining=hits, action=action.strip() or "kill")
    return points


def _ensure_loaded() -> dict[str, _Armed]:
    global _points
    if _points is None:
        with _lock:
            if _points is None:
                _points = _parse_spec(os.environ.get(ENV_VAR, ""))
    return _points


def install(point: str, action: Action = "kill", hits: int = 1) -> None:
    """Arm *point* programmatically (tests). Overrides any env spec."""
    if hits < 1:
        raise ValueError("hits must be >= 1")
    points = _ensure_loaded()
    with _lock:
        points[point] = _Armed(name=point, remaining=hits, action=action)


def clear() -> None:
    """Disarm everything (tests). The environment is *not* re-read."""
    global _points
    with _lock:
        _points = {}


def reset() -> None:
    """Forget the parsed state so the *environment* is re-read lazily.

    Forked children inherit the parent's already-parsed (and possibly
    test-cleared) ``_points`` dict, which would shadow whatever
    ``REPRO_FAULT_POINTS`` says and make worker-side faults silently
    start-method-dependent.  Worker entrypoints call this first so a
    spec like ``worker:pre-result@2=kill`` arms identically under fork
    and spawn — with fresh per-process hit counters either way.
    """
    global _points
    with _lock:
        _points = None


def fault_point(name: str) -> None:
    """Trigger *name* if armed; a cheap no-op otherwise."""
    points = _ensure_loaded()
    armed = points.get(name)
    if armed is None:
        return
    with _lock:
        armed.remaining -= 1
        if armed.remaining > 0:
            return
        action = armed.action
        # sleep keeps firing on every later hit (it widens windows);
        # one-shot actions disarm so the aftermath can be observed.
        if not (isinstance(action, str) and action.startswith("sleep:")):
            points.pop(name, None)
    _trigger(name, action)


def _trigger(name: str, action: Action) -> None:
    if callable(action):
        action(name)
        return
    if action == "kill":
        sys.stderr.write(f"faultinject: SIGKILL at {name}\n")
        sys.stderr.flush()
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover - unreachable
    if action == "raise":
        raise FaultError(name)
    kind, _, arg = action.partition(":")
    if kind == "exit":
        sys.stderr.write(f"faultinject: exit({arg}) at {name}\n")
        sys.stderr.flush()
        os._exit(int(arg))
    if kind == "sleep":
        time.sleep(float(arg))
        return
    raise ValueError(f"unknown fault action {action!r} for point {name!r}")
