"""Test-support machinery that ships with the package.

The fault-injection harness lives here (rather than under ``tests/``)
because the *production* code paths carry the instrumentation points —
crash-recovery is only credible when the kill happens inside the real
write path, not a test double.
"""

from repro.testing.faultinject import FaultError, clear, fault_point, install

__all__ = ["FaultError", "clear", "fault_point", "install"]
