"""A process metrics registry: counters, gauges, fixed-bucket histograms.

Modeled on :class:`~repro.pipeline.stats.PipelineStats`' merge
discipline, but generic: every instrument is identified by a name plus
a frozen label set, lives in a :class:`MetricsRegistry`, and is
mergeable across processes.  Worker processes ship growth the same way
the worker cache ships hit/miss deltas — capture a baseline with
:meth:`MetricsRegistry.export_state`, report
:meth:`MetricsRegistry.diff` after each batch, and the parent folds
the delta in with :meth:`MetricsRegistry.apply`.  Gauges are
process-local by design (a worker's queue depth means nothing to the
parent) and stay out of diffs.

Exposition is Prometheus text format 0.0.4
(:meth:`MetricsRegistry.render_prometheus`), served by the daemon's
``GET /v1/metrics``.

Metrics are always on — instrument updates are a dict lookup and a
lock'd add — and strictly inert: nothing here touches digests, cache
keys, checkpoints, or RNG streams.
"""

from __future__ import annotations

import bisect
import threading

#: latency-shaped default buckets (seconds), ~exponential 1ms..10s
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic float counter."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by={by})")
        with self._lock:
            self.value += by

    def state(self) -> float:
        with self._lock:
            return self.value

    def add_state(self, state: float) -> None:
        with self._lock:
            self.value += state


class Gauge:
    """Last-write-wins instantaneous value (process-local; no diffs)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, by: float = 1.0) -> None:
        with self._lock:
            self.value += by

    def state(self) -> float:
        with self._lock:
            return self.value


class Histogram:
    """Fixed-upper-bound buckets plus +Inf, with sum and count."""

    kind = "histogram"

    def __init__(self, name: str, labels: tuple, buckets=DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # one slot per bound plus the +Inf overflow slot
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def state(self) -> dict:
        with self._lock:
            return {
                "bounds": self.bounds,
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }

    def add_state(self, state: dict) -> None:
        counts = state["counts"]
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name}: bucket shape mismatch "
                f"({len(counts)} vs {len(self.counts)})"
            )
        with self._lock:
            for i, n in enumerate(counts):
                self.counts[i] += n
            self.sum += state["sum"]
            self.count += state["count"]


class MetricsRegistry:
    """All of one process's instruments, keyed by (kind, name, labels)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}

    # -- instrument access ---------------------------------------------

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[2], **kwargs)
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- cross-process merge (the cache_delta pattern) ------------------

    def export_state(self) -> dict:
        """Picklable snapshot of every diffable instrument's state."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {
            key: instrument.state()
            for key, instrument in instruments
            if instrument.kind != "gauge"
        }

    def diff(self, baseline: dict) -> tuple[dict, dict]:
        """Growth since ``baseline`` plus the new baseline to keep.

        Counter growth ships as a float; histogram growth as the state
        dict with per-bucket count deltas.  Instruments that did not
        move are omitted, so an idle worker ships an empty delta.
        """
        state = self.export_state()
        delta = {}
        for key, now in state.items():
            before = baseline.get(key)
            kind = key[0]
            if kind == "counter":
                grown = now - (before or 0.0)
                if grown:
                    delta[key] = grown
            else:  # histogram
                if before is None:
                    if now["count"]:
                        delta[key] = now
                    continue
                counts = [
                    n - b for n, b in zip(now["counts"], before["counts"])
                ]
                if any(counts):
                    delta[key] = {
                        "bounds": now["bounds"],
                        "counts": counts,
                        "sum": now["sum"] - before["sum"],
                        "count": now["count"] - before["count"],
                    }
        return delta, state

    def apply(self, delta: dict) -> None:
        """Fold a :meth:`diff` payload (from another process) in."""
        if not delta:
            return
        for key, state in delta.items():
            kind, name, label_key = key
            labels = dict(label_key)
            if kind == "counter":
                self.counter(name, **labels).add_state(state)
            elif kind == "histogram":
                self.histogram(
                    name, buckets=state["bounds"], **labels
                ).add_state(state)
            # gauges never ship

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's full diffable state into this one."""
        self.apply(other.export_state())

    # -- exposition -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able dump (for tests and ad-hoc inspection)."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: dict[str, dict] = {}
        for instrument in instruments:
            series = out.setdefault(
                instrument.name, {"kind": instrument.kind, "series": []}
            )
            entry = {"labels": dict(instrument.labels)}
            if instrument.kind == "histogram":
                entry.update(instrument.state())
                entry["bounds"] = list(entry["bounds"])
            else:
                entry["value"] = instrument.state()
            series["series"].append(entry)
        return out

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4 (the ``/v1/metrics`` body)."""
        with self._lock:
            instruments = sorted(
                self._instruments.values(), key=lambda i: (i.name, i.labels)
            )
        lines: list[str] = []
        typed: set[str] = set()
        for instrument in instruments:
            name = _sanitize(instrument.name)
            if name not in typed:
                lines.append(f"# TYPE {name} {instrument.kind}")
                typed.add(name)
            labels = dict(instrument.labels)
            if instrument.kind == "histogram":
                state = instrument.state()
                cumulative = 0
                for bound, n in zip(state["bounds"], state["counts"]):
                    cumulative += n
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels({**labels, 'le': _fmt(bound)})} {cumulative}"
                    )
                cumulative += state["counts"][-1]
                lines.append(
                    f"{name}_bucket{_labels({**labels, 'le': '+Inf'})} "
                    f"{cumulative}"
                )
                lines.append(f"{name}_sum{_labels(labels)} {_fmt(state['sum'])}")
                lines.append(f"{name}_count{_labels(labels)} {state['count']}")
            else:
                lines.append(
                    f"{name}{_labels(labels)} {_fmt(instrument.state())}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c in "_:" else "_" for c in name)


def _labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_sanitize(str(k))}="{_escape(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# the process-global registry
# ----------------------------------------------------------------------

_global = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry every layer instruments into."""
    return _global


def reset_metrics() -> None:
    """Drop every instrument (tests only; not thread-safe vs updates)."""
    with _global._lock:
        _global._instruments.clear()
