"""Unified telemetry: cross-process tracing, metrics, exposition.

Three small modules with one discipline between them — telemetry is
*inert*: spans and metrics observe wall-clock facts but never feed a
digest, cache key, checkpoint, or RNG, so every byte-identity gate in
the repo holds with tracing on.

* :mod:`repro.obs.trace`   — trace-id/span-id contexts, an ambient
  process tracer, picklable :class:`~repro.obs.trace.TraceContext`
  for crossing the worker-pool pipe;
* :mod:`repro.obs.metrics` — named counters/gauges/histograms in a
  process registry, mergeable across processes like ``PipelineStats``;
* :mod:`repro.obs.export`  — JSON-lines span logs, Chrome-trace
  (Perfetto) conversion, summaries, and a text Gantt view.
"""

from repro.obs import export, metrics, trace

__all__ = ["export", "metrics", "trace"]
