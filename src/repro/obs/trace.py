"""Span tracing with cross-process contexts.

A :class:`Tracer` collects :class:`SpanRecord` objects — named
intervals with a ``trace_id`` shared by everything one request caused,
a ``span_id`` of their own, and a ``parent_id`` linking them into a
tree.  Spans nest through a :mod:`contextvars` variable on the opening
thread; crossing a *thread* or *process* boundary is explicit: capture
:func:`current` where the work is submitted, pass the (picklable,
frozen) :class:`TraceContext` along, and open the remote span with
``parent=ctx``.  Worker processes ship their finished spans home as
plain dicts (see ``BatchResult.spans``); :meth:`Tracer.absorb` folds
them into the parent's buffer, already parented under the dispatching
span because the worker opened its root from the shipped context.

Tracing is opt-in and ambient: :func:`install` makes a tracer the
process default, and the module-level :func:`span` helper no-ops (one
attribute read, no allocation beyond the shared handle) when none is
installed — the serving hot path stays within the overhead budget with
tracing off.

Determinism note: span ids come from :func:`os.urandom`, never the
global :mod:`random` module — opening a span must not perturb campaign
RNG streams, or tracing would break replay digests.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


def new_id() -> str:
    """A fresh 64-bit hex id (RNG-stream-neutral: urandom, not random)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The picklable coordinates of one span: pass me across boundaries."""

    trace_id: str
    span_id: str

    def to_json(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_json(cls, data: dict) -> "TraceContext":
        return cls(trace_id=data["trace_id"], span_id=data["span_id"])


@dataclass
class SpanRecord:
    """One named interval in a trace tree.

    ``start``/``end`` are wall-clock (:func:`time.time`) on purpose:
    spans from different processes must line up on one timeline, which
    per-process ``perf_counter`` epochs cannot do.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float = 0.0
    pid: int = 0
    tid: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_json(cls, data: dict) -> "SpanRecord":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start=float(data["start"]),
            end=float(data["end"]),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            attrs=dict(data.get("attrs") or {}),
        )


#: the current span on this thread (set by ``Tracer.span``); holds the
#: live SpanRecord so :func:`annotate` can attach attributes to it
_current_span: contextvars.ContextVar[SpanRecord | TraceContext | None] = (
    contextvars.ContextVar("repro_obs_current_span", default=None)
)


class Tracer:
    """Thread-safe span collector."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []

    # -- recording ------------------------------------------------------

    def start_span(
        self, name: str, parent: TraceContext | None = None, **attrs
    ) -> SpanRecord:
        """Open (but do not enter) a span; pair with :meth:`finish`."""
        parent_ctx = parent if parent is not None else current()
        if parent_ctx is not None:
            trace_id, parent_id = parent_ctx.trace_id, parent_ctx.span_id
        else:
            trace_id, parent_id = new_id(), None
        return SpanRecord(
            trace_id=trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            name=name,
            start=time.time(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        )

    def finish(self, record: SpanRecord) -> None:
        record.end = time.time()
        with self._lock:
            self._spans.append(record)

    @contextmanager
    def span(self, name: str, parent: TraceContext | None = None, **attrs):
        """Open a span for a ``with`` block; nests via the contextvar."""
        record = self.start_span(name, parent=parent, **attrs)
        token = _current_span.set(record)
        try:
            yield record
        finally:
            _current_span.reset(token)
            self.finish(record)

    # -- cross-process --------------------------------------------------

    def absorb(self, spans) -> int:
        """Fold spans shipped from another process (dicts or records)."""
        records = [
            s if isinstance(s, SpanRecord) else SpanRecord.from_json(s)
            for s in spans
        ]
        with self._lock:
            self._spans.extend(records)
        return len(records)

    # -- reading --------------------------------------------------------

    @property
    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[SpanRecord]:
        """Pop every collected span (the worker's per-batch report)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ----------------------------------------------------------------------
# the ambient (process-default) tracer
# ----------------------------------------------------------------------

_active: Tracer | None = None


def install(tracer: Tracer | None) -> None:
    """Make ``tracer`` the process-ambient tracer (None uninstalls)."""
    global _active
    _active = tracer


def uninstall() -> None:
    install(None)


def active() -> Tracer | None:
    return _active


@contextmanager
def installed(tracer: Tracer):
    """Install ``tracer`` for a block, restoring the previous one after."""
    previous = _active
    install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


class _NoopSpan:
    """Shared do-nothing handle returned when no tracer is installed."""

    __slots__ = ()
    context = None

    @property
    def attrs(self) -> dict:
        return {}

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NOOP = _NoopSpan()


def span(name: str, parent: TraceContext | None = None, **attrs):
    """Open a span on the ambient tracer; a shared no-op without one."""
    tracer = _active
    if tracer is None:
        return _NOOP
    return tracer.span(name, parent=parent, **attrs)


def current() -> TraceContext | None:
    """This thread's current span context (to hand across boundaries)."""
    holder = _current_span.get()
    if holder is None:
        return None
    if isinstance(holder, TraceContext):
        return holder
    return holder.context


def annotate(**attrs) -> None:
    """Attach attributes to the current span, if one is open."""
    holder = _current_span.get()
    if isinstance(holder, SpanRecord):
        holder.attrs.update(attrs)
