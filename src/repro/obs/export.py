"""Span-log persistence and conversion.

The exchange format is JSON lines — one :meth:`SpanRecord.to_json`
dict per line, written through :mod:`repro.core.atomicio` so a reader
never sees a torn log.  From a log you can get:

* :func:`chrome_trace` — a Chrome-trace-event dict (complete events,
  ``ph: "X"``, microsecond timestamps) loadable in Perfetto or
  ``chrome://tracing``;
* :func:`summarize_spans` — per-name latency stats plus every request
  id seen, the ``llm4vv trace summarize`` body;
* :func:`render_gantt` — a text Gantt of the ``stage.*`` spans,
  grouped by file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.core.atomicio import atomic_write_text
from repro.obs.trace import SpanRecord

SpanLike = Union[SpanRecord, dict]


def _as_dicts(spans: Iterable[SpanLike]) -> list[dict]:
    return [s.to_json() if isinstance(s, SpanRecord) else dict(s) for s in spans]


def write_span_log(spans: Iterable[SpanLike], path) -> Path:
    """Write one JSON dict per line, atomically."""
    records = _as_dicts(spans)
    text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    return atomic_write_text(path, text, fault_tag="span-log")


def load_span_log(path) -> list[dict]:
    """Read a JSON-lines span log back into dicts."""
    spans = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def chrome_trace(spans: Iterable[SpanLike]) -> dict:
    """Convert spans to the Chrome trace-event format (Perfetto-loadable).

    Timestamps are microseconds relative to the earliest span, one
    complete ("X") event per span; trace/span/parent ids and span
    attributes travel in ``args`` so a request id is searchable in the
    trace viewer.
    """
    records = _as_dicts(spans)
    if not records:
        return {"traceEvents": []}
    epoch = min(r["start"] for r in records)
    events = []
    for r in sorted(records, key=lambda r: r["start"]):
        events.append(
            {
                "name": r["name"],
                "cat": "span",
                "ph": "X",
                "ts": round((r["start"] - epoch) * 1e6, 3),
                "dur": round(max(0.0, r["end"] - r["start"]) * 1e6, 3),
                "pid": r.get("pid", 0),
                "tid": r.get("tid", 0),
                "args": {
                    "trace_id": r["trace_id"],
                    "span_id": r["span_id"],
                    "parent_id": r.get("parent_id"),
                    **(r.get("attrs") or {}),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize_spans(spans: Iterable[SpanLike]) -> dict:
    """Per-name latency stats, trace count, and request ids seen."""
    records = _as_dicts(spans)
    by_name: dict[str, list[float]] = {}
    traces: set[str] = set()
    request_ids: list[str] = []
    pids: set[int] = set()
    for r in records:
        by_name.setdefault(r["name"], []).append(
            max(0.0, r["end"] - r["start"])
        )
        traces.add(r["trace_id"])
        pids.add(r.get("pid", 0))
        request_id = (r.get("attrs") or {}).get("request_id")
        if request_id and request_id not in request_ids:
            request_ids.append(request_id)
    names = {}
    for name, durations in sorted(by_name.items()):
        durations.sort()
        names[name] = {
            "count": len(durations),
            "min_ms": round(durations[0] * 1000, 3),
            "mean_ms": round(sum(durations) / len(durations) * 1000, 3),
            "max_ms": round(durations[-1] * 1000, 3),
        }
    return {
        "spans": len(records),
        "traces": len(traces),
        "processes": len(pids),
        "request_ids": request_ids,
        "by_name": names,
    }


def render_summary(summary: dict) -> str:
    """Text table for ``llm4vv trace summarize``."""
    lines = [
        f"{summary['spans']} spans in {summary['traces']} trace(s) "
        f"across {summary['processes']} process(es)"
    ]
    if summary["request_ids"]:
        lines.append("request ids: " + ", ".join(summary["request_ids"]))
    if summary["by_name"]:
        width = max(len(name) for name in summary["by_name"])
        lines.append(
            f"{'span'.ljust(width)}  count     min      mean       max"
        )
        for name, stats in summary["by_name"].items():
            lines.append(
                f"{name.ljust(width)}  {stats['count']:5d} "
                f"{stats['min_ms']:8.2f}ms {stats['mean_ms']:8.2f}ms "
                f"{stats['max_ms']:8.2f}ms"
            )
    return "\n".join(lines)


def render_gantt(spans: Iterable[SpanLike], width: int = 60, max_files: int = 20) -> str:
    """Text Gantt of the ``stage.*`` spans, one row per file."""
    stage_spans = [
        r for r in _as_dicts(spans) if r["name"].startswith("stage.")
    ]
    if not stage_spans:
        return "(no stage spans)"
    epoch = min(r["start"] for r in stage_spans)
    t_end = max(r["end"] - epoch for r in stage_spans)
    scale = width / t_end if t_end > 0 else 1.0
    letters = {"compile": "C", "execute": "X", "judge": "J"}
    rows: dict[str, list[str]] = {}
    order: list[str] = []
    for r in sorted(stage_spans, key=lambda r: r["start"]):
        file = str((r.get("attrs") or {}).get("file", "?"))
        if file not in rows:
            if len(order) >= max_files:
                continue
            rows[file] = [" "] * width
            order.append(file)
        row = rows[file]
        lo = min(width - 1, int((r["start"] - epoch) * scale))
        hi = min(width - 1, max(lo, int((r["end"] - epoch) * scale)))
        stage = r["name"][len("stage."):]
        for i in range(lo, hi + 1):
            row[i] = letters.get(stage, "?")
    name_width = max(len(name) for name in order)
    lines = [
        f"{name.ljust(name_width)} |{''.join(rows[name])}|" for name in order
    ]
    lines.append(f"{'':{name_width}}  0{'.' * (width - 8)}{t_end * 1000:.0f}ms")
    lines.append("C=compile X=execute J=judge")
    return "\n".join(lines)
