"""AST interpreter with simulated device semantics.

Executes the translation units produced by :class:`repro.compiler.
driver.Compiler` with the observable behaviour of a real test binary:

* ``main``'s return value becomes the process return code;
* ``printf``/``puts`` accumulate stdout, runtime faults produce the
  stderr a shell would show (``Segmentation fault``, ``Floating point
  exception``) with the matching 128+signal return codes;
* OpenACC/OpenMP compute and data constructs apply data-clause
  semantics against a :class:`~repro.runtime.device.DeviceEnv` — mapped
  aggregates are redirected to device copies for the duration of the
  region, so broken data movement yields wrong results and failing
  self-checks, exactly like a real offload target;
* a step budget bounds runaway loops (simulated timeout, rc 124).

Execution of parallel constructs is serial but semantically faithful
for the corpus' self-checking tests: reductions combine, private
variables do not leak, copyout writes back.

Three execution backends share these semantics:

* ``"walk"`` — the original tree-walking evaluator in this module, the
  executable spec;
* ``"closure"`` — :mod:`repro.runtime.compilebody` lowers each function
  body once into nested Python closures with slot-resolved locals and
  runs those instead; 5-10x faster on the hot path;
* ``"codegen"`` — :mod:`repro.runtime.codegen` emits each function body
  as Python source, compiles it to a real code object once per unit and
  binds it per run; ~2x faster again on loop-heavy code.

All backends must produce byte-identical observables (return code,
stdout, stderr, *and* step counts); the arithmetic/pointer helpers are
module-level functions shared by all of them so the semantics cannot
drift.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.compiler import astnodes as ast
from repro.compiler.pragma import Directive
from repro.runtime.builtins import Builtins, ExitProgram
from repro.runtime.device import (
    ACC_CLAUSE_SEMANTICS,
    OMP_MAP_SEMANTICS,
    DataMappingError,
    DeviceEnv,
    block_of,
)
from repro.runtime.values import (
    CArray,
    HeapBlock,
    MemoryFault,
    Pointer,
    UNINIT,
    coerce_to_type,
    sizeof_type,
    truthy,
)


#: The execution backends an :class:`Interpreter` (and everything above
#: it: Executor, pipeline stages, experiments, CLI) can select.  All
#: consumers (CLI flags, service protocol, pipeline/experiment configs)
#: derive their choices from this tuple — registering a backend here is
#: the single switch that surfaces it everywhere.
EXECUTION_BACKENDS = ("walk", "closure", "codegen")

#: One-line operator-facing description per backend (CLI help, docs).
BACKEND_SUMMARIES = {
    "walk": "tree-walking reference evaluator, the executable spec",
    "closure": "lowered closures, 5-10x faster than walk",
    "codegen": "generated Python code objects, ~2x faster than closure",
}

#: Default backend for new interpreters/executors.  The closure backend
#: is the fast path; ``"walk"`` remains available for debugging and for
#: the differential equivalence suite; ``"codegen"`` emits real Python
#: code objects (:mod:`repro.runtime.codegen`) and is gated on the
#: three-way equivalence suite before it can become the default.
DEFAULT_BACKEND = "closure"


class RuntimeFault(Exception):
    """A runtime condition that terminates the program abnormally."""

    def __init__(self, message: str, returncode: int, stderr: str):
        super().__init__(message)
        self.returncode = returncode
        self.stderr = stderr


class StepLimitExceeded(RuntimeFault):
    def __init__(self, limit: int):
        super().__init__(
            f"step limit of {limit} exceeded", 124, "killed: execution time limit exceeded\n"
        )


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        super().__init__(value)
        self.value = value


@dataclass
class Environment:
    """A lexical scope chain."""

    parent: "Environment | None" = None
    vars: dict[str, object] = field(default_factory=dict)
    types: dict[str, ast.CType] = field(default_factory=dict)

    def declare(self, name: str, value, ctype: ast.CType | None = None) -> None:
        self.vars[name] = value
        if ctype is not None:
            self.types[name] = ctype

    def lookup_env(self, name: str) -> "Environment | None":
        env: Environment | None = self
        while env is not None:
            if name in env.vars:
                return env
            env = env.parent
        return None

    def get(self, name: str):
        env = self.lookup_env(name)
        if env is None:
            raise RuntimeFault(
                f"use of unknown symbol '{name}'", 139, "Segmentation fault (core dumped)\n"
            )
        return env.vars[name]

    def set(self, name: str, value) -> None:
        env = self.lookup_env(name)
        if env is None:
            raise RuntimeFault(
                f"assignment to unknown symbol '{name}'", 139, "Segmentation fault (core dumped)\n"
            )
        ctype = env.types.get(name)
        env.vars[name] = coerce_to_type(value, ctype) if ctype is not None else value

    def type_of(self, name: str) -> ast.CType | None:
        env: Environment | None = self
        while env is not None:
            if name in env.types:
                return env.types[name]
            env = env.parent
        return None


#: Values for the header-provided constants semantic analysis admits.
_RUNTIME_CONSTANTS: dict[str, object] = {
    "NULL": 0,
    "EXIT_SUCCESS": 0,
    "EXIT_FAILURE": 1,
    "RAND_MAX": 0x7FFFFFFF,
    "INT_MAX": 0x7FFFFFFF,
    "INT_MIN": -0x80000000,
    "DBL_MAX": 1.7976931348623157e308,
    "DBL_MIN": 2.2250738585072014e-308,
    "FLT_MAX": 3.4028234663852886e38,
    "FLT_MIN": 1.1754943508222875e-38,
    "DBL_EPSILON": 2.220446049250313e-16,
    "FLT_EPSILON": 1.1920928955078125e-07,
    "CLOCKS_PER_SEC": 1_000_000,
    "stdout": 1,
    "stderr": 2,
    "stdin": 0,
    "acc_device_default": 0,
    "acc_device_host": 2,
    "acc_device_not_host": 3,
    "acc_device_nvidia": 4,
    "omp_lock_t": 0,
}


# ---------------------------------------------------------------------------
# semantics shared by the walk and closure backends
# ---------------------------------------------------------------------------


def segv_fault(detail: str) -> RuntimeFault:
    """The simulated SIGSEGV every invalid access maps to."""
    return RuntimeFault(detail, 139, "Segmentation fault (core dumped)\n")


def combine_binary(op: str, left, right):
    """Apply a (non-short-circuit) C binary operator to evaluated operands."""
    if left is UNINIT or right is UNINIT:
        raise segv_fault("use of uninitialized pointer value in arithmetic")
    # pointer arithmetic
    if isinstance(left, CArray):
        left = left.pointer()
    if isinstance(right, CArray):
        right = right.pointer()
    if isinstance(left, Pointer) or isinstance(right, Pointer):
        return pointer_arith(op, left, right)
    if isinstance(left, str) or isinstance(right, str):
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        left = len(left) if isinstance(left, str) else left
        right = len(right) if isinstance(right, str) else right
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise RuntimeFault(
                        "integer division by zero", 136, "Floating point exception (core dumped)\n"
                    )
                return int(left / right)  # C truncating division
            if float(right) == 0.0:
                return float("inf") if left > 0 else (float("-inf") if left < 0 else float("nan"))
            return left / right
        if op == "%":
            lhs, rhs = int(left), int(right)
            if rhs == 0:
                raise RuntimeFault(
                    "integer modulo by zero", 136, "Floating point exception (core dumped)\n"
                )
            return int(math_fmod(lhs, rhs))
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == "<<":
            return int(left) << (int(right) & 63)
        if op == ">>":
            return int(left) >> (int(right) & 63)
    except TypeError:
        raise segv_fault(f"invalid operands to binary '{op}'") from None
    raise RuntimeFault(f"unsupported binary operator {op!r}", 1, "")


def pointer_arith(op: str, left, right):
    if op == "+" and isinstance(left, Pointer) and isinstance(right, (int, float)):
        return left.add(int(right))
    if op == "+" and isinstance(right, Pointer) and isinstance(left, (int, float)):
        return right.add(int(left))
    if op == "-" and isinstance(left, Pointer) and isinstance(right, (int, float)):
        return left.add(-int(right))
    if op == "-" and isinstance(left, Pointer) and isinstance(right, Pointer):
        return (left.byte_offset - right.byte_offset) // max(left.elem_size, 1)
    if op in ("==", "!="):
        same = (
            isinstance(left, Pointer)
            and isinstance(right, Pointer)
            and left.block is right.block
            and left.byte_offset == right.byte_offset
        )
        if isinstance(right, (int, float)) and right == 0:
            same = False
        if isinstance(left, (int, float)) and left == 0:
            same = False
        return (1 if same else 0) if op == "==" else (0 if same else 1)
    if op in ("<", "<=", ">", ">="):
        lo = left.byte_offset if isinstance(left, Pointer) else int(left)
        ro = right.byte_offset if isinstance(right, Pointer) else int(right)
        return 1 if eval(f"{lo} {op} {ro}") else 0  # noqa: S307 - two ints
    raise segv_fault(f"invalid pointer arithmetic '{op}'")


def combine_compound(op: str, left, right):
    """The combining step of ``lhs op= rhs`` (slightly different rules
    from :func:`combine_binary`, preserved exactly)."""
    if isinstance(left, CArray):
        left = left.pointer()
    if isinstance(left, Pointer) or isinstance(right, Pointer):
        return pointer_arith(op, left, right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise RuntimeFault(
                    "integer division by zero", 136, "Floating point exception (core dumped)\n"
                )
            return int(left / right)
        if float(right) == 0.0:
            return float("inf")
        return left / right
    if op == "%":
        if int(right) == 0:
            raise RuntimeFault(
                "integer modulo by zero", 136, "Floating point exception (core dumped)\n"
            )
        return int(math_fmod(int(left), int(right)))
    if op == "&":
        return int(left) & int(right)
    if op == "|":
        return int(left) | int(right)
    if op == "^":
        return int(left) ^ int(right)
    if op == "<<":
        return int(left) << (int(right) & 63)
    if op == ">>":
        return int(left) >> (int(right) & 63)
    raise RuntimeFault(f"unsupported compound assignment {op!r}=", 1, "")


def unary_value(op: str, value):
    """Apply a value-producing unary operator (``- + ! ~``)."""
    if value is UNINIT:
        raise segv_fault("use of uninitialized value")
    if op == "-":
        return -value
    if op == "+":
        return value
    if op == "!":
        return 0 if truthy(value) else 1
    if op == "~":
        return ~int(value)
    raise RuntimeFault(f"unsupported unary operator {op!r}", 1, "")


def shadow_value(value, device_block: HeapBlock):
    """Rebind an aggregate value to its device copy for a compute region."""
    if isinstance(value, CArray):
        return CArray(value.elem_type, value.dims, device_block)
    if isinstance(value, Pointer):
        return Pointer(device_block, value.byte_offset, value.pointee)
    return value


class Interpreter:
    """Interpret one translation unit. One instance per program run.

    ``backend`` selects the evaluator: ``"walk"`` is the tree-walker in
    this module, ``"closure"`` the lowered-closure backend from
    :mod:`repro.runtime.compilebody`, ``"codegen"`` the generated-code
    backend from :mod:`repro.runtime.codegen`.  All produce
    byte-identical observables including ``steps``.
    """

    def __init__(
        self,
        unit: ast.TranslationUnit,
        step_limit: int = 2_000_000,
        backend: str = DEFAULT_BACKEND,
    ):
        if backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"backend must be one of {EXECUTION_BACKENDS}, got {backend!r}"
            )
        self.unit = unit
        self.step_limit = step_limit
        self.backend = backend
        #: step counter as a one-cell list so the closure backend can
        #: capture it in cells while builtins (clock(), omp_get_wtime())
        #: still observe live values through the ``steps`` property
        self._step_state: list[int] = [0]
        self.stdout: list[str] = []
        self.stderr: list[str] = []
        self.heap: list[HeapBlock] = []
        self.device = DeviceEnv()
        self.builtins = Builtins(self)
        self.globals = Environment()
        self.in_compute_region = False
        self.in_parallel_region = False
        self.omp_num_threads = 4
        self._call_depth = 0
        for name, value in _RUNTIME_CONSTANTS.items():
            self.globals.declare(name, value)

    @property
    def steps(self) -> int:
        return self._step_state[0]

    @steps.setter
    def steps(self, value: int) -> None:
        self._step_state[0] = value

    # ------------------------------------------------------------------

    #: recursion headroom so the interpreter's own depth-200 guard — not
    #: the host's RecursionError — is what deep C recursion hits, in both
    #: backends (the walker burns ~15 host frames per C call).  Raised
    #: monotonically and never restored: a set/restore pair would race
    #: between pipeline worker threads sharing the process-global limit.
    _HOST_RECURSION_HEADROOM = 30_000

    def run(self) -> int:
        """Execute main(); return the process return code."""
        if sys.getrecursionlimit() < self._HOST_RECURSION_HEADROOM:
            sys.setrecursionlimit(self._HOST_RECURSION_HEADROOM)
        main = self.unit.function("main")
        if main is None:
            raise RuntimeFault("no main()", 127, "error: no entry point\n")
        # Globals execute through the tree-walker in both backends: they
        # run once, and the walker is the executable spec for their
        # (identical) step accounting.
        for decl in self.unit.globals:
            self._exec_declaration(decl, self.globals)
        try:
            if self.backend == "closure":
                from repro.runtime.compilebody import call_main

                result = call_main(self)
            elif self.backend == "codegen":
                from repro.runtime.codegen import call_main as codegen_main

                result = codegen_main(self)
            else:
                result = self._call_function(main, [])
        except ExitProgram as exc:
            return exc.code & 0xFF
        if result is None or isinstance(result, (CArray, Pointer)) or result is UNINIT:
            return 0
        return int(result) & 0xFF

    # ------------------------------------------------------------------

    def _tick(self) -> None:
        state = self._step_state
        state[0] += 1
        if state[0] > self.step_limit:
            raise StepLimitExceeded(self.step_limit)

    def _segv(self, detail: str) -> RuntimeFault:
        return segv_fault(detail)

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------

    def _call_function(self, fn: ast.FunctionDef, args: list):
        self._call_depth += 1
        if self._call_depth > 200:
            self._call_depth -= 1
            raise self._segv("stack overflow (recursion too deep)")
        env = Environment(parent=self.globals)
        for param, value in zip(fn.params, args):
            if param.name:
                ctype = param.ctype.pointer_to() if param.array else param.ctype
                if isinstance(value, CArray):
                    value = value.pointer()
                env.declare(param.name, coerce_to_type(value, ctype), ctype)
        # missing arguments behave as indeterminate
        for param in fn.params[len(args):]:
            if param.name:
                env.declare(param.name, 0, param.ctype)
        try:
            assert fn.body is not None
            self._exec_block(fn.body, env)
        except _ReturnSignal as ret:
            return ret.value
        finally:
            self._call_depth -= 1
        return None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _exec_block(self, block: ast.Compound, parent: Environment) -> None:
        env = Environment(parent=parent)
        for stmt in block.body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: Environment) -> None:
        self._tick()
        if isinstance(stmt, ast.Declaration):
            self._exec_declaration(stmt, env)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.Compound):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.If):
            if truthy(self._eval(stmt.cond, env)):
                self._exec_stmt(stmt.then, env)
            elif stmt.otherwise is not None:
                self._exec_stmt(stmt.otherwise, env)
        elif isinstance(stmt, ast.While):
            while truthy(self._eval(stmt.cond, env)):
                self._tick()
                try:
                    self._exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                self._tick()
                try:
                    self._exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not truthy(self._eval(stmt.cond, env)):
                    break
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, env) if stmt.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.DirectiveStmt):
            self._exec_directive(stmt, env)
        else:  # pragma: no cover - parser produces no other nodes
            raise RuntimeFault(f"unsupported statement {type(stmt).__name__}", 1, "")

    def _exec_for(self, stmt: ast.For, env: Environment) -> None:
        loop_env = Environment(parent=env)
        if stmt.init is not None:
            self._exec_stmt(stmt.init, loop_env)
        while stmt.cond is None or truthy(self._eval(stmt.cond, loop_env)):
            self._tick()
            try:
                self._exec_stmt(stmt.body, loop_env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self._eval(stmt.step, loop_env)

    def _exec_declaration(self, decl: ast.Declaration, env: Environment) -> None:
        for d in decl.declarators:
            if d.is_array:
                dims: list[int] = []
                for dim in d.array_dims:
                    if dim is None:
                        dims.append(0)
                    else:
                        dims.append(max(0, int(self._eval(dim, env))))
                arr = CArray(d.ctype, dims)
                if isinstance(d.init, ast.InitList):
                    flat = self._flatten_init(d.init, env)
                    ptr = arr.pointer()
                    for i, value in enumerate(flat[: arr.flat_length()]):
                        ptr.add(i).store(coerce_to_type(value, d.ctype))
                env.declare(d.name, arr, d.ctype.pointer_to())
            else:
                if d.init is not None:
                    value = self._eval(d.init, env)
                    value = coerce_to_type(value, d.ctype)
                elif d.ctype.is_pointer:
                    value = UNINIT
                else:
                    value = 0.0 if d.ctype.is_floating else 0
                env.declare(d.name, value, d.ctype)

    def _flatten_init(self, init: ast.InitList, env: Environment) -> list:
        flat: list = []
        for item in init.items:
            if isinstance(item, ast.InitList):
                flat.extend(self._flatten_init(item, env))
            else:
                flat.append(self._eval(item, env))
        return flat

    # ------------------------------------------------------------------
    # directives
    # ------------------------------------------------------------------

    def _exec_directive(self, stmt: ast.DirectiveStmt, env: Environment) -> None:
        directive = stmt.directive
        if not isinstance(directive, Directive):
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)
            return
        if directive.model == "acc":
            self._exec_acc(stmt, directive, env)
        else:
            self._exec_omp(stmt, directive, env)

    # -- OpenACC -----------------------------------------------------------

    _ACC_COMPUTE = frozenset(
        {"parallel", "kernels", "serial", "parallel loop", "kernels loop", "serial loop"}
    )

    def _exec_acc(self, stmt: ast.DirectiveStmt, d: Directive, env: Environment) -> None:
        if d.has_clause("if"):
            cond_text = d.clause("if").argument or "1"
            if not self._eval_clause_scalar(cond_text, env):
                if stmt.construct is not None:
                    self._exec_stmt(stmt.construct, env)
                return
        if d.name in self._ACC_COMPUTE:
            self._run_mapped_region(
                stmt, d, env, model="acc", compute=True, reduction_shared=self._reduction_vars(d)
            )
        elif d.name == "data":
            self._run_mapped_region(stmt, d, env, model="acc", compute=False)
        elif d.name == "host_data":
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)
        elif d.name == "enter data":
            for clause in d.clauses:
                sem = ACC_CLAUSE_SEMANTICS.get(clause.name)
                if sem is None:
                    continue
                enter_copy, _, _ = sem
                for name in clause.variables():
                    block = block_of(self._lookup_aggregate(name, env))
                    if block is not None:
                        self.device.map_block(block, copyin=enter_copy)
        elif d.name == "exit data":
            finalize = d.has_clause("finalize")
            for clause in d.clauses:
                if clause.name not in ("copyout", "delete", "detach"):
                    continue
                for name in clause.variables():
                    block = block_of(self._lookup_aggregate(name, env))
                    if block is not None:
                        self.device.unmap_block(
                            block, copyout=clause.name == "copyout", finalize=finalize
                        )
        elif d.name == "update":
            for clause in d.clauses:
                if clause.name in ("self", "host"):
                    for name in clause.variables():
                        block = block_of(self._lookup_aggregate(name, env))
                        if block is not None:
                            self.device.update_host(block)
                elif clause.name == "device":
                    for name in clause.variables():
                        block = block_of(self._lookup_aggregate(name, env))
                        if block is not None:
                            self.device.update_device(block)
        elif d.name == "loop":
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)
        elif d.name == "atomic":
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)
        elif d.name in ("wait", "init", "shutdown", "set", "cache", "routine", "declare"):
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)
        else:
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)

    # -- OpenMP ------------------------------------------------------------

    _OMP_TARGET_COMPUTE = frozenset(
        {
            "target", "target parallel", "target parallel for",
            "target parallel for simd", "target simd", "target teams",
            "target teams distribute", "target teams distribute simd",
            "target teams distribute parallel for",
            "target teams distribute parallel for simd",
        }
    )
    _OMP_HOST_PARALLEL = frozenset(
        {
            "parallel", "parallel for", "parallel for simd", "for", "for simd",
            "sections", "section", "single", "master", "critical", "task",
            "taskloop", "taskloop simd", "simd", "teams", "distribute",
            "distribute parallel for", "distribute simd", "ordered", "taskgroup",
        }
    )

    def _exec_omp(self, stmt: ast.DirectiveStmt, d: Directive, env: Environment) -> None:
        if d.has_clause("if"):
            cond_text = d.clause("if").argument or "1"
            cond_text = cond_text.split(":")[-1]  # tolerate 'target:' modifier
            if not self._eval_clause_scalar(cond_text, env):
                if stmt.construct is not None:
                    self._exec_stmt(stmt.construct, env)
                return
        if d.name in self._OMP_TARGET_COMPUTE:
            self._run_mapped_region(
                stmt, d, env, model="omp", compute=True, reduction_shared=self._reduction_vars(d)
            )
        elif d.name == "target data":
            self._run_mapped_region(stmt, d, env, model="omp", compute=False)
        elif d.name in ("target enter data", "target exit data"):
            entering = d.name == "target enter data"
            for clause in d.clauses:
                if clause.name != "map":
                    continue
                map_type = (clause.modifier() or ("to" if entering else "from")).split(",")[-1].strip()
                enter_copy, exit_copy = OMP_MAP_SEMANTICS.get(map_type, (False, False))
                for name in clause.variables():
                    block = block_of(self._lookup_aggregate(name, env))
                    if block is None:
                        continue
                    if entering:
                        self.device.map_block(block, copyin=enter_copy)
                    else:
                        self.device.unmap_block(block, copyout=exit_copy)
        elif d.name == "target update":
            for clause in d.clauses:
                if clause.name == "to":
                    for name in clause.variables():
                        block = block_of(self._lookup_aggregate(name, env))
                        if block is not None:
                            self.device.update_device(block)
                elif clause.name == "from":
                    for name in clause.variables():
                        block = block_of(self._lookup_aggregate(name, env))
                        if block is not None:
                            self.device.update_host(block)
        elif d.name in self._OMP_HOST_PARALLEL:
            self._run_host_parallel(stmt, d, env)
        elif d.name == "atomic":
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)
        else:
            # barrier/taskwait/flush/threadprivate/declare target/...: no-ops
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)

    # ------------------------------------------------------------------
    # region machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _reduction_vars(d: Directive) -> set[str]:
        names: set[str] = set()
        for clause in d.clauses:
            if clause.name == "reduction":
                names.update(clause.variables())
        return names

    def _lookup_aggregate(self, name: str, env: Environment):
        holder = env.lookup_env(name)
        return holder.vars[name] if holder is not None else None

    def _eval_clause_scalar(self, text: str, env: Environment) -> bool:
        """Evaluate an if-clause condition expression."""
        from repro.compiler.cparser import Parser
        from repro.compiler.diagnostics import DiagnosticEngine
        from repro.compiler.lexer import Lexer

        diags = DiagnosticEngine()
        tokens = Lexer(text, "<clause>", diags).tokenize()
        expr = Parser(tokens, diags, "<clause>").parse_expression()
        if expr is None or diags.has_errors:
            return True
        try:
            return truthy(self._eval(expr, env))
        except RuntimeFault:
            return True

    def _collect_clause_mappings(
        self, d: Directive, env: Environment, model: str
    ) -> tuple[dict[str, tuple[bool, bool, bool]], set[str]]:
        """Per-variable (enter_copy, exit_copy, require_present) + privates."""
        mappings: dict[str, tuple[bool, bool, bool]] = {}
        privates: set[str] = set()
        for clause in d.clauses:
            if model == "acc" and clause.name in ACC_CLAUSE_SEMANTICS:
                sem = ACC_CLAUSE_SEMANTICS[clause.name]
                for name in clause.variables():
                    mappings[name] = sem
            elif model == "omp" and clause.name == "map":
                map_type = (clause.modifier() or "tofrom").split(",")[-1].strip()
                enter_copy, exit_copy = OMP_MAP_SEMANTICS.get(map_type, (True, True))
                for name in clause.variables():
                    mappings[name] = (enter_copy, exit_copy, False)
            elif clause.name in ("private", "firstprivate", "lastprivate"):
                privates.update(clause.variables())
        return mappings, privates

    def _referenced_aggregates(
        self, construct: ast.Stmt | None, env: Environment, explicit: set[str]
    ) -> list[str]:
        """Aggregates referenced in the construct, minus explicit clauses."""
        if construct is None:
            return []
        names: list[str] = []
        seen: set[str] = set()
        for expr in ast.walk_expressions(construct):
            if isinstance(expr, ast.Identifier) and expr.name not in seen:
                seen.add(expr.name)
                if expr.name in explicit:
                    continue
                value = self._lookup_aggregate(expr.name, env)
                if block_of(value) is not None:
                    names.append(expr.name)
        return names

    def _shadow_value(self, value, device_block: HeapBlock):
        return shadow_value(value, device_block)

    def _run_mapped_region(
        self,
        stmt: ast.DirectiveStmt,
        d: Directive,
        env: Environment,
        model: str,
        compute: bool,
        reduction_shared: set[str] | None = None,
    ) -> None:
        mappings, privates = self._collect_clause_mappings(d, env, model)
        region_env = Environment(parent=env)
        entered: list[tuple[HeapBlock, bool]] = []
        # explicit mappings: enter the present table.  Only *compute*
        # regions rebind names to the device copy — host code between the
        # compute constructs of a data region keeps writing host memory.
        for name, (enter_copy, exit_copy, require_present) in mappings.items():
            value = self._lookup_aggregate(name, env)
            if value is None or value is UNINIT:
                raise self._segv(f"mapping of uninitialized pointer '{name}'")
            block = block_of(value)
            if block is None:
                continue  # scalar in a data clause: firstprivate-like
            if require_present:
                device_block = self.device.require_present(block, name)
            else:
                device_block = self.device.map_block(block, copyin=enter_copy)
                entered.append((block, exit_copy))
            if compute:
                region_env.declare(name, self._shadow_value(value, device_block), env.type_of(name))
        if compute:
            # aggregates referenced in the region but not in a clause:
            # already-present ones see the device copy (present-or-copy
            # semantics); absent ones get an implicit copy.
            for name in self._referenced_aggregates(stmt.construct, env, set(mappings) | privates):
                value = self._lookup_aggregate(name, env)
                block = block_of(value)
                if block is None or block.device:
                    continue
                device_block = self.device.device_block(block)
                if device_block is None:
                    device_block = self.device.map_block(block, copyin=True)
                    entered.append((block, True))  # implicit copy
                region_env.declare(name, self._shadow_value(value, device_block), env.type_of(name))
            # scalars: firstprivate by default, reduction vars stay shared
            reduction_shared = reduction_shared or set()
            snapshot = self._scalar_snapshot(stmt.construct, env, reduction_shared, set(mappings) | privates)
        else:
            snapshot = {}
        prev_compute = self.in_compute_region
        if compute:
            self.in_compute_region = True
        try:
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, region_env)
        finally:
            self.in_compute_region = prev_compute
            for block, copyout in reversed(entered):
                self.device.unmap_block(block, copyout=copyout)
            for name, (holder, value) in snapshot.items():
                holder.vars[name] = value

    def _scalar_snapshot(
        self,
        construct: ast.Stmt | None,
        env: Environment,
        shared: set[str],
        skip: set[str],
    ) -> dict[str, tuple[Environment, object]]:
        """Snapshot scalar values written in a compute region.

        OpenACC/OpenMP default scalars to firstprivate in offloaded
        regions: writes inside the region are not visible after it.
        Variables in reduction clauses keep shared semantics.
        """
        if construct is None:
            return {}
        written: set[str] = set()
        for expr in ast.walk_expressions(construct):
            if isinstance(expr, ast.Assignment) and isinstance(expr.target, ast.Identifier):
                written.add(expr.target.name)
            elif isinstance(expr, ast.UnaryOp) and expr.op in ("++", "--") and isinstance(
                expr.operand, ast.Identifier
            ):
                written.add(expr.operand.name)
        snapshot: dict[str, tuple[Environment, object]] = {}
        for name in written - shared - skip:
            holder = env.lookup_env(name)
            if holder is None:
                continue
            value = holder.vars[name]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                # loop induction variables of region-local loops are declared
                # inside region scope; only outer scalars need the snapshot
                snapshot[name] = (holder, value)
        return snapshot

    def _run_host_parallel(self, stmt: ast.DirectiveStmt, d: Directive, env: Environment) -> None:
        privates: dict[str, tuple[Environment, object]] = {}
        fresh: list[tuple[Environment, str]] = []
        for clause in d.clauses:
            if clause.name in ("private", "firstprivate"):
                for name in clause.variables():
                    holder = env.lookup_env(name)
                    if holder is None:
                        continue
                    privates[name] = (holder, holder.vars[name])
                    if clause.name == "private":
                        value = holder.vars[name]
                        if isinstance(value, float):
                            holder.vars[name] = 0.0
                        elif isinstance(value, int):
                            holder.vars[name] = 0
        prev = self.in_parallel_region
        if d.name.startswith(("parallel", "teams")) or " parallel" in d.name:
            self.in_parallel_region = True
        try:
            if stmt.construct is not None:
                self._exec_stmt(stmt.construct, env)
        finally:
            self.in_parallel_region = prev
            lastprivate = {
                name
                for clause in d.clauses
                if clause.name == "lastprivate"
                for name in clause.variables()
            }
            for name, (holder, value) in privates.items():
                if name not in lastprivate:
                    holder.vars[name] = value
        del fresh

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Environment):
        self._tick()
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.StringLiteral):
            return expr.value
        if isinstance(expr, ast.CharLiteral):
            return ord(expr.value[0]) if expr.value else 0
        if isinstance(expr, ast.Identifier):
            value = env.get(expr.name)
            return value
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, env)
        if isinstance(expr, ast.Conditional):
            if truthy(self._eval(expr.cond, env)):
                return self._eval(expr.then, env)
            return self._eval(expr.otherwise, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Index):
            ref = self._resolve_index(expr, env)
            value = ref.load()
            if value is UNINIT:
                return 0
            return value
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, env)
            if isinstance(value, Pointer) and expr.target_type.is_pointer:
                return value.retag(expr.target_type.pointee())
            if isinstance(value, (Pointer, CArray)):
                return value
            return coerce_to_type(value, expr.target_type)
        if isinstance(expr, ast.SizeOf):
            if expr.target_type is not None:
                return sizeof_type(expr.target_type)
            value = self._eval(expr.operand, env) if expr.operand is not None else 0
            if isinstance(value, CArray):
                return value.block.size
            if isinstance(value, Pointer):
                return 8
            if isinstance(value, float):
                return 8
            return 4
        if isinstance(expr, ast.CommaExpr):
            result = 0
            for part in expr.parts:
                result = self._eval(part, env)
            return result
        if isinstance(expr, ast.Member):
            raise RuntimeFault(
                "struct member access is not supported by this substrate", 1,
                "runtime error: unsupported struct access\n",
            )
        if isinstance(expr, ast.InitList):
            return [self._eval(item, env) for item in expr.items]
        raise RuntimeFault(f"unsupported expression {type(expr).__name__}", 1, "")

    def _eval_binary(self, expr: ast.BinaryOp, env: Environment):
        op = expr.op
        if op == "&&":
            return 1 if truthy(self._eval(expr.left, env)) and truthy(self._eval(expr.right, env)) else 0
        if op == "||":
            return 1 if truthy(self._eval(expr.left, env)) or truthy(self._eval(expr.right, env)) else 0
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return combine_binary(op, left, right)

    def _pointer_arith(self, op: str, left, right):
        return pointer_arith(op, left, right)

    def _eval_unary(self, expr: ast.UnaryOp, env: Environment):
        op = expr.op
        if op in ("++", "--"):
            ref = self._resolve_lvalue(expr.operand, env)
            old = ref.load()
            if old is UNINIT:
                old = 0
            if isinstance(old, Pointer):
                new = old.add(1 if op == "++" else -1)
            else:
                new = old + (1 if op == "++" else -1)
            ref.store(new)
            return new if expr.prefix else old
        if op == "&":
            ref = self._resolve_lvalue(expr.operand, env)
            return ref.address()
        if op == "*":
            value = self._eval(expr.operand, env)
            if value is UNINIT or value == 0 or value is None:
                raise self._segv("dereference of NULL or uninitialized pointer")
            if isinstance(value, CArray):
                value = value.pointer()
            if not isinstance(value, Pointer):
                raise self._segv("dereference of a non-pointer value")
            loaded = value.load()
            return 0 if loaded is UNINIT else loaded
        value = self._eval(expr.operand, env)
        return unary_value(op, value)

    def _eval_assignment(self, expr: ast.Assignment, env: Environment):
        ref = self._resolve_lvalue(expr.target, env)
        value = self._eval(expr.value, env)
        if expr.op == "=":
            ref.store(value)
            return value
        old = ref.load()
        if old is UNINIT:
            old = 0
        binop = expr.op[:-1]
        combined = self._apply_binop(binop, old, value)
        ref.store(combined)
        return combined

    def _apply_binop(self, op: str, left, right):
        return combine_compound(op, left, right)

    def _eval_call(self, expr: ast.Call, env: Environment):
        fn = self.unit.function(expr.callee)
        args = [self._eval(arg, env) for arg in expr.args]
        if fn is not None:
            return self._call_function(fn, args)
        builtin = self.builtins.lookup(expr.callee)
        if builtin is not None:
            try:
                return builtin(*args)
            except (TypeError, IndexError) as exc:
                raise RuntimeFault(
                    f"bad call to {expr.callee}: {exc}", 139, "Segmentation fault (core dumped)\n"
                ) from exc
        # a value bound to the name? (function pointers unsupported)
        raise RuntimeFault(
            f"call to undefined function '{expr.callee}'", 127,
            f"symbol lookup error: undefined symbol: {expr.callee}\n",
        )

    # ------------------------------------------------------------------
    # lvalues
    # ------------------------------------------------------------------

    def _resolve_lvalue(self, expr: ast.Expr, env: Environment) -> "_Ref":
        if isinstance(expr, ast.Identifier):
            holder = env.lookup_env(expr.name)
            if holder is None:
                raise self._segv(f"assignment to unknown symbol '{expr.name}'")
            return _VarRef(holder, expr.name)
        if isinstance(expr, ast.Index):
            return self._resolve_index(expr, env)
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            value = self._eval(expr.operand, env)
            if value is UNINIT or value == 0 or value is None:
                raise self._segv("dereference of NULL or uninitialized pointer")
            if isinstance(value, CArray):
                value = value.pointer()
            if not isinstance(value, Pointer):
                raise self._segv("dereference of a non-pointer value")
            return _PtrRef(value)
        raise self._segv(f"expression is not assignable ({type(expr).__name__})")

    def _resolve_index(self, expr: ast.Index, env: Environment) -> "_Ref":
        # collect the index chain down to the base expression
        indices: list[int] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            idx_val = self._eval(node.index, env)
            if idx_val is UNINIT:
                raise self._segv("array subscript is uninitialized")
            indices.append(int(idx_val))
            node = node.base
        indices.reverse()
        base = self._eval(node, env)
        if base is UNINIT or base is None or base == 0:
            raise self._segv("subscript of NULL or uninitialized pointer")
        try:
            if isinstance(base, CArray):
                ptr = base.subarray_pointer(indices)
                return _PtrRef(ptr)
            if isinstance(base, Pointer):
                ptr = base
                for idx in indices:
                    ptr = ptr.index(idx)
                return _PtrRef(ptr)
        except MemoryFault as exc:
            raise self._segv(str(exc)) from exc
        raise self._segv("subscript applied to a non-array value")


def math_fmod(a: int, b: int) -> int:
    """C's % (truncated toward zero), not Python's floored %."""
    result = abs(a) % abs(b)
    return -result if a < 0 else result


class _Ref:
    def load(self):  # pragma: no cover - interface
        raise NotImplementedError

    def store(self, value) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def address(self):  # pragma: no cover - interface
        raise NotImplementedError


class _VarRef(_Ref):
    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name

    def load(self):
        return self.env.vars[self.name]

    def store(self, value) -> None:
        ctype = self.env.types.get(self.name)
        self.env.vars[self.name] = coerce_to_type(value, ctype) if ctype is not None else value

    def address(self):
        value = self.env.vars[self.name]
        if isinstance(value, CArray):
            return value.pointer()
        # box the scalar in a one-cell block so &x works for update clauses
        ctype = self.env.types.get(self.name) or ast.DOUBLE
        block = HeapBlock(size=sizeof_type(ctype), label="addressed-scalar")
        block.cells[0] = value
        return Pointer(block, 0, ctype)


class _PtrRef(_Ref):
    def __init__(self, ptr: Pointer):
        self.ptr = ptr

    def load(self):
        try:
            return self.ptr.load()
        except MemoryFault as exc:
            raise RuntimeFault(str(exc), 139, "Segmentation fault (core dumped)\n") from exc

    def store(self, value) -> None:
        try:
            self.ptr.store(coerce_to_type(value, self.ptr.pointee))
        except MemoryFault as exc:
            raise RuntimeFault(str(exc), 139, "Segmentation fault (core dumped)\n") from exc

    def address(self):
        return self.ptr
