"""C library and OpenACC/OpenMP runtime builtins for the interpreter.

The dispatch table maps callee names to Python implementations that
operate on the interpreter's state (output buffers, heap, RNG, device
environment).  ``printf`` implements the conversion subset the corpus
uses (``%d %u %ld %f %lf %g %e %s %c %zu %x %%`` with width/precision).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.compiler.astnodes import CHAR, CType, DOUBLE
from repro.runtime.values import CArray, HeapBlock, MemoryFault, Pointer, UNINIT, truthy

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.interpreter import Interpreter


class ExitProgram(Exception):
    """Raised by exit()/abort() to unwind the interpreter."""

    def __init__(self, code: int):
        super().__init__(code)
        self.code = code


_FORMAT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z|t|L)?[diouxXeEfgGcspn%]")


def format_printf(fmt: str, args: list) -> str:
    """Render a printf format string against evaluated arguments."""
    out: list[str] = []
    arg_index = 0
    pos = 0
    for match in _FORMAT_RE.finditer(fmt):
        out.append(fmt[pos : match.start()])
        pos = match.end()
        spec = match.group(0)
        conv = spec[-1]
        if conv == "%":
            out.append("%")
            continue
        value = args[arg_index] if arg_index < len(args) else 0
        arg_index += 1
        # strip length modifiers for Python's formatter
        pyspec = re.sub(r"(hh|h|ll|l|z|t|L)(?=[diouxXeEfgGcs])", "", spec)
        try:
            if conv in "diu":
                pyspec = pyspec[:-1] + "d"
                out.append(pyspec % int(value))
            elif conv in "oxX":
                out.append(pyspec % int(value))
            elif conv in "eEfgG":
                out.append(pyspec % float(value))
            elif conv == "c":
                out.append(pyspec % (chr(int(value)) if isinstance(value, (int, float)) else str(value)[0]))
            elif conv == "s":
                out.append(pyspec % _as_string(value))
            elif conv == "p":
                out.append("0x%x" % (id(value) & 0xFFFFFFFF))
            else:
                out.append(str(value))
        except (TypeError, ValueError):
            out.append(str(value))
    out.append(fmt[pos:])
    return "".join(out)


def _as_string(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, Pointer):
        # read a NUL-terminated char buffer
        chars: list[str] = []
        ptr = value
        for _ in range(4096):
            cell = ptr.load()
            code = int(cell) if not isinstance(cell, (Pointer, CArray)) else 0
            if code == 0:
                break
            chars.append(chr(code & 0xFF))
            ptr = ptr.add(1)
        return "".join(chars)
    return str(value)


@dataclass
class LCG:
    """The glibc-style LCG behind rand()/srand() — deterministic."""

    state: int = 1

    def srand(self, seed: int) -> None:
        self.state = seed & 0xFFFFFFFF

    def rand(self) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state


@dataclass
class Builtins:
    """Builtin function dispatch bound to one interpreter instance."""

    interp: "Interpreter"
    rng: LCG = field(default_factory=LCG)

    def lookup(self, name: str) -> Callable | None:
        return getattr(self, f"fn_{name}", None) or _MATH_WRAPPERS.get(name)

    # ------------------------------------------------------------- stdio

    def fn_printf(self, fmt, *args):
        text = format_printf(_as_string(fmt), list(args))
        self.interp.stdout.append(text)
        return len(text)

    def fn_puts(self, text):
        rendered = _as_string(text)
        self.interp.stdout.append(rendered + "\n")
        return len(rendered) + 1

    def fn_putchar(self, code):
        self.interp.stdout.append(chr(int(code) & 0xFF))
        return int(code)

    def fn_fprintf(self, stream, fmt, *args):
        text = format_printf(_as_string(fmt), list(args))
        # 'stderr' constant resolves to the int 0 placeholder; route by name
        self.interp.stderr.append(text)
        return len(text)

    def fn___fortran_print(self, *args):
        parts = []
        for arg in args:
            if isinstance(arg, float):
                parts.append(f"{arg:.6f}")
            else:
                parts.append(_as_string(arg))
        self.interp.stdout.append(" ".join(parts) + "\n")
        return 0

    # ------------------------------------------------------------- stdlib

    def fn_malloc(self, size):
        nbytes = int(size)
        if nbytes < 0:
            raise MemoryFault(f"malloc of negative size {nbytes}")
        if nbytes > 1 << 30:
            return 0  # allocation failure, like a real allocator under ulimit
        block = HeapBlock(size=nbytes, label="heap")
        self.interp.heap.append(block)
        return Pointer(block, 0, DOUBLE)

    def fn_calloc(self, count, size):
        ptr = self.fn_malloc(int(count) * int(size))
        return ptr

    def fn_realloc(self, old, size):
        new = self.fn_malloc(size)
        if isinstance(old, Pointer) and isinstance(new, Pointer):
            for offset, value in old.block.cells.items():
                if offset < new.block.size:
                    new.block.cells[offset] = value
        return new

    def fn_free(self, ptr):
        if isinstance(ptr, Pointer):
            if ptr.block.freed:
                raise MemoryFault("double free detected")
            ptr.block.freed = True
        elif ptr not in (0, None, UNINIT):
            raise MemoryFault("free of a non-heap pointer")
        return 0

    def fn_memset(self, dest, value, nbytes):
        if not isinstance(dest, (Pointer, CArray)):
            raise MemoryFault("memset target is not a pointer")
        ptr = dest.pointer() if isinstance(dest, CArray) else dest
        byte_val = int(value) & 0xFF
        filled = byte_val  # cell-granular fill approximation
        count = int(nbytes) // max(ptr.elem_size, 1)
        for i in range(count):
            ptr.add(i).store(float(filled) if ptr.pointee.is_floating else filled)
        return dest

    def fn_memcpy(self, dest, src, nbytes):
        dptr = dest.pointer() if isinstance(dest, CArray) else dest
        sptr = src.pointer() if isinstance(src, CArray) else src
        if not isinstance(dptr, Pointer) or not isinstance(sptr, Pointer):
            raise MemoryFault("memcpy with a non-pointer argument")
        count = int(nbytes) // max(dptr.elem_size, 1)
        for i in range(count):
            dptr.add(i).store(sptr.add(i).load())
        return dest

    def fn_exit(self, code=0):
        raise ExitProgram(int(code))

    def fn_abort(self):
        raise ExitProgram(134)  # SIGABRT

    def fn_assert(self, cond):
        if not truthy(cond):
            self.interp.stderr.append("Assertion failed\n")
            raise ExitProgram(134)
        return 0

    def fn_rand(self):
        return self.rng.rand()

    def fn_srand(self, seed):
        self.rng.srand(int(seed))
        return 0

    def fn_atoi(self, text):
        try:
            return int(_as_string(text).strip() or 0)
        except ValueError:
            return 0

    def fn_atof(self, text):
        try:
            return float(_as_string(text).strip() or 0)
        except ValueError:
            return 0.0

    def fn_time(self, _ptr=0):
        return 1_700_000_000  # frozen clock: determinism beats realism here

    def fn_clock(self):
        return self.interp.steps  # monotone with work done

    def fn_strlen(self, text):
        return len(_as_string(text))

    def fn_strcmp(self, a, b):
        sa, sb = _as_string(a), _as_string(b)
        return (sa > sb) - (sa < sb)

    def fn_isnan(self, x):
        return 1 if isinstance(x, float) and math.isnan(x) else 0

    def fn_isinf(self, x):
        return 1 if isinstance(x, float) and math.isinf(x) else 0

    def fn___to_real(self, x):
        return float(x)

    def fn___to_int(self, x):
        return int(x)

    # ------------------------------------------------------------- OpenACC

    def fn_acc_get_num_devices(self, _dtype=0):
        return 1

    def fn_acc_set_device_type(self, _dtype=0):
        return 0

    def fn_acc_get_device_type(self):
        return 1  # acc_device_nvidia

    def fn_acc_set_device_num(self, _num=0, _dtype=0):
        return 0

    def fn_acc_get_device_num(self, _dtype=0):
        return 0

    def fn_acc_init(self, _dtype=0):
        return 0

    def fn_acc_shutdown(self, _dtype=0):
        return 0

    def fn_acc_on_device(self, _dtype=0):
        return 1 if self.interp.in_compute_region else 0

    def fn_acc_wait(self, _async=0):
        return 0

    def fn_acc_wait_all(self):
        return 0

    def fn_acc_async_test(self, _async=0):
        return 1

    def fn_acc_async_test_all(self):
        return 1

    def fn_acc_is_present(self, value, _size=0):
        from repro.runtime.device import block_of

        block = block_of(value)
        return 1 if block is not None and self.interp.device.is_present(block) else 0

    def fn_acc_copyin(self, value, _size=0):
        from repro.runtime.device import block_of

        block = block_of(value)
        if block is not None:
            self.interp.device.map_block(block, copyin=True)
        return value

    def fn_acc_create(self, value, _size=0):
        from repro.runtime.device import block_of

        block = block_of(value)
        if block is not None:
            self.interp.device.map_block(block, copyin=False)
        return value

    def fn_acc_copyout(self, value, _size=0):
        from repro.runtime.device import block_of

        block = block_of(value)
        if block is not None:
            self.interp.device.unmap_block(block, copyout=True)
        return 0

    def fn_acc_delete(self, value, _size=0):
        from repro.runtime.device import block_of

        block = block_of(value)
        if block is not None:
            self.interp.device.unmap_block(block, copyout=False)
        return 0

    def fn_acc_update_device(self, value, _size=0):
        from repro.runtime.device import block_of

        block = block_of(value)
        if block is not None:
            self.interp.device.update_device(block)
        return 0

    def fn_acc_update_self(self, value, _size=0):
        from repro.runtime.device import block_of

        block = block_of(value)
        if block is not None:
            self.interp.device.update_host(block)
        return 0

    def fn_acc_malloc(self, size):
        ptr = self.fn_malloc(size)
        if isinstance(ptr, Pointer):
            ptr.block.device = True
        return ptr

    def fn_acc_free(self, ptr):
        return self.fn_free(ptr)

    # ------------------------------------------------------------- OpenMP

    def fn_omp_get_num_threads(self):
        return self.interp.omp_num_threads if self.interp.in_parallel_region else 1

    def fn_omp_get_max_threads(self):
        return self.interp.omp_num_threads

    def fn_omp_get_thread_num(self):
        return 0  # serial semantics: thread 0's view

    def fn_omp_set_num_threads(self, n):
        self.interp.omp_num_threads = max(1, int(n))
        return 0

    def fn_omp_get_num_procs(self):
        return 8

    def fn_omp_in_parallel(self):
        return 1 if self.interp.in_parallel_region else 0

    def fn_omp_set_dynamic(self, _flag):
        return 0

    def fn_omp_get_dynamic(self):
        return 0

    def fn_omp_get_wtime(self):
        return self.interp.steps * 1e-7

    def fn_omp_get_wtick(self):
        return 1e-9

    def fn_omp_get_num_devices(self):
        return 1

    def fn_omp_get_default_device(self):
        return 0

    def fn_omp_set_default_device(self, _n):
        return 0

    def fn_omp_is_initial_device(self):
        return 0 if self.interp.in_compute_region else 1

    def fn_omp_get_team_num(self):
        return 0

    def fn_omp_get_num_teams(self):
        return 1

    def fn_omp_get_level(self):
        return 1 if self.interp.in_parallel_region else 0

    def fn_omp_get_ancestor_thread_num(self, _level=0):
        return 0

    def fn_omp_get_team_size(self, _level=0):
        return self.interp.omp_num_threads

    def fn_omp_target_alloc(self, size, _device=0):
        return self.fn_acc_malloc(size)

    def fn_omp_target_free(self, ptr, _device=0):
        return self.fn_free(ptr)

    def fn_omp_target_is_present(self, value, _device=0):
        return self.fn_acc_is_present(value)

    def fn_omp_init_lock(self, _lock):
        return 0

    def fn_omp_set_lock(self, _lock):
        return 0

    def fn_omp_unset_lock(self, _lock):
        return 0

    def fn_omp_destroy_lock(self, _lock):
        return 0

    def fn_omp_test_lock(self, _lock):
        return 1


def _wrap_math(fn: Callable[..., float]) -> Callable:
    def wrapper(*args):
        try:
            return float(fn(*(float(a) for a in args)))
        except (ValueError, OverflowError):
            return float("nan")

    return wrapper


_MATH_WRAPPERS: dict[str, Callable] = {
    "fabs": _wrap_math(abs),
    "fabsf": _wrap_math(abs),
    "sqrt": _wrap_math(math.sqrt),
    "sqrtf": _wrap_math(math.sqrt),
    "pow": _wrap_math(math.pow),
    "powf": _wrap_math(math.pow),
    "exp": _wrap_math(math.exp),
    "expf": _wrap_math(math.exp),
    "log": _wrap_math(math.log),
    "logf": _wrap_math(math.log),
    "sin": _wrap_math(math.sin),
    "cos": _wrap_math(math.cos),
    "tan": _wrap_math(math.tan),
    "floor": _wrap_math(math.floor),
    "ceil": _wrap_math(math.ceil),
    "fmax": _wrap_math(max),
    "fmin": _wrap_math(min),
    "fmod": _wrap_math(math.fmod),
    "abs": lambda x: abs(int(x)),
    "labs": lambda x: abs(int(x)),
}
