"""The execution stage: run a compiled unit, capture observables.

:class:`Executor` is the runtime analog of the driver — it takes a
:class:`~repro.compiler.driver.CompileResult` and produces an
:class:`ExecutionResult` carrying the (return code, stdout, stderr)
triple the validation pipeline and the agent-based judge consume.

``backend`` selects the interpreter's evaluator — any name in
:data:`repro.runtime.interpreter.EXECUTION_BACKENDS` (``"walk"``
tree-walker, the default ``"closure"`` compiled-closure backend, or
``"codegen"`` generated code objects); all are observationally
identical, which ``tests/test_backend_equivalence.py`` asserts
corpus-wide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.driver import CompileResult
from repro.runtime.builtins import ExitProgram
from repro.runtime.device import DataMappingError
from repro.runtime.interpreter import DEFAULT_BACKEND, Interpreter, RuntimeFault
from repro.runtime.values import MemoryFault


@dataclass
class ExecutionResult:
    """Observable outcome of one program run."""

    returncode: int
    stdout: str
    stderr: str
    steps: int = 0
    timed_out: bool = False
    fault: str | None = None

    @property
    def ok(self) -> bool:
        return self.returncode == 0


class Executor:
    """Runs compiled translation units with a bounded step budget."""

    def __init__(self, step_limit: int = 2_000_000, backend: str = DEFAULT_BACKEND):
        self.step_limit = step_limit
        self.backend = backend

    def run(self, compiled: CompileResult) -> ExecutionResult:
        """Execute the program; never raises on program misbehaviour."""
        if not compiled.ok or compiled.unit is None:
            return ExecutionResult(
                returncode=126,
                stdout="",
                stderr="cannot execute: compilation failed\n",
                fault="not-compiled",
            )
        interp = Interpreter(
            compiled.unit, step_limit=self.step_limit, backend=self.backend
        )
        try:
            rc = interp.run()
        except RuntimeFault as fault:
            return self._finish(
                interp, fault.returncode, extra_stderr=fault.stderr,
                fault=str(fault), timed_out=fault.returncode == 124,
            )
        except DataMappingError as fault:
            return self._finish(
                interp, 1, extra_stderr=f"FATAL ERROR: {fault}\n", fault=str(fault)
            )
        except MemoryFault as fault:
            return self._finish(
                interp, 139, extra_stderr="Segmentation fault (core dumped)\n",
                fault=str(fault),
            )
        except ExitProgram as exc:
            return self._finish(interp, exc.code & 0xFF)
        except RecursionError:
            # the host interpreter gave out first; the program's own
            # stderr is dropped, matching a hard crash
            return self._finish(
                interp, 139, extra_stderr="Segmentation fault (core dumped)\n",
                fault="host recursion limit", program_stderr=False,
            )
        return self._finish(interp, rc)

    @staticmethod
    def _finish(
        interp: Interpreter,
        returncode: int,
        extra_stderr: str = "",
        fault: str | None = None,
        timed_out: bool = False,
        program_stderr: bool = True,
    ) -> ExecutionResult:
        """Build the result triple in ONE place.

        Every exit path — clean or any fault — funnels through here, so
        a future except arm cannot forget ``steps=`` or diverge on how
        stdout/stderr are joined.
        """
        return ExecutionResult(
            returncode=returncode,
            stdout="".join(interp.stdout),
            stderr=("".join(interp.stderr) if program_stderr else "") + extra_stderr,
            steps=interp.steps,
            timed_out=timed_out,
            fault=fault,
        )
