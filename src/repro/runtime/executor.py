"""The execution stage: run a compiled unit, capture observables.

:class:`Executor` is the runtime analog of the driver — it takes a
:class:`~repro.compiler.driver.CompileResult` and produces an
:class:`ExecutionResult` carrying the (return code, stdout, stderr)
triple the validation pipeline and the agent-based judge consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.driver import CompileResult
from repro.runtime.builtins import ExitProgram
from repro.runtime.device import DataMappingError
from repro.runtime.interpreter import Interpreter, RuntimeFault
from repro.runtime.values import MemoryFault


@dataclass
class ExecutionResult:
    """Observable outcome of one program run."""

    returncode: int
    stdout: str
    stderr: str
    steps: int = 0
    timed_out: bool = False
    fault: str | None = None

    @property
    def ok(self) -> bool:
        return self.returncode == 0


class Executor:
    """Runs compiled translation units with a bounded step budget."""

    def __init__(self, step_limit: int = 2_000_000):
        self.step_limit = step_limit

    def run(self, compiled: CompileResult) -> ExecutionResult:
        """Execute the program; never raises on program misbehaviour."""
        if not compiled.ok or compiled.unit is None:
            return ExecutionResult(
                returncode=126,
                stdout="",
                stderr="cannot execute: compilation failed\n",
                fault="not-compiled",
            )
        interp = Interpreter(compiled.unit, step_limit=self.step_limit)
        try:
            rc = interp.run()
        except RuntimeFault as fault:
            return ExecutionResult(
                returncode=fault.returncode,
                stdout="".join(interp.stdout),
                stderr="".join(interp.stderr) + fault.stderr,
                steps=interp.steps,
                timed_out=fault.returncode == 124,
                fault=str(fault),
            )
        except DataMappingError as fault:
            return ExecutionResult(
                returncode=1,
                stdout="".join(interp.stdout),
                stderr="".join(interp.stderr)
                + f"FATAL ERROR: {fault}\n",
                steps=interp.steps,
                fault=str(fault),
            )
        except MemoryFault as fault:
            return ExecutionResult(
                returncode=139,
                stdout="".join(interp.stdout),
                stderr="".join(interp.stderr) + "Segmentation fault (core dumped)\n",
                steps=interp.steps,
                fault=str(fault),
            )
        except ExitProgram as exc:
            return ExecutionResult(
                returncode=exc.code & 0xFF,
                stdout="".join(interp.stdout),
                stderr="".join(interp.stderr),
                steps=interp.steps,
            )
        except RecursionError:
            return ExecutionResult(
                returncode=139,
                stdout="".join(interp.stdout),
                stderr="Segmentation fault (core dumped)\n",
                steps=interp.steps,
                fault="host recursion limit",
            )
        return ExecutionResult(
            returncode=rc,
            stdout="".join(interp.stdout),
            stderr="".join(interp.stderr),
            steps=interp.steps,
        )
