"""Runtime value model for the interpreter.

Scalars are plain Python ``int``/``float``.  Aggregates:

* :class:`HeapBlock` — a ``malloc``'d region, byte-sized with typed
  cell access;
* :class:`CArray` — a declared array (possibly multi-dimensional);
* :class:`Pointer` — (block, element offset) with the pointee type;
* :data:`UNINIT` — the value of an uninitialized pointer; dereferencing
  it is the simulated segfault.

Sizes follow the LP64 model (int 4, long 8, pointer 8, float 4,
double 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.compiler.astnodes import CType

TYPE_SIZES = {
    "char": 1,
    "unsigned char": 1,
    "short": 2,
    "unsigned short": 2,
    "int": 4,
    "unsigned int": 4,
    "long": 8,
    "unsigned long": 8,
    "long long": 8,
    "unsigned long long": 8,
    "float": 4,
    "double": 8,
    "long double": 16,
    "void": 1,
}

POINTER_SIZE = 8


def sizeof_type(ctype: CType) -> int:
    if ctype.is_pointer:
        return POINTER_SIZE
    return TYPE_SIZES.get(ctype.base, 8)


class _Uninitialized:
    """Singleton marker for indeterminate values."""

    _instance: "_Uninitialized | None" = None

    def __new__(cls) -> "_Uninitialized":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<uninitialized>"

    def __bool__(self) -> bool:
        return False


UNINIT = _Uninitialized()


@dataclass
class HeapBlock:
    """One allocation: ``size`` bytes, a sparse typed cell store.

    Cells are keyed by byte offset; each access supplies the element
    size, so a block written through ``double*`` and read back through
    ``double*`` round-trips exactly.  ``freed`` supports use-after-free
    detection.
    """

    size: int
    label: str = "heap"
    cells: dict[int, Union[int, float, "Pointer", _Uninitialized]] = field(default_factory=dict)
    freed: bool = False
    device: bool = False

    def load(self, byte_offset: int, elem_size: int):
        if self.freed:
            raise MemoryFault(f"read from freed {self.label} block")
        if byte_offset < 0 or byte_offset + elem_size > self.size:
            raise MemoryFault(
                f"out-of-bounds read at byte {byte_offset} of {self.size}-byte {self.label} block"
            )
        return self.cells.get(byte_offset, 0)

    def store(self, byte_offset: int, elem_size: int, value) -> None:
        if self.freed:
            raise MemoryFault(f"write to freed {self.label} block")
        if byte_offset < 0 or byte_offset + elem_size > self.size:
            raise MemoryFault(
                f"out-of-bounds write at byte {byte_offset} of {self.size}-byte {self.label} block"
            )
        self.cells[byte_offset] = value

    def clone_cells(self) -> dict:
        return dict(self.cells)


class MemoryFault(Exception):
    """An invalid memory access (maps to a simulated SIGSEGV)."""


@dataclass
class Pointer:
    """A typed pointer into a heap block."""

    block: HeapBlock
    byte_offset: int
    pointee: CType
    #: element size, cached at construction — every load/store needs it
    elem_size: int = field(init=False, compare=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self.elem_size = sizeof_type(self.pointee)

    def add(self, elements: int) -> "Pointer":
        return Pointer(self.block, self.byte_offset + elements * self.elem_size, self.pointee)

    def load(self):
        return self.block.load(self.byte_offset, self.elem_size)

    def store(self, value) -> None:
        self.block.store(self.byte_offset, self.elem_size, value)

    def index(self, i: int) -> "Pointer":
        return self.add(i)

    def retag(self, pointee: CType) -> "Pointer":
        return Pointer(self.block, self.byte_offset, pointee)


@dataclass
class CArray:
    """A declared (stack or global) array, possibly multi-dimensional.

    Represented as a heap block plus shape metadata; element access
    computes the flattened byte offset.
    """

    elem_type: CType
    dims: list[int]
    block: HeapBlock = None  # type: ignore[assignment]
    #: element size, cached at construction (see :class:`Pointer`)
    elem_size: int = field(init=False, compare=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self.elem_size = sizeof_type(self.elem_type)
        if self.block is None:
            total = 1
            for d in self.dims:
                total *= max(d, 0)
            self.block = HeapBlock(size=total * self.elem_size, label="array")

    def flat_length(self) -> int:
        total = 1
        for d in self.dims:
            total *= d
        return total

    def pointer(self) -> Pointer:
        return Pointer(self.block, 0, self.elem_type)

    def subarray_pointer(self, indices: list[int]) -> Pointer:
        """Pointer to the element/subarray at the given leading indices."""
        if len(indices) > len(self.dims):
            raise MemoryFault("too many subscripts for array")
        stride = 1
        for d in self.dims[len(indices):]:
            stride *= d
        offset = 0
        remaining = self.dims[:]
        for idx, dim in zip(indices, self.dims):
            if idx < 0 or idx >= dim:
                raise MemoryFault(
                    f"array index {idx} out of bounds for dimension of size {dim}"
                )
            inner = 1
            for d in remaining[1:]:
                inner *= d
            offset += idx * inner
            remaining = remaining[1:]
        return Pointer(self.block, offset * self.elem_size, self.elem_type)


RuntimeValue = Union[int, float, str, Pointer, CArray, _Uninitialized, None]


def coerce_to_type(value, ctype: CType):
    """Convert a scalar to the storage type's Python representation."""
    if isinstance(value, (Pointer, CArray, _Uninitialized)) or value is None:
        return value
    if ctype.is_pointer:
        return value
    if ctype.is_floating:
        return float(value)
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        return ord(value[0]) if value else 0
    if ctype.base in ("int", "unsigned int"):
        value = int(value)
        value &= 0xFFFFFFFF
        if ctype.base == "int" and value >= 0x80000000:
            value -= 0x100000000
        return value
    if ctype.base in ("char", "unsigned char"):
        value = int(value) & 0xFF
        if ctype.base == "char" and value >= 0x80:
            value -= 0x100
        return value
    return int(value)


def truthy(value) -> bool:
    """C truthiness of a runtime value."""
    if isinstance(value, _Uninitialized):
        return False
    if isinstance(value, (Pointer, CArray)):
        return True
    if value is None:
        return False
    if isinstance(value, str):
        return bool(value)
    return value != 0
