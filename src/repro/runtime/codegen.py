"""Codegen backend: emit Python source per function, run CPython bytecode.

The closure backend (:mod:`repro.runtime.compilebody`) pays one Python
closure call per AST node per execution.  This module removes that last
dispatch layer: each ``FunctionDef`` is walked **once** and translated
to plain Python source — a ``_mkN(rt, C)`` maker function whose nested
``call(args)`` *is* the function body, with slot-resolved locals read
straight out of the flat ``frame`` list and tick accounting inlined at
every point the walker would tick.  ``compile()`` turns the emitted
module into CPython bytecode, so the hot path is the CPython eval loop
itself rather than a tree of closure calls.

Two-stage shape, mirroring ``lower_unit``:

1. :func:`compile_unit` translates and ``compile()``\\ s the unit once,
   memoized on the ``TranslationUnit`` object (``_codegen_program``), so
   cached :class:`~repro.compiler.driver.CompileResult`\\ s carry their
   generated code objects to every later execution for free;
2. :func:`call_main` binds a per-run
   :class:`~repro.runtime.compilebody._Runtime` — executing each maker
   captures the step cell, globals, builtins and per-function constants
   in closure cells (micro-seconds per run).

Semantics are **shared**, not re-implemented: generated code calls the
same helper layer the closure backend uses (``combine_binary``,
``_load_element``/``_store_target``/``_store_value``, ``_SlotRef`` /
``_VarRef`` / ``_PtrRef``, ``coerce_to_type`` …), and the directive
machinery (pre-parsed clause plans, ``make_action(rt, construct)``
factories) is inherited verbatim from ``compilebody._Lowerer`` —
directive constructs are emitted as nested ``def _consK(frame)``
functions and bound through the exact same action factories.

Tick placement and step-limit renormalization mirror the walker
exactly — including the fused 3-tick superinstructions with their
``st[0] = L + 1`` renormalization on overflow — so ``ExecutionResult``
(returncode, stdout, stderr, fault, timed_out **and steps**) stays
byte-identical across all three backends, which
``tests/test_backend_equivalence.py`` asserts corpus-wide and the
N-arm differential fuzzer (:mod:`repro.fuzz.differential`) hammers on
machine-grown programs.

``walk`` remains the executable spec; this backend exists purely so
CPython's own bytecode loop runs the hot path (target: ≥ 2x the
closure backend on loop-heavy programs, see
``benchmarks/test_interpreter_throughput.py``).
"""

from __future__ import annotations

import math

from repro.compiler import astnodes as ast
from repro.compiler.pragma import Directive
from repro.runtime.builtins import Builtins, _MATH_WRAPPERS
from repro.runtime.compilebody import (
    _FLT,
    _Lowerer,
    _RAW,
    _Runtime,
    _S32,
    _SlotRef,
    _coerce_kind,
    _load_element,
    _parse_clause_expr,
    _passthrough_action,
    _static_flatten,
    _store_target,
    _store_value,
)
from repro.runtime.interpreter import (
    RuntimeFault,
    StepLimitExceeded,
    _BreakSignal,
    _ContinueSignal,
    _PtrRef,
    _ReturnSignal,
    _VarRef,
    combine_binary,
    combine_compound,
    segv_fault,
    unary_value,
)
from repro.runtime.values import (
    CArray,
    MemoryFault,
    Pointer,
    UNINIT,
    coerce_to_type,
    sizeof_type,
    truthy,
)

__all__ = ["compile_unit", "call_main", "CodegenProgram", "CodegenFunction"]


#: Helper namespace every generated module executes in.  Generated code
#: reaches semantics through these names only — one shared layer with
#: the walker and the closure backend, so a semantics fix lands in all
#: three backends at once.
_HELPERS = {
    "_SLE": StepLimitExceeded,
    "_RF": RuntimeFault,
    "_BRK": _BreakSignal,
    "_CNT": _ContinueSignal,
    "_RET": _ReturnSignal,
    "_MF": MemoryFault,
    "_segv": segv_fault,
    "_truthy": truthy,
    "_coerce": coerce_to_type,
    "_CArray": CArray,
    "_Pointer": Pointer,
    "_UNINIT": UNINIT,
    "_cb": combine_binary,
    "_ccomp": combine_compound,
    "_uv": unary_value,
    "_load_element": _load_element,
    "_store_target": _store_target,
    "_store_value": _store_value,
    "_SlotRef": _SlotRef,
    "_VarRef": _VarRef,
    "_PtrRef": _PtrRef,
}

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_ARITH_OPS = ("+", "-", "*")

#: Hot helper names shadowed as default args on every generated
#: ``call``/``_consK`` so the inner loop hits LOAD_FAST instead of
#: LOAD_GLOBAL on the exec'd module dict.
_HOT_DEFAULTS = ", ".join(
    f"{n}={n}"
    for n in (
        "_SLE",
        "_UNINIT",
        "_coerce",
        "_cb",
        "_ccomp",
        "_truthy",
        "_segv",
        "_load_element",
        "_store_target",
        "_store_value",
    )
)


class CodegenFunction:
    """One translated function: its maker plus frame layout."""

    __slots__ = ("name", "nslots", "param_specs", "maker", "consts")

    def __init__(self, name, nslots, param_specs, maker, consts):
        self.name = name
        self.nslots = nslots
        self.param_specs = param_specs
        self.maker = maker
        self.consts = consts


class CodegenProgram:
    """All function bodies of one unit, emitted and compiled once."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.functions: dict[str, CodegenFunction] = {}
        chunks: list[str] = []
        entries = []
        for fn in unit.functions:
            if fn.body is None or fn.name in {e[0] for e in entries}:
                continue
            emitter = _FnEmitter(unit, f"_mk{len(entries)}")
            lines, consts, nslots, param_specs = emitter.emit_function(fn)
            chunks.append("\n".join(lines))
            entries.append((fn.name, emitter.maker_name, consts, nslots, param_specs))
        self.source = "\n\n".join(chunks) + "\n"
        self.code = compile(self.source, "<repro-codegen>", "exec")
        namespace = dict(_HELPERS)
        exec(self.code, namespace)
        for name, maker_name, consts, nslots, param_specs in entries:
            self.functions[name] = CodegenFunction(
                name, nslots, param_specs, namespace[maker_name], consts
            )


def compile_unit(unit: ast.TranslationUnit) -> CodegenProgram:
    """Translate ``unit``, memoizing the result on the unit object."""
    program = getattr(unit, "_codegen_program", None)
    if program is None:
        program = CodegenProgram(unit)
        unit._codegen_program = program
    return program


def call_main(interp) -> object:
    """Bind the generated program to ``interp`` and run ``main()``."""
    program = compile_unit(interp.unit)
    rt = _Runtime(interp)
    for name, fn in program.functions.items():
        rt.functions[name] = fn.maker(rt, fn.consts)
    return rt.functions["main"]([])


# ---------------------------------------------------------------------------
# emission buffers
# ---------------------------------------------------------------------------


class _Buf:
    __slots__ = ("lines", "ind")

    def __init__(self, indent: int = 0):
        self.lines: list[str] = []
        self.ind = indent

    def w(self, text: str) -> None:
        self.lines.append("    " * self.ind + text)


# ---------------------------------------------------------------------------
# the per-function emitter
# ---------------------------------------------------------------------------


class _FnEmitter(_Lowerer):
    """Emit one function body as Python source.

    Subclasses the closure backend's lowerer for its scope discipline
    (``push_scope``/``declare``/``resolve``/``_ref``) and its directive
    action factories (``_lower_acc_action`` / ``_lower_omp_action`` and
    friends use only ``self._ref`` plus lower-time plans, so they work
    unchanged) — guaranteeing slot assignment and directive plans are
    identical to the closure backend by construction.
    """

    def __init__(self, unit: ast.TranslationUnit, maker_name: str):
        super().__init__(unit)
        self.maker_name = maker_name
        self.consts: list = []
        self.builtin_binds: list[tuple[str, str]] = []
        self.defs: list[_Buf] = []  # completed construct defs + bindings
        self.body = _Buf(indent=3)  # inside try: inside call inside maker
        self.cur = self.body
        self.ntmp = 0
        self.ncons = 0
        self.nested = 0  # > 0 while emitting inside a construct def
        self.pending = 0  # accrued ticks not yet charged

    # -- tiny emission helpers --------------------------------------------
    #
    # Ticks are LAZY: ``tick()``/``tick3()`` accrue into ``pending`` and
    # ``flush()`` charges them as one batched increment.  ``w()`` flushes
    # before every emitted line; ``wp()`` is for provably pure lines
    # (frame reads, literal binds) that may sit inside a tick batch.
    # This is the closure backend's fused-superinstruction argument
    # generalized: within a region containing only pure operations, the
    # charge point is unobservable — the only escape is the step-limit
    # raise itself, and the ``st[0] = L + 1`` renormalization makes the
    # observed count identical to the walker's tick-by-tick charging no
    # matter where inside the batch the limit fell.  ``flush()`` is
    # forced before anything that can fault, print, or branch.

    def w(self, text: str) -> None:
        self.flush()
        self.cur.w(text)

    def wp(self, text: str) -> None:
        self.cur.w(text)

    def flush(self) -> None:
        k = self.pending
        if not k:
            return
        self.pending = 0
        if k == 1:
            self.cur.w("st[0] = _n = st[0] + 1")
            self.cur.w("if _n > L:")
            self.cur.w("    raise _SLE(L)")
        else:
            self.cur.w(f"st[0] = _n = st[0] + {k}")
            self.cur.w("if _n > L:")
            self.cur.w("    st[0] = L + 1")
            self.cur.w("    raise _SLE(L)")

    def indent(self) -> None:
        self.cur.ind += 1

    def dedent(self) -> None:
        # charge anything accrued inside the block before leaving it: a
        # batch must never cross a branch join or a loop back-edge
        self.flush()
        self.cur.ind -= 1

    def tmp(self) -> str:
        self.ntmp += 1
        return f"t{self.ntmp}"

    def const(self, value) -> str:
        self.consts.append(value)
        return f"c{len(self.consts) - 1}"

    def literal(self, value) -> str:
        """Embeddable atom for a constant, falling back to a cell."""
        if value.__class__ is int or value.__class__ is str:
            return f"({value!r})"
        if value.__class__ is float and math.isfinite(value):
            return f"({value!r})"
        return self.const(value)

    def bind(self, atom: str) -> str:
        """Materialize ``atom`` into a temp unless it already is one."""
        if atom[0] == "t" and atom[1:].isdigit():
            return atom
        t = self.tmp()
        if atom.startswith(("frame[", "(")):
            self.wp(f"{t} = {atom}")  # pure: may sit inside a tick batch
        else:
            self.w(f"{t} = {atom}")
        return t

    def bind_ro(self, atom: str) -> str:
        """``bind`` for read-only uses: literal atoms pass through.

        A literal cannot be mutated by later evaluation, so leaving it
        inline keeps its static class visible to the fast-path folder
        (no temp store, no runtime class check).
        """
        if atom[0] == "(" and self._atom_static(atom) is not None:
            return atom
        return self.bind(atom)

    def tick(self) -> None:
        self.pending += 1

    def tick3(self) -> None:
        self.pending += 3

    @staticmethod
    def truthy_cond(atom: str) -> str:
        return f"({atom} != 0 if {atom}.__class__ is int else _truthy({atom}))"

    @staticmethod
    def _num_check(atom: str) -> str:
        return f"({atom}.__class__ is int or {atom}.__class__ is float)"

    @staticmethod
    def _atom_static(atom: str):
        """int/float/str for literal atoms, None for dynamic ones."""
        import ast as pyast

        try:
            return type(pyast.literal_eval(atom))
        except (ValueError, SyntaxError):
            return None

    def _fold_coerce(self, atom: str, ctype) -> str | None:
        """Coerce a numeric literal atom at lower time.

        Runs the same ``coerce_to_type`` the emitted code would call, so
        the folded constant is identical by construction; returns None
        when the atom is dynamic or the result isn't a plain number.
        """
        import ast as pyast

        try:
            value = pyast.literal_eval(atom)
        except (ValueError, SyntaxError):
            return None
        if type(value) not in (int, float):
            return None
        try:
            folded = coerce_to_type(value, ctype)
        except Exception:
            return None
        if type(folded) not in (int, float):
            return None
        return self.literal(folded)

    # -- entry -------------------------------------------------------------

    def emit_function(self, fn: ast.FunctionDef):
        self.push_scope()
        param_specs = []
        for param in fn.params:
            if param.name:
                ctype = param.ctype.pointer_to() if param.array else param.ctype
                binding = self.declare(param.name, ctype)
                param_specs.append((binding.slot, ctype))
            else:
                param_specs.append(None)
        self.push_scope()
        for stmt in fn.body.body:
            self.emit_stmt(stmt)
        self.flush()
        if not self.body.lines:
            self.body.w("pass")
        self.pop_scope()
        self.pop_scope()
        fn.frame_slots = self.nslots  # annotation for tests/debugging

        # assemble `def call` (may allocate the param-spec const)
        cb = _Buf(indent=1)
        cb.w(f"def call(args, st=st, L=L, {_HOT_DEFAULTS}):")
        cb.ind = 2
        cb.w("interp._call_depth += 1")
        cb.w("if interp._call_depth > 200:")
        cb.w("    interp._call_depth -= 1")
        cb.w("    raise _segv('stack overflow (recursion too deep)')")
        cb.w(f"frame = [None] * {self.nslots}")
        nparams = len(param_specs)
        if nparams:
            ps = self.const(tuple(param_specs))
            cb.w(f"for _spec, _value in zip({ps}, args):")
            cb.w("    if _spec is not None:")
            cb.w("        if isinstance(_value, _CArray):")
            cb.w("            _value = _value.pointer()")
            cb.w("        frame[_spec[0]] = _coerce(_value, _spec[1])")
            cb.w(f"if len(args) < {nparams}:")
            cb.w(f"    for _spec in {ps}[len(args):]:")
            cb.w("        if _spec is not None:")
            cb.w("            frame[_spec[0]] = 0")
        cb.w("try:")
        cb.lines.extend(self.body.lines)
        cb.w("except _RET as _r:")
        cb.w("    return _r.value")
        cb.w("finally:")
        cb.w("    interp._call_depth -= 1")
        cb.w("return None")
        cb.ind = 1
        cb.w("return call")

        # preamble last: the const count is final only now
        head = _Buf()
        head.w(f"def {self.maker_name}(rt, C):")
        head.ind = 1
        for line in (
            "st = rt.steps",
            "L = rt.limit",
            "interp = rt.interp",
            "gvars = rt.gvars",
            "gtypes = rt.gtypes",
            "genv = rt.genv",
            "fns = rt.functions",
        ):
            head.w(line)
        for i in range(len(self.consts)):
            head.w(f"c{i} = C[{i}]")
        for name, attr in self.builtin_binds:
            head.w(f"{name} = getattr(rt.builtins, {attr!r})")
        lines = head.lines
        for buf in self.defs:
            lines.extend(buf.lines)
        lines.extend(cb.lines)
        return lines, tuple(self.consts), self.nslots, tuple(param_specs)

    # -- statements --------------------------------------------------------

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Declaration):
            self._emit_declaration(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.tick()
            if stmt.expr is not None:
                self.emit_expr(stmt.expr)
        elif isinstance(stmt, ast.Compound):
            self.tick()
            self.push_scope()
            for child in stmt.body:
                self.emit_stmt(child)
            self.pop_scope()
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt)
        elif isinstance(stmt, ast.While):
            self._emit_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._emit_dowhile(stmt)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.tick()
            atom = self.emit_expr(stmt.value) if stmt.value is not None else "None"
            if self.nested:
                self.w(f"raise _RET({atom})")
            else:
                self.w(f"return {atom}")
        elif isinstance(stmt, ast.Break):
            self.tick()
            self.w("raise _BRK()")
        elif isinstance(stmt, ast.Continue):
            self.tick()
            self.w("raise _CNT()")
        elif isinstance(stmt, ast.DirectiveStmt):
            self._emit_directive(stmt)
        else:
            self.tick()
            message = f"unsupported statement {type(stmt).__name__}"
            self.w(f"raise _RF({message!r}, 1, '')")

    def _emit_if(self, stmt: ast.If) -> None:
        self.tick()
        cond = self.bind_ro(self.emit_expr(stmt.cond))
        self.w(f"if {self.truthy_cond(cond)}:")
        self.indent()
        self.emit_stmt(stmt.then)
        self.dedent()
        if stmt.otherwise is not None:
            self.w("else:")
            self.indent()
            self.emit_stmt(stmt.otherwise)
            self.dedent()

    def _emit_loop_body(self, body: ast.Stmt, continue_action: str) -> None:
        # deliberately no flush: the iteration tick batches with the
        # body's first ticks; the step-limit raise passes through the
        # _BRK/_CNT handlers unchanged, so the charge point is still
        # inside the loop and before any observable work
        self.wp("try:")
        self.indent()
        self.emit_stmt(body)
        self.dedent()
        self.w("except _BRK:")
        self.w("    break")
        self.w("except _CNT:")
        self.w(f"    {continue_action}")

    def _emit_while(self, stmt: ast.While) -> None:
        self.tick()
        self.w("while True:")
        self.indent()
        cond = self.bind_ro(self.emit_expr(stmt.cond))
        self.w(f"if not {self.truthy_cond(cond)}:")
        self.w("    break")
        self.tick()
        self._emit_loop_body(stmt.body, "continue")
        self.dedent()

    def _emit_dowhile(self, stmt: ast.DoWhile) -> None:
        self.tick()
        self.w("while True:")
        self.indent()
        self.tick()
        self._emit_loop_body(stmt.body, "pass")
        cond = self.bind_ro(self.emit_expr(stmt.cond))
        self.w(f"if not {self.truthy_cond(cond)}:")
        self.w("    break")
        self.dedent()

    def _emit_for(self, stmt: ast.For) -> None:
        self.push_scope()
        self.tick()
        if stmt.init is not None:
            self.emit_stmt(stmt.init)
        self.w("while True:")
        self.indent()
        if stmt.cond is not None:
            cond = self.bind_ro(self.emit_expr(stmt.cond))
            self.w(f"if not {self.truthy_cond(cond)}:")
            self.w("    break")
        self.tick()
        self._emit_loop_body(stmt.body, "pass")
        if stmt.step is not None:
            self.emit_expr(stmt.step)
        self.dedent()
        self.pop_scope()

    # -- declarations ------------------------------------------------------

    def _emit_declaration(self, decl: ast.Declaration) -> None:
        self.tick()
        for d in decl.declarators:
            if d.is_array:
                self._emit_array_declarator(d)
            else:
                self._emit_scalar_declarator(d)

    def _emit_scalar_declarator(self, d: ast.Declarator) -> None:
        ctype = d.ctype
        if d.init is not None:
            # initializer resolves in the scope BEFORE the new binding
            atom = self.emit_expr(d.init)
            binding = self.declare(d.name, ctype)
            d.slot = binding.slot  # annotation
            folded = self._fold_coerce(atom, ctype)
            if folded is not None:
                self.w(f"frame[{binding.slot}] = {folded}")
            else:
                self.w(f"frame[{binding.slot}] = _coerce({atom}, {self.const(ctype)})")
            return
        binding = self.declare(d.name, ctype)
        d.slot = binding.slot  # annotation
        if ctype.is_pointer:
            default = "_UNINIT"
        elif ctype.is_floating:
            default = "0.0"
        else:
            default = "0"
        self.w(f"frame[{binding.slot}] = {default}")

    def _emit_array_declarator(self, d: ast.Declarator) -> None:
        ctype = d.ctype
        elem_size = sizeof_type(ctype)
        dim_atoms = []
        for dim in d.array_dims:
            if dim is None:
                dim_atoms.append("0")
            else:
                atom = self.emit_expr(dim)
                dim_atoms.append(self.bind(f"max(0, int({atom}))"))
        # item initializers resolve pre-declaration but run after the
        # CArray is constructed (mirrors the closure backend's order)
        item_atoms = None
        if isinstance(d.init, ast.InitList):
            self.flush()  # ticks so far charge before the splice point
            items_buf = _Buf(indent=self.cur.ind)
            outer = self.cur
            self.cur = items_buf
            item_atoms = [self.bind(self.emit_expr(item)) for item in _static_flatten(d.init)]
            self.flush()  # item ticks charge inside the spliced block
            self.cur = outer
        binding = self.declare(d.name, ctype.pointer_to())
        d.slot = binding.slot  # annotation
        arr = self.tmp()
        self.w(f"{arr} = _CArray({self.const(ctype)}, [{', '.join(dim_atoms)}])")
        if item_atoms is not None:
            self.cur.lines.extend(items_buf.lines)
            flat = self.tmp()
            self.w(f"{flat} = [{', '.join(item_atoms)}]")
            blk = self.tmp()
            self.w(f"{blk} = {arr}.block")
            self.w(f"for _i, _v in enumerate({flat}[:{arr}.flat_length()]):")
            self.w(
                f"    {blk}.store(_i * {elem_size}, {elem_size},"
                f" _coerce(_v, {self.const(ctype)}))"
            )
        self.w(f"frame[{binding.slot}] = {arr}")

    # -- expressions -------------------------------------------------------

    def emit_expr(self, expr: ast.Expr) -> str:
        """Emit prelude code; return a pure atom holding the value."""
        if isinstance(expr, ast.IntLiteral):
            self.tick()
            return self.literal(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            self.tick()
            return self.literal(expr.value)
        if isinstance(expr, ast.StringLiteral):
            self.tick()
            return self.literal(expr.value)
        if isinstance(expr, ast.CharLiteral):
            self.tick()
            return self.literal(ord(expr.value[0]) if expr.value else 0)
        if isinstance(expr, ast.Identifier):
            return self._emit_identifier(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._emit_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._emit_unary(expr)
        if isinstance(expr, ast.Assignment):
            return self._emit_assignment(expr)
        if isinstance(expr, ast.Conditional):
            return self._emit_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr)
        if isinstance(expr, ast.Index):
            return self._emit_index_load(expr)
        if isinstance(expr, ast.Cast):
            return self._emit_cast(expr)
        if isinstance(expr, ast.SizeOf):
            return self._emit_sizeof(expr)
        if isinstance(expr, ast.CommaExpr):
            return self._emit_comma(expr)
        if isinstance(expr, ast.Member):
            self.tick()
            self.w(
                "raise _RF('struct member access is not supported by this"
                " substrate', 1, 'runtime error: unsupported struct access\\n')"
            )
            return "(0)"
        if isinstance(expr, ast.InitList):
            self.tick()
            atoms = [self.bind(self.emit_expr(item)) for item in expr.items]
            t = self.tmp()
            self.w(f"{t} = [{', '.join(atoms)}]")
            return t
        self.tick()
        message = f"unsupported expression {type(expr).__name__}"
        self.w(f"raise _RF({message!r}, 1, '')")
        return "(0)"

    def _emit_identifier(self, expr: ast.Identifier) -> str:
        binding = self.resolve(expr.name)
        self.tick()
        if binding is not None:
            expr.slot = binding.slot  # annotation
            return f"frame[{binding.slot}]"
        t = self.tmp()
        self.w("try:")
        self.w(f"    {t} = gvars[{expr.name!r}]")
        self.w("except KeyError:")
        message = f"use of unknown symbol '{expr.name}'"
        self.w(f"    raise _segv({message!r}) from None")
        return t

    # -- binary ------------------------------------------------------------

    def _emit_binary(self, expr: ast.BinaryOp) -> str:
        op = expr.op
        if op in ("&&", "||"):
            return self._emit_logical(expr, op == "&&")
        if op in _CMP_OPS or op in _ARITH_OPS:
            left_plan = self._simple_operand(expr.left)
            right_plan = self._simple_operand(expr.right)
            if left_plan is not None and right_plan is not None:
                return self._emit_fused_binary(op, left_plan, right_plan)
        self.tick()
        l = self.bind_ro(self.emit_expr(expr.left))
        r = self.bind_ro(self.emit_expr(expr.right))
        if op in _ARITH_OPS or op in _CMP_OPS:
            return self._emit_numeric_fastpath(op, l, r)
        t = self.tmp()
        self.w(f"{t} = _cb({op!r}, {l}, {r})")
        return t

    def _emit_logical(self, expr: ast.BinaryOp, is_and: bool) -> str:
        self.tick()
        l = self.bind_ro(self.emit_expr(expr.left))
        t = self.tmp()
        if is_and:
            self.w(f"if {self.truthy_cond(l)}:")
            self.indent()
            r = self.bind_ro(self.emit_expr(expr.right))
            self.w(f"{t} = 1 if {self.truthy_cond(r)} else 0")
            self.dedent()
            self.w("else:")
            self.w(f"    {t} = 0")
        else:
            self.w(f"if {self.truthy_cond(l)}:")
            self.w(f"    {t} = 1")
            self.w("else:")
            self.indent()
            r = self.bind_ro(self.emit_expr(expr.right))
            self.w(f"{t} = 1 if {self.truthy_cond(r)} else 0")
            self.dedent()
        return t

    def _plan_atom(self, plan) -> str:
        kind, value = plan
        if kind == "slot":
            return self.bind(f"frame[{value}]")
        return self.literal(value)

    def _emit_fused_binary(self, op: str, left_plan, right_plan) -> str:
        self.tick3()
        l = self._plan_atom(left_plan)
        r = self._plan_atom(right_plan)
        return self._emit_numeric_fastpath(op, l, r)

    def _emit_numeric_fastpath(self, op: str, l: str, r: str) -> str:
        """Shared shape of the closure backend's int/float fast paths."""
        if op in _CMP_OPS:
            fast = f"1 if {l} {op} {r} else 0"
        else:
            fast = f"{l} {op} {r}"
        slow = f"_cb({op!r}, {l}, {r})"
        checks = []
        statically_slow = False
        for atom in (l, r):
            static = self._atom_static(atom)
            if static is None:
                checks.append(self._num_check(atom))
            elif static not in (int, float):
                statically_slow = True
        t = self.tmp()
        if statically_slow:
            self.w(f"{t} = {slow}")
        elif not checks:
            self.w(f"{t} = {fast}")
        else:
            self.w(f"if {' and '.join(checks)}:")
            self.w(f"    {t} = {fast}")
            self.w("else:")
            self.w(f"    {t} = {slow}")
        return t

    # -- unary -------------------------------------------------------------

    def _emit_unary(self, expr: ast.UnaryOp) -> str:
        op = expr.op
        if op in ("++", "--"):
            return self._emit_incdec(expr)
        if op == "&":
            self.tick()
            ref = self.emit_lvalue(expr.operand)
            t = self.tmp()
            self.w(f"{t} = {ref}.address()")
            return t
        if op == "*":
            self.tick()
            v = self.bind(self.emit_expr(expr.operand))
            self.w(f"if {v} is _UNINIT or {v} == 0 or {v} is None:")
            self.w("    raise _segv('dereference of NULL or uninitialized pointer')")
            self.w(f"if isinstance({v}, _CArray):")
            self.w(f"    {v} = {v}.pointer()")
            self.w(f"if not isinstance({v}, _Pointer):")
            self.w("    raise _segv('dereference of a non-pointer value')")
            loaded = self.tmp()
            self.w(f"{loaded} = {v}.load()")
            t = self.tmp()
            self.w(f"{t} = 0 if {loaded} is _UNINIT else {loaded}")
            return t
        self.tick()
        v = self.bind_ro(self.emit_expr(expr.operand))
        static = self._atom_static(v)
        if static in (int, float):
            # fold at lower time: mirrors the fast paths below exactly
            import ast as pyast

            value = pyast.literal_eval(v)
            if op == "!" and static is int:
                return self.literal(0 if value != 0 else 1)
            if op == "-":
                return self.literal(-value)
        t = self.tmp()
        if op == "!":
            self.w(f"if {v}.__class__ is int:")
            self.w(f"    {t} = 0 if {v} != 0 else 1")
            self.w("else:")
            self.w(f"    {t} = _uv('!', {v})")
        elif op == "-":
            self.w(f"if {self._num_check(v)}:")
            self.w(f"    {t} = -{v}")
            self.w("else:")
            self.w(f"    {t} = _uv('-', {v})")
        else:
            self.w(f"{t} = _uv({op!r}, {v})")
        return t

    def _emit_incdec(self, expr: ast.UnaryOp) -> str:
        delta = 1 if expr.op == "++" else -1
        prefix = expr.prefix
        target = expr.operand
        if isinstance(target, ast.Identifier):
            binding = self.resolve(target.name)
            if binding is not None:
                slot, ctype = binding.slot, binding.ctype
                kind = _coerce_kind(ctype)
                target.slot = slot  # annotation
                self.tick()
                old = self.tmp()
                new = self.tmp()
                ct = self.const(ctype) if ctype is not None else None
                self.wp(f"{old} = frame[{slot}]")
                self.w(f"if {old}.__class__ is int:")
                self.indent()
                self.w(f"{new} = {old} + {delta}")
                if kind == _S32:
                    self.w(f"if -2147483648 <= {new} <= 2147483647:")
                    self.w(f"    frame[{slot}] = {new}")
                    self.w("else:")
                    self.w(f"    frame[{slot}] = _coerce({new}, {ct})")
                elif ctype is not None:
                    # walker coerces on every store: an int in a
                    # float-typed slot must become float
                    self.w(f"frame[{slot}] = _coerce({new}, {ct})")
                else:
                    self.w(f"frame[{slot}] = {new}")
                self.dedent()
                self.w("else:")
                self.indent()
                self.w(f"if {old} is _UNINIT:")
                self.w(f"    {old} = 0")
                self.w(f"if isinstance({old}, _Pointer):")
                self.w(f"    {new} = {old}.add({delta})")
                self.w("else:")
                self.w(f"    {new} = {old} + {delta}")
                if ctype is not None:
                    self.w(f"frame[{slot}] = _coerce({new}, {ct})")
                else:
                    self.w(f"frame[{slot}] = {new}")
                self.dedent()
                # postfix yields the pre-increment temp (0-folded when
                # UNINIT), prefix the post-increment one: no join temp
                return new if prefix else old
        self.tick()
        ref = self.emit_lvalue(target)
        old = self.tmp()
        new = self.tmp()
        self.w(f"{old} = {ref}.load()")
        self.w(f"if {old} is _UNINIT:")
        self.w(f"    {old} = 0")
        self.w(f"if isinstance({old}, _Pointer):")
        self.w(f"    {new} = {old}.add({delta})")
        self.w("else:")
        self.w(f"    {new} = {old} + {delta}")
        self.w(f"{ref}.store({new})")
        return new if prefix else old

    # -- conditional / comma / cast / sizeof -------------------------------

    def _emit_conditional(self, expr: ast.Conditional) -> str:
        self.tick()
        cond = self.bind_ro(self.emit_expr(expr.cond))
        t = self.tmp()
        self.w(f"if {self.truthy_cond(cond)}:")
        self.indent()
        then_atom = self.emit_expr(expr.then)
        self.w(f"{t} = {then_atom}")
        self.dedent()
        self.w("else:")
        self.indent()
        else_atom = self.emit_expr(expr.otherwise)
        self.w(f"{t} = {else_atom}")
        self.dedent()
        return t

    def _emit_comma(self, expr: ast.CommaExpr) -> str:
        self.tick()
        result = "(0)"
        for part in expr.parts:
            result = self.emit_expr(part)
        return result

    def _emit_cast(self, expr: ast.Cast) -> str:
        target_type = expr.target_type
        pointee = target_type.pointee() if target_type.is_pointer else None
        self.tick()
        v = self.bind(self.emit_expr(expr.operand))
        t = self.tmp()
        if pointee is not None:
            self.w(f"if isinstance({v}, _Pointer):")
            self.w(f"    {t} = {v}.retag({self.const(pointee)})")
            self.w(f"elif isinstance({v}, _CArray):")
            self.w(f"    {t} = {v}")
            self.w("else:")
            self.w(f"    {t} = _coerce({v}, {self.const(target_type)})")
        else:
            self.w(f"if isinstance({v}, (_Pointer, _CArray)):")
            self.w(f"    {t} = {v}")
            self.w("else:")
            self.w(f"    {t} = _coerce({v}, {self.const(target_type)})")
        return t

    def _emit_sizeof(self, expr: ast.SizeOf) -> str:
        if expr.target_type is not None:
            self.tick()
            return self.literal(sizeof_type(expr.target_type))
        self.tick()
        v = self.bind(self.emit_expr(expr.operand)) if expr.operand is not None else "(0)"
        t = self.tmp()
        self.w(f"if isinstance({v}, _CArray):")
        self.w(f"    {t} = {v}.block.size")
        self.w(f"elif isinstance({v}, _Pointer):")
        self.w(f"    {t} = 8")
        self.w(f"elif isinstance({v}, float):")
        self.w(f"    {t} = 8")
        self.w("else:")
        self.w(f"    {t} = 4")
        return t

    # -- calls -------------------------------------------------------------

    def _emit_call(self, expr: ast.Call) -> str:
        name = expr.callee
        self.tick()
        atoms = [self.bind_ro(self.emit_expr(arg)) for arg in expr.args]
        arglist = ", ".join(atoms)
        t = self.tmp()
        if self.unit.function(name) is not None:
            self.w(f"{t} = fns[{name!r}]([{arglist}])")
            return t
        attr = f"fn_{name}"
        callee = None
        if hasattr(Builtins, attr):
            callee = f"b{len(self.builtin_binds)}"
            self.builtin_binds.append((callee, attr))
        elif name in _MATH_WRAPPERS:
            callee = self.const(_MATH_WRAPPERS[name])
        if callee is not None:
            message = f"bad call to {name}: "
            self.w("try:")
            self.w(f"    {t} = {callee}({arglist})")
            self.w("except (TypeError, IndexError) as _exc:")
            self.w(
                f"    raise _RF({message!r} + str(_exc), 139,"
                " 'Segmentation fault (core dumped)\\n') from _exc"
            )
            return t
        message = f"call to undefined function '{name}'"
        stderr = f"symbol lookup error: undefined symbol: {name}\n"
        self.w(f"raise _RF({message!r}, 127, {stderr!r})")
        return "(0)"

    # -- assignment --------------------------------------------------------

    def _emit_assignment(self, expr: ast.Assignment) -> str:
        target = expr.target
        if expr.op == "=":
            if isinstance(target, ast.Identifier):
                binding = self.resolve(target.name)
                if binding is not None:
                    return self._emit_slot_assign(binding, target, expr.value)
                return self._emit_global_assign(target.name, expr.value)
            if isinstance(target, ast.Index) and not isinstance(target.base, ast.Index):
                return self._emit_index_assign(target, expr.value)
            self.tick()
            ref = self.emit_lvalue(target)
            v = self.bind_ro(self.emit_expr(expr.value))
            self.w(f"{ref}.store({v})")
            return v
        binop = expr.op[:-1]
        if isinstance(target, ast.Identifier):
            binding = self.resolve(target.name)
            if binding is not None:
                return self._emit_slot_compound(binding, target, binop, expr.value)
        self.tick()
        ref = self.emit_lvalue(target)
        v = self.bind_ro(self.emit_expr(expr.value))
        old = self.tmp()
        combined = self.tmp()
        self.w(f"{old} = {ref}.load()")
        self.w(f"if {old} is _UNINIT:")
        self.w(f"    {old} = 0")
        self.w(f"{combined} = _ccomp({binop!r}, {old}, {v})")
        self.w(f"{ref}.store({combined})")
        return combined

    def _emit_store_by_kind(self, slot: int, kind: int, ctype, value: str) -> None:
        """Kind-specialized slot store (closure `_lower_slot_assign`)."""
        if kind == _RAW:
            self.w(f"frame[{slot}] = {value}")
            return
        folded = self._fold_coerce(value, ctype)
        if folded is not None:
            self.w(f"frame[{slot}] = {folded}")
            return
        ct = self.const(ctype)
        if kind == _S32:
            self.w(
                f"if {value}.__class__ is int and"
                f" -2147483648 <= {value} <= 2147483647:"
            )
            self.w(f"    frame[{slot}] = {value}")
            self.w("else:")
            self.w(f"    frame[{slot}] = _coerce({value}, {ct})")
        elif kind == _FLT:
            self.w(f"if {value}.__class__ is float:")
            self.w(f"    frame[{slot}] = {value}")
            self.w("else:")
            self.w(f"    frame[{slot}] = _coerce({value}, {ct})")
        else:
            self.w(f"frame[{slot}] = _coerce({value}, {ct})")

    def _emit_slot_assign(self, binding, target: ast.Identifier, value: ast.Expr) -> str:
        slot, ctype = binding.slot, binding.ctype
        kind = _coerce_kind(ctype)
        target.slot = slot  # annotation
        self.tick()
        v = self.bind_ro(self.emit_expr(value))
        self._emit_store_by_kind(slot, kind, ctype, v)
        return v

    def _emit_global_assign(self, name: str, value: ast.Expr) -> str:
        self.tick()
        message = f"assignment to unknown symbol '{name}'"
        self.w(f"if {name!r} not in gvars:")
        self.w(f"    raise _segv({message!r})")
        v = self.bind_ro(self.emit_expr(value))
        ct = self.tmp()
        self.w(f"{ct} = gtypes.get({name!r})")
        self.w(f"gvars[{name!r}] = _coerce({v}, {ct}) if {ct} is not None else {v}")
        return v

    def _emit_slot_compound(
        self, binding, target: ast.Identifier, binop: str, value: ast.Expr
    ) -> str:
        slot, ctype = binding.slot, binding.ctype
        kind = _coerce_kind(ctype)
        fast_arith = binop in _ARITH_OPS
        target.slot = slot  # annotation
        self.tick()
        v = self.bind_ro(self.emit_expr(value))
        old = self.tmp()
        combined = self.tmp()
        self.w(f"{old} = frame[{slot}]")
        self.w(f"if {old} is _UNINIT:")
        self.w(f"    {old} = 0")
        static = self._atom_static(v)
        if static is not None and static not in (int, float):
            fast_arith = False  # e.g. string literal: always the slow path
        if fast_arith:
            checks = [self._num_check(old)]
            if static is None:
                checks.append(self._num_check(v))
            self.w(f"if {' and '.join(checks)}:")
            self.w(f"    {combined} = {old} {binop} {v}")
            self.w("else:")
            self.w(f"    {combined} = _ccomp({binop!r}, {old}, {v})")
        else:
            self.w(f"{combined} = _ccomp({binop!r}, {old}, {v})")
        self._emit_store_by_kind(slot, kind, ctype, combined)
        return combined

    def _emit_index_assign(self, target: ast.Index, value: ast.Expr) -> str:
        """``base[i] = value`` with a single subscript — the hot store.

        Mirrors the walker's order: resolve the destination (index and
        base first, bounds checked), THEN evaluate the right-hand side.
        """
        base_plan = (
            self._simple_operand(target.base)
            if isinstance(target.base, ast.Identifier)
            else None
        )
        index_plan = self._simple_operand(target.index)
        dest = [self.tmp() for _ in range(4)]
        dest_s = ", ".join(dest)
        if base_plan is not None and base_plan[0] == "slot" and index_plan is not None:
            # Assignment + index + base = 3 pure ticks, batched
            self.tick3()
            index_kind, index_val = index_plan
            if index_kind == "const":
                i = self.literal(int(index_val))
            else:
                i = self._emit_subscript_int(f"frame[{index_val}]")
            self.w(f"{dest_s} = _store_target(frame[{base_plan[1]}], {i})")
        else:
            self.tick()
            index = self.bind(self.emit_expr(target.index))
            i = self._emit_subscript_int(index)
            base = self.emit_expr(target.base)
            self.w(f"{dest_s} = _store_target({base}, {i})")
        v = self.bind_ro(self.emit_expr(value))
        self.w(f"_store_value({dest_s}, {v})")
        return v

    def _emit_subscript_int(self, atom: str) -> str:
        """Normalize a subscript to int, faulting on UNINIT."""
        i = self.bind(atom)
        self.w(f"if {i}.__class__ is not int:")
        self.w(f"    if {i} is _UNINIT:")
        self.w("        raise _segv('array subscript is uninitialized')")
        self.w(f"    {i} = int({i})")
        return i

    # -- index loads -------------------------------------------------------

    def _emit_index_load(self, expr: ast.Index) -> str:
        if not isinstance(expr.base, ast.Index):
            base_plan = (
                self._simple_operand(expr.base)
                if isinstance(expr.base, ast.Identifier)
                else None
            )
            index_plan = self._simple_operand(expr.index)
            t = self.tmp()
            if base_plan is not None and base_plan[0] == "slot" and index_plan is not None:
                # fused superinstruction: Index + index + base = 3 ticks
                self.tick3()
                index_kind, index_val = index_plan
                if index_kind == "const":
                    i = self.literal(int(index_val))
                else:
                    i = self._emit_subscript_int(f"frame[{index_val}]")
                self.w(f"{t} = _load_element(frame[{base_plan[1]}], {i})")
                return t
            self.tick()
            index = self.bind(self.emit_expr(expr.index))
            i = self._emit_subscript_int(index)
            base = self.emit_expr(expr.base)
            self.w(f"{t} = _load_element({base}, {i})")
            return t
        self.tick()
        ref = self._emit_index_ref(expr)
        loaded = self.tmp()
        t = self.tmp()
        self.w(f"{loaded} = {ref}.load()")
        self.w(f"{t} = 0 if {loaded} is _UNINIT else {loaded}")
        return t

    def _emit_index_ref(self, expr: ast.Index) -> str:
        """Generic index chain → ``_PtrRef`` (mirrors ``_resolve_index``)."""
        indices = self.tmp()
        self.w(f"{indices} = []")
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            v = self.bind(self.emit_expr(node.index))
            self.w(f"if {v} is _UNINIT:")
            self.w("    raise _segv('array subscript is uninitialized')")
            self.w(f"{indices}.append(int({v}))")
            node = node.base
        self.w(f"{indices}.reverse()")
        base = self.bind(self.emit_expr(node))
        ref = self.tmp()
        self.w(f"if {base} is _UNINIT or {base} is None or {base} == 0:")
        self.w("    raise _segv('subscript of NULL or uninitialized pointer')")
        self.w(f"{ref} = None")
        self.w("try:")
        self.w(f"    if isinstance({base}, _CArray):")
        self.w(f"        {ref} = _PtrRef({base}.subarray_pointer({indices}))")
        self.w(f"    elif isinstance({base}, _Pointer):")
        ptr = self.tmp()
        self.w(f"        {ptr} = {base}")
        self.w(f"        for _i in {indices}:")
        self.w(f"            {ptr} = {ptr}.index(_i)")
        self.w(f"        {ref} = _PtrRef({ptr})")
        self.w("except _MF as _exc:")
        self.w("    raise _segv(str(_exc)) from _exc")
        self.w(f"if {ref} is None:")
        self.w("    raise _segv('subscript applied to a non-array value')")
        return ref

    # -- lvalues -----------------------------------------------------------

    def emit_lvalue(self, expr: ast.Expr) -> str:
        """Emit code producing a ``_Ref``-style object; return its atom."""
        if isinstance(expr, ast.Identifier):
            binding = self.resolve(expr.name)
            t = self.tmp()
            if binding is not None:
                expr.slot = binding.slot  # annotation
                ct = self.const(binding.ctype) if binding.ctype is not None else "None"
                self.w(f"{t} = _SlotRef(frame, {binding.slot}, {ct})")
                return t
            message = f"assignment to unknown symbol '{expr.name}'"
            self.w(f"if {expr.name!r} not in gvars:")
            self.w(f"    raise _segv({message!r})")
            self.w(f"{t} = _VarRef(genv, {expr.name!r})")
            return t
        if isinstance(expr, ast.Index):
            return self._emit_index_ref(expr)
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            v = self.bind(self.emit_expr(expr.operand))
            self.w(f"if {v} is _UNINIT or {v} == 0 or {v} is None:")
            self.w("    raise _segv('dereference of NULL or uninitialized pointer')")
            self.w(f"if isinstance({v}, _CArray):")
            self.w(f"    {v} = {v}.pointer()")
            self.w(f"if not isinstance({v}, _Pointer):")
            self.w("    raise _segv('dereference of a non-pointer value')")
            t = self.tmp()
            self.w(f"{t} = _PtrRef({v})")
            return t
        message = f"expression is not assignable ({type(expr).__name__})"
        self.w(f"raise _segv({message!r})")
        return "(0)"

    # -- directives --------------------------------------------------------
    #
    # The action factories (`_lower_acc_action` / `_lower_omp_action`,
    # `_lower_region`, `_data_action`, `_lower_host_parallel`) are
    # INHERITED from the closure backend's lowerer: they pre-compute
    # clause plans with `self._ref` at lower time and only need a
    # `construct(frame)` callable at bind time — which codegen provides
    # as a nested generated function.

    def _emit_directive(self, stmt: ast.DirectiveStmt) -> None:
        cons_name = "None"
        if stmt.construct is not None:
            cons_name = f"_cons{self.ncons}"
            self.ncons += 1
            self.flush()  # pending ticks belong to the enclosing body
            buf = _Buf(indent=1)
            outer = self.cur
            self.cur = buf
            self.nested += 1
            self.w(f"def {cons_name}(frame, st=st, L=L, {_HOT_DEFAULTS}):")
            self.indent()
            self.emit_stmt(stmt.construct)
            self.dedent()
            self.nested -= 1
            self.cur = outer
            self.defs.append(buf)
        d = stmt.directive
        cond_expr = None
        if not isinstance(d, Directive):
            make_action = _passthrough_action
        else:
            if d.model == "acc":
                make_action = self._lower_acc_action(stmt, d)
            else:
                make_action = self._lower_omp_action(stmt, d)
            cond_expr = self._clause_cond_expr(d)
        action = f"a{self.ncons}_{len(self.defs)}"
        bind_buf = _Buf(indent=1)
        bind_buf.w(f"{action} = {self.const(make_action)}(rt, {cons_name})")
        self.defs.append(bind_buf)
        self.tick()
        if cond_expr is None:
            self.w(f"{action}(frame)")
            return
        ok = self.tmp()
        self.w("try:")
        self.indent()
        cond_atom = self.emit_expr(cond_expr)
        self.w(f"{ok} = _truthy({cond_atom})")
        self.dedent()
        self.w("except _RF:")
        self.w(f"    {ok} = True")
        self.w(f"if {ok}:")
        self.w(f"    {action}(frame)")
        elif_body = f"{cons_name}(frame)" if cons_name != "None" else "pass"
        self.w("else:")
        self.w(f"    {elif_body}")

    def _clause_cond_expr(self, d: Directive) -> ast.Expr | None:
        """Pre-parse the ``if`` clause (closure `_lower_if_clause`)."""
        if not d.has_clause("if"):
            return None
        text = d.clause("if").argument or "1"
        if d.model == "omp":
            text = text.split(":")[-1]  # tolerate 'target:' modifier
        return _parse_clause_expr(text)  # None = treat as true
