"""Closure-compilation backend: lower function bodies to nested closures.

The tree-walking interpreter re-discovers the shape of the program on
every step: each statement/expression dispatches through ``isinstance``
ladders and every variable resolves by walking a parent-dict chain.
This module performs that discovery **once per translation unit**:

* every AST node is lowered to one small Python closure, bound to its
  children at lower time — executing a node is a single call, with no
  per-step dispatch;
* variable references are **slot-resolved**: lexical scoping is
  computed during lowering, locals live in a flat ``frame`` list
  indexed by integer slot, and only true globals fall back to the
  (single, flat) global environment dict;
* directive semantics are **pre-parsed**: clause mappings, privates,
  reduction vars, implicit-aggregate candidates, firstprivate-scalar
  snapshots and ``if``-clause condition expressions are computed per
  ``DirectiveStmt`` at lower time, not per execution.

Lowering happens in two stages so the result is shareable:

1. :func:`lower_unit` turns the unit into *builders* — ``make(rt)``
   callables memoized on the ``TranslationUnit`` object itself, so a
   cached :class:`~repro.compiler.driver.CompileResult` (the compile
   namespace of :mod:`repro.cache`) carries its lowered program to
   every later execution for free;
2. binding a per-run :class:`_Runtime` instantiates the actual
   closures (micro-seconds; the unit is a few hundred nodes) with the
   interpreter's step cell, globals dict and builtins captured in
   closure cells.

Semantics are shared with the walker through the module-level helpers
in :mod:`repro.runtime.interpreter` (``combine_binary`` etc.); tick
placement mirrors the walker exactly, so both backends produce
byte-identical :class:`~repro.runtime.executor.ExecutionResult`\\ s —
including ``steps`` — which the differential suite asserts corpus-wide.
"""

from __future__ import annotations

import operator

from repro.compiler import astnodes as ast
from repro.compiler.cparser import Parser
from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.lexer import Lexer
from repro.compiler.pragma import Directive
from repro.runtime.builtins import Builtins, _MATH_WRAPPERS
from repro.runtime.device import ACC_CLAUSE_SEMANTICS, OMP_MAP_SEMANTICS, block_of
from repro.runtime.interpreter import (
    Interpreter,
    RuntimeFault,
    StepLimitExceeded,
    _BreakSignal,
    _ContinueSignal,
    _PtrRef,
    _ReturnSignal,
    _VarRef,
    combine_binary,
    combine_compound,
    pointer_arith,
    segv_fault,
    shadow_value,
    unary_value,
)
from repro.runtime.values import (
    CArray,
    HeapBlock,
    MemoryFault,
    Pointer,
    UNINIT,
    coerce_to_type,
    sizeof_type,
    truthy,
)

__all__ = ["lower_unit", "call_main", "LoweredProgram", "LoweredFunction"]


# ---------------------------------------------------------------------------
# lowered program / per-run runtime
# ---------------------------------------------------------------------------


class LoweredFunction:
    """One function body lowered to builders plus its frame layout."""

    __slots__ = ("name", "nslots", "param_specs", "body_makers")

    def __init__(self, name, nslots, param_specs, body_makers):
        self.name = name
        self.nslots = nslots
        #: per-parameter (slot, ctype) — ``None`` for unnamed params,
        #: which consume an argument but bind nothing (as the walker).
        self.param_specs = param_specs
        self.body_makers = body_makers


class LoweredProgram:
    """All function bodies of one translation unit, lowered once."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.functions: dict[str, LoweredFunction] = {}
        for fn in unit.functions:
            if fn.body is not None and fn.name not in self.functions:
                self.functions[fn.name] = _Lowerer(unit).lower_function(fn)


def lower_unit(unit: ast.TranslationUnit) -> LoweredProgram:
    """Lower ``unit``, memoizing the result on the unit object.

    Cached compile results (see :class:`repro.cache.wrappers.
    CachingCompiler`) share their unit, so repeated executions of the
    same program — worker scaling, ablations, re-judging — skip
    lowering entirely.
    """
    program = getattr(unit, "_lowered_program", None)
    if program is None:
        program = LoweredProgram(unit)
        unit._lowered_program = program
    return program


class _Runtime:
    """Per-run bindings handed to every builder's ``make(rt)``."""

    __slots__ = ("interp", "steps", "limit", "genv", "gvars", "gtypes", "functions", "builtins")

    def __init__(self, interp):
        self.interp = interp
        self.steps = interp._step_state
        self.limit = interp.step_limit
        self.genv = interp.globals
        self.gvars = interp.globals.vars
        self.gtypes = interp.globals.types
        self.functions: dict[str, object] = {}
        self.builtins = interp.builtins


def call_main(interp) -> object:
    """Bind the lowered program to ``interp`` and run ``main()``."""
    program = lower_unit(interp.unit)
    rt = _Runtime(interp)
    for name, lowered in program.functions.items():
        rt.functions[name] = _bind_function(lowered, rt)
    return rt.functions["main"]([])


def _bind_function(lf: LoweredFunction, rt: _Runtime):
    """Instantiate one function's closures; returns ``call(args)``."""
    body = tuple(make(rt) for make in lf.body_makers)
    nslots = lf.nslots
    param_specs = lf.param_specs
    nparams = len(param_specs)
    interp = rt.interp

    def call(args):
        interp._call_depth += 1
        if interp._call_depth > 200:
            interp._call_depth -= 1
            raise segv_fault("stack overflow (recursion too deep)")
        frame = [None] * nslots
        for spec, value in zip(param_specs, args):
            if spec is not None:
                if isinstance(value, CArray):
                    value = value.pointer()
                frame[spec[0]] = coerce_to_type(value, spec[1])
        if len(args) < nparams:
            # missing arguments behave as indeterminate (walker: 0)
            for spec in param_specs[len(args):]:
                if spec is not None:
                    frame[spec[0]] = 0
        try:
            for stmt in body:
                stmt(frame)
        except _ReturnSignal as ret:
            return ret.value
        finally:
            interp._call_depth -= 1
        return None

    return call


# ---------------------------------------------------------------------------
# scopes and bindings
# ---------------------------------------------------------------------------


class _Binding:
    """One resolved local: frame slot plus declared type."""

    __slots__ = ("name", "slot", "ctype")

    def __init__(self, name: str, slot: int, ctype):
        self.name = name
        self.slot = slot
        self.ctype = ctype


#: coercion kinds specialized at lower time for slot stores
_RAW, _S32, _FLT, _GEN = 0, 1, 2, 3


def _coerce_kind(ctype) -> int:
    if ctype is None or ctype.is_pointer:
        return _RAW  # coerce_to_type returns the value unchanged
    if ctype.is_floating:
        return _FLT
    if ctype.base == "int":
        return _S32
    return _GEN


class _SlotRef:
    """Generic-lvalue view of a frame slot (mirrors ``_VarRef``)."""

    __slots__ = ("frame", "slot", "ctype")

    def __init__(self, frame, slot, ctype):
        self.frame = frame
        self.slot = slot
        self.ctype = ctype

    def load(self):
        return self.frame[self.slot]

    def store(self, value) -> None:
        ctype = self.ctype
        self.frame[self.slot] = coerce_to_type(value, ctype) if ctype is not None else value

    def address(self):
        value = self.frame[self.slot]
        if isinstance(value, CArray):
            return value.pointer()
        ctype = self.ctype or ast.DOUBLE
        block = HeapBlock(size=sizeof_type(ctype), label="addressed-scalar")
        block.cells[0] = value
        return Pointer(block, 0, ctype)


_SEGV_STDERR = "Segmentation fault (core dumped)\n"

_CMP_FNS = {
    "<": operator.lt, "<=": operator.le, ">": operator.gt,
    ">=": operator.ge, "==": operator.eq, "!=": operator.ne,
}
_ARITH_FNS = {"+": operator.add, "-": operator.sub, "*": operator.mul}


def _load_element(base, i: int):
    """``base[i]`` for a single subscript — mirrors the walker's
    resolve-then-load exactly (checks, fault messages, UNINIT → 0)."""
    if base is UNINIT or base is None or base == 0:
        raise segv_fault("subscript of NULL or uninitialized pointer")
    if base.__class__ is CArray:
        dims = base.dims
        if len(dims) == 1:
            if 0 <= i < dims[0]:
                block = base.block
                if block.freed:
                    raise RuntimeFault(
                        f"read from freed {block.label} block", 139, _SEGV_STDERR
                    )
                value = block.cells.get(i * base.elem_size, 0)
                return 0 if value is UNINIT else value
            raise segv_fault(
                f"array index {i} out of bounds for dimension of size {dims[0]}"
            )
        try:
            ptr = base.subarray_pointer([i])
        except MemoryFault as exc:
            raise segv_fault(str(exc)) from exc
        try:
            value = ptr.load()
        except MemoryFault as exc:
            raise RuntimeFault(str(exc), 139, _SEGV_STDERR) from exc
        return 0 if value is UNINIT else value
    if base.__class__ is Pointer:
        elem_size = base.elem_size
        offset = base.byte_offset + i * elem_size
        block = base.block
        if block.freed:
            raise RuntimeFault(f"read from freed {block.label} block", 139, _SEGV_STDERR)
        if offset < 0 or offset + elem_size > block.size:
            raise RuntimeFault(
                f"out-of-bounds read at byte {offset} of {block.size}-byte "
                f"{block.label} block",
                139,
                _SEGV_STDERR,
            )
        value = block.cells.get(offset, 0)
        return 0 if value is UNINIT else value
    raise segv_fault("subscript applied to a non-array value")


def _store_target(base, i: int):
    """Resolve ``base[i]`` as a store destination → (block, offset,
    elem_size, elem_type); raises exactly like the walker's resolve."""
    if base is UNINIT or base is None or base == 0:
        raise segv_fault("subscript of NULL or uninitialized pointer")
    if base.__class__ is CArray:
        dims = base.dims
        if len(dims) == 1:
            if 0 <= i < dims[0]:
                return (base.block, i * base.elem_size, base.elem_size, base.elem_type)
            raise segv_fault(
                f"array index {i} out of bounds for dimension of size {dims[0]}"
            )
        try:
            ptr = base.subarray_pointer([i])
        except MemoryFault as exc:
            raise segv_fault(str(exc)) from exc
        return (ptr.block, ptr.byte_offset, ptr.elem_size, ptr.pointee)
    if base.__class__ is Pointer:
        elem_size = base.elem_size
        return (base.block, base.byte_offset + i * elem_size, elem_size, base.pointee)
    raise segv_fault("subscript applied to a non-array value")


def _store_value(block, offset: int, elem_size: int, elem_type, value) -> None:
    """Coerce-then-store, mirroring ``_PtrRef.store`` → ``block.store``."""
    vc = value.__class__
    if vc is float and elem_type.pointers == 0 and elem_type.base in (
        "double", "float", "long double"
    ):
        stored = value
    elif (
        vc is int
        and elem_type.pointers == 0
        and elem_type.base == "int"
        and -2147483648 <= value <= 2147483647
    ):
        stored = value
    else:
        stored = coerce_to_type(value, elem_type)
    if block.freed:
        raise RuntimeFault(f"write to freed {block.label} block", 139, _SEGV_STDERR)
    if offset < 0 or offset + elem_size > block.size:
        raise RuntimeFault(
            f"out-of-bounds write at byte {offset} of {block.size}-byte "
            f"{block.label} block",
            139,
            _SEGV_STDERR,
        )
    block.cells[offset] = stored


def _static_flatten(init: ast.InitList) -> list[ast.Expr]:
    flat: list[ast.Expr] = []
    for item in init.items:
        if isinstance(item, ast.InitList):
            flat.extend(_static_flatten(item))
        else:
            flat.append(item)
    return flat


def _parse_clause_expr(text: str) -> ast.Expr | None:
    """Pre-parse an ``if``-clause condition once, at lower time."""
    diags = DiagnosticEngine()
    tokens = Lexer(text, "<clause>", diags).tokenize()
    expr = Parser(tokens, diags, "<clause>").parse_expression()
    if expr is None or diags.has_errors:
        return None
    return expr


# ---------------------------------------------------------------------------
# the lowerer
# ---------------------------------------------------------------------------


class _Lowerer:
    """Lower one function body; one instance per ``FunctionDef``."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.nslots = 0
        self.scopes: list[dict[str, _Binding]] = []

    # -- scope helpers -----------------------------------------------------

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, ctype) -> _Binding:
        binding = _Binding(name, self.nslots, ctype)
        self.nslots += 1
        self.scopes[-1][name] = binding
        return binding

    def resolve(self, name: str) -> _Binding | None:
        for scope in reversed(self.scopes):
            binding = scope.get(name)
            if binding is not None:
                return binding
        return None

    def _ref(self, name: str):
        """(name, slot-or-None) pair used by directive plans."""
        binding = self.resolve(name)
        return (name, binding.slot if binding is not None else None)

    # -- entry -------------------------------------------------------------

    def lower_function(self, fn: ast.FunctionDef) -> LoweredFunction:
        self.push_scope()
        param_specs = []
        for param in fn.params:
            if param.name:
                ctype = param.ctype.pointer_to() if param.array else param.ctype
                binding = self.declare(param.name, ctype)
                param_specs.append((binding.slot, ctype))
            else:
                param_specs.append(None)
        self.push_scope()
        body_makers = [self.lower_stmt(stmt) for stmt in fn.body.body]
        self.pop_scope()
        self.pop_scope()
        fn.frame_slots = self.nslots  # annotation for tests/debugging
        return LoweredFunction(fn.name, self.nslots, tuple(param_specs), body_makers)

    # -- statements --------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.Declaration):
            return self._lower_declaration(stmt)
        if isinstance(stmt, ast.ExprStmt):
            return self._lower_expr_stmt(stmt)
        if isinstance(stmt, ast.Compound):
            return self._lower_compound(stmt)
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt)
        if isinstance(stmt, ast.DoWhile):
            return self._lower_dowhile(stmt)
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt)
        if isinstance(stmt, ast.Return):
            return self._lower_return(stmt)
        if isinstance(stmt, ast.Break):
            return _lower_signal(_BreakSignal)
        if isinstance(stmt, ast.Continue):
            return _lower_signal(_ContinueSignal)
        if isinstance(stmt, ast.DirectiveStmt):
            return self._lower_directive(stmt)
        message = f"unsupported statement {type(stmt).__name__}"

        def make(rt):
            st, limit = rt.steps, rt.limit

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                raise RuntimeFault(message, 1, "")

            return run

        return make

    def _lower_expr_stmt(self, stmt: ast.ExprStmt):
        if stmt.expr is None:
            def make(rt):
                st, limit = rt.steps, rt.limit

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)

                return run

            return make
        expr_m = self.lower_expr(stmt.expr)

        def make(rt):
            st, limit = rt.steps, rt.limit
            expr_c = expr_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                expr_c(frame)

            return run

        return make

    def _lower_compound(self, stmt: ast.Compound):
        self.push_scope()
        child_makers = [self.lower_stmt(child) for child in stmt.body]
        self.pop_scope()

        def make(rt):
            st, limit = rt.steps, rt.limit
            children = tuple(m(rt) for m in child_makers)
            if len(children) == 1:
                only = children[0]

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    only(frame)

                return run

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                for child in children:
                    child(frame)

            return run

        return make

    def _lower_if(self, stmt: ast.If):
        cond_m = self.lower_expr(stmt.cond)
        then_m = self.lower_stmt(stmt.then)
        else_m = self.lower_stmt(stmt.otherwise) if stmt.otherwise is not None else None

        def make(rt):
            st, limit = rt.steps, rt.limit
            cond_c = cond_m(rt)
            then_c = then_m(rt)
            else_c = else_m(rt) if else_m is not None else None

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                c = cond_c(frame)
                if c != 0 if c.__class__ is int else truthy(c):
                    then_c(frame)
                elif else_c is not None:
                    else_c(frame)

            return run

        return make

    def _lower_while(self, stmt: ast.While):
        cond_m = self.lower_expr(stmt.cond)
        body_m = self.lower_stmt(stmt.body)

        def make(rt):
            st, limit = rt.steps, rt.limit
            cond_c = cond_m(rt)
            body_c = body_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                while True:
                    c = cond_c(frame)
                    if not (c != 0 if c.__class__ is int else truthy(c)):
                        break
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    try:
                        body_c(frame)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        continue

            return run

        return make

    def _lower_dowhile(self, stmt: ast.DoWhile):
        cond_m = self.lower_expr(stmt.cond)
        body_m = self.lower_stmt(stmt.body)

        def make(rt):
            st, limit = rt.steps, rt.limit
            cond_c = cond_m(rt)
            body_c = body_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                while True:
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    try:
                        body_c(frame)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        pass
                    c = cond_c(frame)
                    if not (c != 0 if c.__class__ is int else truthy(c)):
                        break

            return run

        return make

    def _lower_for(self, stmt: ast.For):
        self.push_scope()
        init_m = self.lower_stmt(stmt.init) if stmt.init is not None else None
        cond_m = self.lower_expr(stmt.cond) if stmt.cond is not None else None
        step_m = self.lower_expr(stmt.step) if stmt.step is not None else None
        body_m = self.lower_stmt(stmt.body)
        self.pop_scope()

        def make(rt):
            st, limit = rt.steps, rt.limit
            init_c = init_m(rt) if init_m is not None else None
            cond_c = cond_m(rt) if cond_m is not None else None
            step_c = step_m(rt) if step_m is not None else None
            body_c = body_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                if init_c is not None:
                    init_c(frame)
                while True:
                    if cond_c is not None:
                        c = cond_c(frame)
                        if not (c != 0 if c.__class__ is int else truthy(c)):
                            break
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    try:
                        body_c(frame)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        pass
                    if step_c is not None:
                        step_c(frame)

            return run

        return make

    def _lower_return(self, stmt: ast.Return):
        value_m = self.lower_expr(stmt.value) if stmt.value is not None else None

        def make(rt):
            st, limit = rt.steps, rt.limit
            value_c = value_m(rt) if value_m is not None else None

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                raise _ReturnSignal(value_c(frame) if value_c is not None else None)

            return run

        return make

    def _lower_declaration(self, decl: ast.Declaration):
        part_makers = []
        for d in decl.declarators:
            if d.is_array:
                part_makers.append(self._lower_array_declarator(d))
            else:
                part_makers.append(self._lower_scalar_declarator(d))

        def make(rt):
            st, limit = rt.steps, rt.limit
            parts = tuple(m(rt) for m in part_makers)
            if len(parts) == 1:
                only = parts[0]

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    only(frame)

                return run

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                for part in parts:
                    part(frame)

            return run

        return make

    def _lower_array_declarator(self, d: ast.Declarator):
        dim_makers = [
            self.lower_expr(dim) if dim is not None else None for dim in d.array_dims
        ]
        item_makers = (
            [self.lower_expr(item) for item in _static_flatten(d.init)]
            if isinstance(d.init, ast.InitList)
            else None
        )
        ctype = d.ctype
        elem_size = sizeof_type(ctype)
        binding = self.declare(d.name, ctype.pointer_to())
        slot = binding.slot
        d.slot = slot  # annotation

        def make(rt):
            dim_cs = tuple(m(rt) if m is not None else None for m in dim_makers)
            item_cs = tuple(m(rt) for m in item_makers) if item_makers is not None else None

            def run(frame):
                dims = [
                    0 if c is None else max(0, int(c(frame))) for c in dim_cs
                ]
                arr = CArray(ctype, dims)
                if item_cs is not None:
                    flat = [c(frame) for c in item_cs]
                    block = arr.block
                    for i, value in enumerate(flat[: arr.flat_length()]):
                        block.store(i * elem_size, elem_size, coerce_to_type(value, ctype))
                frame[slot] = arr

            return run

        return make

    def _lower_scalar_declarator(self, d: ast.Declarator):
        ctype = d.ctype
        init_m = self.lower_expr(d.init) if d.init is not None else None
        binding = self.declare(d.name, ctype)
        slot = binding.slot
        d.slot = slot  # annotation
        if init_m is None:
            if ctype.is_pointer:
                default = UNINIT
            elif ctype.is_floating:
                default = 0.0
            else:
                default = 0

            def make(rt):
                def run(frame):
                    frame[slot] = default

                return run

            return make

        def make(rt):
            init_c = init_m(rt)

            def run(frame):
                frame[slot] = coerce_to_type(init_c(frame), ctype)

            return run

        return make

    # -- expressions -------------------------------------------------------

    def lower_expr(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLiteral):
            return _lower_const(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return _lower_const(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return _lower_const(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return _lower_const(ord(expr.value[0]) if expr.value else 0)
        if isinstance(expr, ast.Identifier):
            return self._lower_identifier(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Assignment):
            return self._lower_assignment(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.Index):
            return self._lower_index_load(expr)
        if isinstance(expr, ast.Cast):
            return self._lower_cast(expr)
        if isinstance(expr, ast.SizeOf):
            return self._lower_sizeof(expr)
        if isinstance(expr, ast.CommaExpr):
            return self._lower_comma(expr)
        if isinstance(expr, ast.Member):
            return _lower_raiser(
                RuntimeFault(
                    "struct member access is not supported by this substrate", 1,
                    "runtime error: unsupported struct access\n",
                )
            )
        if isinstance(expr, ast.InitList):
            return self._lower_initlist(expr)
        return _lower_raiser(
            RuntimeFault(f"unsupported expression {type(expr).__name__}", 1, "")
        )

    def _lower_identifier(self, expr: ast.Identifier):
        binding = self.resolve(expr.name)
        if binding is not None:
            slot = binding.slot
            expr.slot = slot  # annotation

            def make(rt):
                st, limit = rt.steps, rt.limit

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    return frame[slot]

                return run

            return make
        name = expr.name

        def make(rt):
            st, limit = rt.steps, rt.limit
            gvars = rt.gvars

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                try:
                    return gvars[name]
                except KeyError:
                    raise segv_fault(f"use of unknown symbol '{name}'") from None

            return run

        return make

    def _lower_binary(self, expr: ast.BinaryOp):
        op = expr.op
        left_m = self.lower_expr(expr.left)
        right_m = self.lower_expr(expr.right)
        if op in ("&&", "||"):
            is_and = op == "&&"

            def make(rt):
                st, limit = rt.steps, rt.limit
                left_c = left_m(rt)
                right_c = right_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    l = left_c(frame)
                    lt = l != 0 if l.__class__ is int else truthy(l)
                    if is_and:
                        if not lt:
                            return 0
                    elif lt:
                        return 1
                    r = right_c(frame)
                    return 1 if (r != 0 if r.__class__ is int else truthy(r)) else 0

                return run

            return make

        # fused superinstruction: both operands pure (slot/const) means
        # the three ticks (node + operands) can be batched and the
        # operand closures skipped entirely
        if op in _CMP_FNS or op in _ARITH_FNS:
            left_plan = self._simple_operand(expr.left)
            right_plan = self._simple_operand(expr.right)
            if left_plan is not None and right_plan is not None:
                return _lower_fused_binary(op, left_plan, right_plan)

        # arithmetic fast paths sit in front of the shared slow path so
        # int/float work never touches the isinstance ladders
        if op in ("+", "-", "*"):
            def make(rt, _op=op):
                st, limit = rt.steps, rt.limit
                left_c = left_m(rt)
                right_c = right_m(rt)
                if _op == "+":
                    def run(frame):
                        st[0] = n = st[0] + 1
                        if n > limit:
                            raise StepLimitExceeded(limit)
                        l = left_c(frame)
                        r = right_c(frame)
                        lc = l.__class__
                        rc = r.__class__
                        if (lc is int or lc is float) and (rc is int or rc is float):
                            return l + r
                        return combine_binary("+", l, r)
                elif _op == "-":
                    def run(frame):
                        st[0] = n = st[0] + 1
                        if n > limit:
                            raise StepLimitExceeded(limit)
                        l = left_c(frame)
                        r = right_c(frame)
                        lc = l.__class__
                        rc = r.__class__
                        if (lc is int or lc is float) and (rc is int or rc is float):
                            return l - r
                        return combine_binary("-", l, r)
                else:
                    def run(frame):
                        st[0] = n = st[0] + 1
                        if n > limit:
                            raise StepLimitExceeded(limit)
                        l = left_c(frame)
                        r = right_c(frame)
                        lc = l.__class__
                        rc = r.__class__
                        if (lc is int or lc is float) and (rc is int or rc is float):
                            return l * r
                        return combine_binary("*", l, r)
                return run

            return make

        if op in _CMP_FNS:
            cmp = _CMP_FNS[op]

            def make(rt):
                st, limit = rt.steps, rt.limit
                left_c = left_m(rt)
                right_c = right_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    l = left_c(frame)
                    r = right_c(frame)
                    lc = l.__class__
                    rc = r.__class__
                    if (lc is int or lc is float) and (rc is int or rc is float):
                        return 1 if cmp(l, r) else 0
                    return combine_binary(op, l, r)

                return run

            return make

        def make(rt):
            st, limit = rt.steps, rt.limit
            left_c = left_m(rt)
            right_c = right_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                return combine_binary(op, left_c(frame), right_c(frame))

            return run

        return make

    def _lower_unary(self, expr: ast.UnaryOp):
        op = expr.op
        if op in ("++", "--"):
            return self._lower_incdec(expr)
        if op == "&":
            lvalue_m = self.lower_lvalue(expr.operand)

            def make(rt):
                st, limit = rt.steps, rt.limit
                lvalue_c = lvalue_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    return lvalue_c(frame).address()

                return run

            return make
        if op == "*":
            operand_m = self.lower_expr(expr.operand)

            def make(rt):
                st, limit = rt.steps, rt.limit
                operand_c = operand_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    value = operand_c(frame)
                    if value is UNINIT or value == 0 or value is None:
                        raise segv_fault("dereference of NULL or uninitialized pointer")
                    if isinstance(value, CArray):
                        value = value.pointer()
                    if not isinstance(value, Pointer):
                        raise segv_fault("dereference of a non-pointer value")
                    loaded = value.load()
                    return 0 if loaded is UNINIT else loaded

                return run

            return make
        operand_m = self.lower_expr(expr.operand)
        if op == "!":
            def make(rt):
                st, limit = rt.steps, rt.limit
                operand_c = operand_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    value = operand_c(frame)
                    if value.__class__ is int:
                        return 0 if value != 0 else 1
                    return unary_value("!", value)

                return run

            return make
        if op == "-":
            def make(rt):
                st, limit = rt.steps, rt.limit
                operand_c = operand_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    value = operand_c(frame)
                    vc = value.__class__
                    if vc is int or vc is float:
                        return -value
                    return unary_value("-", value)

                return run

            return make

        def make(rt):
            st, limit = rt.steps, rt.limit
            operand_c = operand_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                return unary_value(op, operand_c(frame))

            return run

        return make

    def _lower_incdec(self, expr: ast.UnaryOp):
        delta = 1 if expr.op == "++" else -1
        prefix = expr.prefix
        target = expr.operand
        if isinstance(target, ast.Identifier):
            binding = self.resolve(target.name)
            if binding is not None:
                slot, ctype = binding.slot, binding.ctype
                kind = _coerce_kind(ctype)
                target.slot = slot  # annotation

                def make(rt):
                    st, limit = rt.steps, rt.limit

                    def run(frame):
                        st[0] = n = st[0] + 1
                        if n > limit:
                            raise StepLimitExceeded(limit)
                        old = frame[slot]
                        if old.__class__ is int:
                            new = old + delta
                            if kind == _S32 and -2147483648 <= new <= 2147483647:
                                frame[slot] = new
                            else:
                                # walker coerces on every store: an int in
                                # a float-typed slot must become float
                                frame[slot] = (
                                    coerce_to_type(new, ctype) if ctype is not None else new
                                )
                            return new if prefix else old
                        if old is UNINIT:
                            old = 0
                        if isinstance(old, Pointer):
                            new = old.add(delta)
                        else:
                            new = old + delta
                        frame[slot] = coerce_to_type(new, ctype) if ctype is not None else new
                        return new if prefix else old

                    return run

                return make
        lvalue_m = self.lower_lvalue(target)

        def make(rt):
            st, limit = rt.steps, rt.limit
            lvalue_c = lvalue_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                ref = lvalue_c(frame)
                old = ref.load()
                if old is UNINIT:
                    old = 0
                if isinstance(old, Pointer):
                    new = old.add(delta)
                else:
                    new = old + delta
                ref.store(new)
                return new if prefix else old

            return run

        return make

    def _lower_conditional(self, expr: ast.Conditional):
        cond_m = self.lower_expr(expr.cond)
        then_m = self.lower_expr(expr.then)
        else_m = self.lower_expr(expr.otherwise)

        def make(rt):
            st, limit = rt.steps, rt.limit
            cond_c = cond_m(rt)
            then_c = then_m(rt)
            else_c = else_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                c = cond_c(frame)
                if c != 0 if c.__class__ is int else truthy(c):
                    return then_c(frame)
                return else_c(frame)

            return run

        return make

    def _lower_comma(self, expr: ast.CommaExpr):
        part_makers = [self.lower_expr(part) for part in expr.parts]

        def make(rt):
            st, limit = rt.steps, rt.limit
            parts = tuple(m(rt) for m in part_makers)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                result = 0
                for part in parts:
                    result = part(frame)
                return result

            return run

        return make

    def _lower_initlist(self, expr: ast.InitList):
        item_makers = [self.lower_expr(item) for item in expr.items]

        def make(rt):
            st, limit = rt.steps, rt.limit
            items = tuple(m(rt) for m in item_makers)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                return [item(frame) for item in items]

            return run

        return make

    def _lower_cast(self, expr: ast.Cast):
        operand_m = self.lower_expr(expr.operand)
        target_type = expr.target_type
        pointee = target_type.pointee() if target_type.is_pointer else None

        def make(rt):
            st, limit = rt.steps, rt.limit
            operand_c = operand_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                value = operand_c(frame)
                if isinstance(value, Pointer) and pointee is not None:
                    return value.retag(pointee)
                if isinstance(value, (Pointer, CArray)):
                    return value
                return coerce_to_type(value, target_type)

            return run

        return make

    def _lower_sizeof(self, expr: ast.SizeOf):
        if expr.target_type is not None:
            return _lower_const(sizeof_type(expr.target_type))
        operand_m = self.lower_expr(expr.operand) if expr.operand is not None else None

        def make(rt):
            st, limit = rt.steps, rt.limit
            operand_c = operand_m(rt) if operand_m is not None else None

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                value = operand_c(frame) if operand_c is not None else 0
                if isinstance(value, CArray):
                    return value.block.size
                if isinstance(value, Pointer):
                    return 8
                if isinstance(value, float):
                    return 8
                return 4

            return run

        return make

    def _lower_call(self, expr: ast.Call):
        name = expr.callee
        arg_makers = [self.lower_expr(arg) for arg in expr.args]
        fn = self.unit.function(name)
        if fn is not None:
            def make(rt):
                st, limit = rt.steps, rt.limit
                arg_cs = tuple(m(rt) for m in arg_makers)
                functions = rt.functions

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    return functions[name]([c(frame) for c in arg_cs])

                return run

            return make
        attr = f"fn_{name}"
        if hasattr(Builtins, attr):
            def make(rt):
                st, limit = rt.steps, rt.limit
                arg_cs = tuple(m(rt) for m in arg_makers)
                method = getattr(rt.builtins, attr)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    values = [c(frame) for c in arg_cs]
                    try:
                        return method(*values)
                    except (TypeError, IndexError) as exc:
                        raise RuntimeFault(
                            f"bad call to {name}: {exc}", 139,
                            "Segmentation fault (core dumped)\n",
                        ) from exc

                return run

            return make
        wrapper = _MATH_WRAPPERS.get(name)
        if wrapper is not None:
            def make(rt):
                st, limit = rt.steps, rt.limit
                arg_cs = tuple(m(rt) for m in arg_makers)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    values = [c(frame) for c in arg_cs]
                    try:
                        return wrapper(*values)
                    except (TypeError, IndexError) as exc:
                        raise RuntimeFault(
                            f"bad call to {name}: {exc}", 139,
                            "Segmentation fault (core dumped)\n",
                        ) from exc

                return run

            return make

        def make(rt):
            st, limit = rt.steps, rt.limit
            arg_cs = tuple(m(rt) for m in arg_makers)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                for c in arg_cs:
                    c(frame)
                raise RuntimeFault(
                    f"call to undefined function '{name}'", 127,
                    f"symbol lookup error: undefined symbol: {name}\n",
                )

            return run

        return make

    # -- assignment --------------------------------------------------------

    def _lower_assignment(self, expr: ast.Assignment):
        target = expr.target
        value_m = self.lower_expr(expr.value)
        if expr.op == "=":
            if isinstance(target, ast.Identifier):
                binding = self.resolve(target.name)
                if binding is not None:
                    return self._lower_slot_assign(binding, target, value_m)
                return self._lower_global_assign(target.name, value_m)
            if isinstance(target, ast.Index) and not isinstance(target.base, ast.Index):
                return self._lower_index_assign(target, value_m)
            lvalue_m = self.lower_lvalue(target)

            def make(rt):
                st, limit = rt.steps, rt.limit
                lvalue_c = lvalue_m(rt)
                value_c = value_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    ref = lvalue_c(frame)
                    value = value_c(frame)
                    ref.store(value)
                    return value

                return run

            return make
        # compound assignment: resolve, evaluate rhs, load old, combine
        binop = expr.op[:-1]
        if isinstance(target, ast.Identifier):
            binding = self.resolve(target.name)
            if binding is not None:
                return self._lower_slot_compound(binding, target, binop, value_m)
        lvalue_m = self.lower_lvalue(target)

        def make(rt):
            st, limit = rt.steps, rt.limit
            lvalue_c = lvalue_m(rt)
            value_c = value_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                ref = lvalue_c(frame)
                value = value_c(frame)
                old = ref.load()
                if old is UNINIT:
                    old = 0
                combined = combine_compound(binop, old, value)
                ref.store(combined)
                return combined

            return run

        return make

    def _lower_slot_assign(self, binding: _Binding, target: ast.Identifier, value_m):
        slot, ctype = binding.slot, binding.ctype
        kind = _coerce_kind(ctype)
        target.slot = slot  # annotation

        def make(rt):
            st, limit = rt.steps, rt.limit
            value_c = value_m(rt)
            if kind == _RAW:
                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    value = value_c(frame)
                    frame[slot] = value
                    return value
            elif kind == _S32:
                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    value = value_c(frame)
                    if value.__class__ is int and -2147483648 <= value <= 2147483647:
                        frame[slot] = value
                    else:
                        frame[slot] = coerce_to_type(value, ctype)
                    return value
            elif kind == _FLT:
                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    value = value_c(frame)
                    if value.__class__ is float:
                        frame[slot] = value
                    else:
                        frame[slot] = coerce_to_type(value, ctype)
                    return value
            else:
                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    value = value_c(frame)
                    frame[slot] = coerce_to_type(value, ctype)
                    return value
            return run

        return make

    def _lower_global_assign(self, name: str, value_m):
        def make(rt):
            st, limit = rt.steps, rt.limit
            value_c = value_m(rt)
            gvars = rt.gvars
            gtypes = rt.gtypes

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                if name not in gvars:
                    raise segv_fault(f"assignment to unknown symbol '{name}'")
                value = value_c(frame)
                ctype = gtypes.get(name)
                gvars[name] = coerce_to_type(value, ctype) if ctype is not None else value
                return value

            return run

        return make

    def _lower_slot_compound(self, binding: _Binding, target: ast.Identifier, binop: str, value_m):
        slot, ctype = binding.slot, binding.ctype
        kind = _coerce_kind(ctype)
        fast_arith = binop in ("+", "-", "*")
        target.slot = slot  # annotation

        def make(rt):
            st, limit = rt.steps, rt.limit
            value_c = value_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                value = value_c(frame)
                old = frame[slot]
                if old is UNINIT:
                    old = 0
                oc = old.__class__
                vc = value.__class__
                if fast_arith and (oc is int or oc is float) and (vc is int or vc is float):
                    if binop == "+":
                        combined = old + value
                    elif binop == "-":
                        combined = old - value
                    else:
                        combined = old * value
                else:
                    combined = combine_compound(binop, old, value)
                cc = combined.__class__
                if kind == _RAW:
                    frame[slot] = combined
                elif kind == _S32 and cc is int and -2147483648 <= combined <= 2147483647:
                    frame[slot] = combined
                elif kind == _FLT and cc is float:
                    frame[slot] = combined
                else:
                    frame[slot] = coerce_to_type(combined, ctype)
                return combined

            return run

        return make

    def _lower_index_assign(self, target: ast.Index, value_m):
        """``base[i] = value`` with a single subscript — the hot store.

        Mirrors the walker's order: resolve the destination (index and
        base first, bounds checked), THEN evaluate the right-hand side,
        then coerce-and-store.
        """
        base_plan = (
            self._simple_operand(target.base)
            if isinstance(target.base, ast.Identifier)
            else None
        )
        index_plan = self._simple_operand(target.index)
        if base_plan is not None and base_plan[0] == "slot" and index_plan is not None:
            base_slot = base_plan[1]
            index_kind, index_val = index_plan
            const_i = int(index_val) if index_kind == "const" else None
            index_slot = index_val if index_kind == "slot" else None

            def make(rt):
                st, limit = rt.steps, rt.limit
                value_c = value_m(rt)

                def run(frame):
                    # Assignment + index + base = 3 pure ticks, batched
                    st[0] = n = st[0] + 3
                    if n > limit:
                        st[0] = limit + 1
                        raise StepLimitExceeded(limit)
                    if const_i is not None:
                        i = const_i
                    else:
                        i = frame[index_slot]
                        if i.__class__ is not int:
                            if i is UNINIT:
                                raise segv_fault("array subscript is uninitialized")
                            i = int(i)
                    block, offset, elem_size, elem_type = _store_target(
                        frame[base_slot], i
                    )
                    value = value_c(frame)
                    _store_value(block, offset, elem_size, elem_type, value)
                    return value

                return run

            return make
        index_m = self.lower_expr(target.index)
        base_m = self.lower_expr(target.base)

        def make(rt):
            st, limit = rt.steps, rt.limit
            index_c = index_m(rt)
            base_c = base_m(rt)
            value_c = value_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                index = index_c(frame)
                if index.__class__ is not int:
                    if index is UNINIT:
                        raise segv_fault("array subscript is uninitialized")
                    index = int(index)
                block, offset, elem_size, elem_type = _store_target(base_c(frame), index)
                value = value_c(frame)
                _store_value(block, offset, elem_size, elem_type, value)
                return value

            return run

        return make

    # -- index loads -------------------------------------------------------

    def _simple_operand(self, expr: ast.Expr):
        """('slot', i) / ('const', v) for pure, non-faulting operands.

        Only these may participate in tick-batched superinstructions: a
        frame-slot read or constant cannot fault, so pre-charging its
        tick never changes the step count observable at a fault.
        """
        if isinstance(expr, ast.Identifier):
            binding = self.resolve(expr.name)
            if binding is not None:
                expr.slot = binding.slot  # annotation
                return ("slot", binding.slot)
            return None  # global reads can fault (unknown symbol)
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)):
            return ("const", expr.value)
        if isinstance(expr, ast.StringLiteral):
            return ("const", expr.value)
        if isinstance(expr, ast.CharLiteral):
            return ("const", ord(expr.value[0]) if expr.value else 0)
        return None

    def _lower_index_load(self, expr: ast.Index):
        if not isinstance(expr.base, ast.Index):
            base_plan = (
                self._simple_operand(expr.base)
                if isinstance(expr.base, ast.Identifier)
                else None
            )
            index_plan = self._simple_operand(expr.index)
            if base_plan is not None and base_plan[0] == "slot" and index_plan is not None:
                # fused superinstruction: Index + index + base = 3 ticks,
                # all pure, batched up front
                base_slot = base_plan[1]
                index_kind, index_val = index_plan
                if index_kind == "const":
                    const_i = int(index_val)

                    def make(rt):
                        st, limit = rt.steps, rt.limit

                        def run(frame):
                            st[0] = n = st[0] + 3
                            if n > limit:
                                st[0] = limit + 1
                                raise StepLimitExceeded(limit)
                            return _load_element(frame[base_slot], const_i)

                        return run

                    return make
                index_slot = index_val

                def make(rt):
                    st, limit = rt.steps, rt.limit

                    def run(frame):
                        st[0] = n = st[0] + 3
                        if n > limit:
                            st[0] = limit + 1
                            raise StepLimitExceeded(limit)
                        i = frame[index_slot]
                        if i.__class__ is not int:
                            if i is UNINIT:
                                raise segv_fault("array subscript is uninitialized")
                            i = int(i)
                        return _load_element(frame[base_slot], i)

                    return run

                return make
            index_m = self.lower_expr(expr.index)
            base_m = self.lower_expr(expr.base)

            def make(rt):
                st, limit = rt.steps, rt.limit
                index_c = index_m(rt)
                base_c = base_m(rt)

                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    index = index_c(frame)
                    if index.__class__ is not int:
                        if index is UNINIT:
                            raise segv_fault("array subscript is uninitialized")
                        index = int(index)
                    return _load_element(base_c(frame), index)

                return run

            return make
        ref_m = self._lower_index_ref(expr)

        def make(rt):
            st, limit = rt.steps, rt.limit
            ref_c = ref_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                value = ref_c(frame).load()
                return 0 if value is UNINIT else value

            return run

        return make

    def _lower_index_ref(self, expr: ast.Index):
        """Generic index chain → ``_PtrRef`` (mirrors ``_resolve_index``)."""
        index_makers = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            index_makers.append(self.lower_expr(node.index))
            node = node.base
        base_m = self.lower_expr(node)

        def make(rt):
            st, limit = rt.steps, rt.limit
            index_cs = tuple(m(rt) for m in index_makers)
            base_c = base_m(rt)

            def run(frame):
                indices = []
                for c in index_cs:
                    value = c(frame)
                    if value is UNINIT:
                        raise segv_fault("array subscript is uninitialized")
                    indices.append(int(value))
                indices.reverse()
                base = base_c(frame)
                if base is UNINIT or base is None or base == 0:
                    raise segv_fault("subscript of NULL or uninitialized pointer")
                try:
                    if isinstance(base, CArray):
                        return _PtrRef(base.subarray_pointer(indices))
                    if isinstance(base, Pointer):
                        ptr = base
                        for i in indices:
                            ptr = ptr.index(i)
                        return _PtrRef(ptr)
                except MemoryFault as exc:
                    raise segv_fault(str(exc)) from exc
                raise segv_fault("subscript applied to a non-array value")

            return run

        return make

    # -- lvalues -----------------------------------------------------------

    def lower_lvalue(self, expr: ast.Expr):
        """Lower to a closure producing a ``_Ref``-style object."""
        if isinstance(expr, ast.Identifier):
            binding = self.resolve(expr.name)
            if binding is not None:
                slot, ctype = binding.slot, binding.ctype
                expr.slot = slot  # annotation

                def make(rt):
                    def run(frame):
                        return _SlotRef(frame, slot, ctype)

                    return run

                return make
            name = expr.name

            def make(rt):
                gvars = rt.gvars
                genv = rt.genv

                def run(frame):
                    if name not in gvars:
                        raise segv_fault(f"assignment to unknown symbol '{name}'")
                    return _VarRef(genv, name)

                return run

            return make
        if isinstance(expr, ast.Index):
            return self._lower_index_ref(expr)
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            operand_m = self.lower_expr(expr.operand)

            def make(rt):
                operand_c = operand_m(rt)

                def run(frame):
                    value = operand_c(frame)
                    if value is UNINIT or value == 0 or value is None:
                        raise segv_fault("dereference of NULL or uninitialized pointer")
                    if isinstance(value, CArray):
                        value = value.pointer()
                    if not isinstance(value, Pointer):
                        raise segv_fault("dereference of a non-pointer value")
                    return _PtrRef(value)

                return run

            return make
        message = f"expression is not assignable ({type(expr).__name__})"

        def make(rt):
            def run(frame):
                raise segv_fault(message)

            return run

        return make

    # -- directives --------------------------------------------------------
    #
    # Clause mappings, privates, reduction vars, implicit-aggregate
    # candidates, firstprivate-scalar snapshots and ``if``-clause
    # conditions are all computed HERE, once, instead of per execution.
    # Action makers take ``(rt, construct_c)`` so the lowered construct
    # closure is bound exactly once and shared with the if-false path.

    def _lower_directive(self, stmt: ast.DirectiveStmt):
        construct_m = (
            self.lower_stmt(stmt.construct) if stmt.construct is not None else None
        )
        d = stmt.directive
        if not isinstance(d, Directive):
            make_action = _passthrough_action
            cond_m = None
        else:
            if d.model == "acc":
                make_action = self._lower_acc_action(stmt, d)
            else:
                make_action = self._lower_omp_action(stmt, d)
            cond_m = self._lower_if_clause(d)

        def make(rt):
            st, limit = rt.steps, rt.limit
            construct_c = construct_m(rt) if construct_m is not None else None
            action_c = make_action(rt, construct_c)
            if cond_m is None:
                def run(frame):
                    st[0] = n = st[0] + 1
                    if n > limit:
                        raise StepLimitExceeded(limit)
                    action_c(frame)

                return run
            cond_c = cond_m(rt)

            def run(frame):
                st[0] = n = st[0] + 1
                if n > limit:
                    raise StepLimitExceeded(limit)
                try:
                    ok = truthy(cond_c(frame))
                except RuntimeFault:
                    ok = True
                if not ok:
                    if construct_c is not None:
                        construct_c(frame)
                    return
                action_c(frame)

            return run

        return make

    def _lower_if_clause(self, d: Directive):
        if not d.has_clause("if"):
            return None
        text = d.clause("if").argument or "1"
        if d.model == "omp":
            text = text.split(":")[-1]  # tolerate 'target:' modifier
        parsed = _parse_clause_expr(text)
        if parsed is None:
            return None  # walker treats unparseable conditions as true
        return self.lower_expr(parsed)

    def _lower_acc_action(self, stmt: ast.DirectiveStmt, d: Directive):
        name = d.name
        if name in Interpreter._ACC_COMPUTE:
            return self._lower_region(stmt, d, model="acc", compute=True)
        if name == "data":
            return self._lower_region(stmt, d, model="acc", compute=False)
        if name == "enter data":
            items = []
            for clause in d.clauses:
                sem = ACC_CLAUSE_SEMANTICS.get(clause.name)
                if sem is None:
                    continue
                items.append((sem[0], [self._ref(v) for v in clause.variables()]))
            return self._data_action(
                lambda device, block, enter_copy: device.map_block(block, copyin=enter_copy),
                items,
            )
        if name == "exit data":
            finalize = d.has_clause("finalize")
            items = []
            for clause in d.clauses:
                if clause.name not in ("copyout", "delete", "detach"):
                    continue
                items.append(
                    (clause.name == "copyout", [self._ref(v) for v in clause.variables()])
                )
            return self._data_action(
                lambda device, block, copyout: device.unmap_block(
                    block, copyout=copyout, finalize=finalize
                ),
                items,
            )
        if name == "update":
            items = []
            for clause in d.clauses:
                if clause.name in ("self", "host"):
                    items.append((False, [self._ref(v) for v in clause.variables()]))
                elif clause.name == "device":
                    items.append((True, [self._ref(v) for v in clause.variables()]))
            return self._data_action(
                lambda device, block, to_device: (
                    device.update_device(block) if to_device else device.update_host(block)
                ),
                items,
            )
        # host_data / loop / atomic / wait / init / ... : run the construct
        return _passthrough_action

    def _lower_omp_action(self, stmt: ast.DirectiveStmt, d: Directive):
        name = d.name
        if name in Interpreter._OMP_TARGET_COMPUTE:
            return self._lower_region(stmt, d, model="omp", compute=True)
        if name == "target data":
            return self._lower_region(stmt, d, model="omp", compute=False)
        if name in ("target enter data", "target exit data"):
            entering = name == "target enter data"
            items = []
            for clause in d.clauses:
                if clause.name != "map":
                    continue
                map_type = (
                    (clause.modifier() or ("to" if entering else "from"))
                    .split(",")[-1]
                    .strip()
                )
                enter_copy, exit_copy = OMP_MAP_SEMANTICS.get(map_type, (False, False))
                flag = enter_copy if entering else exit_copy
                items.append((flag, [self._ref(v) for v in clause.variables()]))
            if entering:
                return self._data_action(
                    lambda device, block, copyin: device.map_block(block, copyin=copyin),
                    items,
                )
            return self._data_action(
                lambda device, block, copyout: device.unmap_block(block, copyout=copyout),
                items,
            )
        if name == "target update":
            items = []
            for clause in d.clauses:
                if clause.name == "to":
                    items.append((True, [self._ref(v) for v in clause.variables()]))
                elif clause.name == "from":
                    items.append((False, [self._ref(v) for v in clause.variables()]))
            return self._data_action(
                lambda device, block, to_device: (
                    device.update_device(block) if to_device else device.update_host(block)
                ),
                items,
            )
        if name in Interpreter._OMP_HOST_PARALLEL:
            return self._lower_host_parallel(stmt, d)
        # atomic / barrier / taskwait / flush / declare target / ...
        return _passthrough_action

    def _data_action(self, apply_fn, items):
        """Standalone data directive: apply ``apply_fn`` per mapped block."""

        def make_action(rt, construct_c):
            interp = rt.interp
            gvars = rt.gvars

            def run(frame):
                device = interp.device
                for flag, refs in items:
                    for name, slot in refs:
                        value = frame[slot] if slot is not None else gvars.get(name)
                        block = block_of(value)
                        if block is not None:
                            apply_fn(device, block, flag)

            return run

        return make_action

    def _lower_region(self, stmt: ast.DirectiveStmt, d: Directive, model: str, compute: bool):
        """Structured data/compute region with a pre-computed plan."""
        mappings: dict[str, tuple[bool, bool, bool]] = {}
        privates: set[str] = set()
        for clause in d.clauses:
            if model == "acc" and clause.name in ACC_CLAUSE_SEMANTICS:
                sem = ACC_CLAUSE_SEMANTICS[clause.name]
                for v in clause.variables():
                    mappings[v] = sem
            elif model == "omp" and clause.name == "map":
                map_type = (clause.modifier() or "tofrom").split(",")[-1].strip()
                enter_copy, exit_copy = OMP_MAP_SEMANTICS.get(map_type, (True, True))
                for v in clause.variables():
                    mappings[v] = (enter_copy, exit_copy, False)
            elif clause.name in ("private", "firstprivate", "lastprivate"):
                privates.update(clause.variables())
        mapping_items = tuple(
            (nm, self._ref(nm)[1], enter, exit_, reqp)
            for nm, (enter, exit_, reqp) in mappings.items()
        )
        candidates: tuple = ()
        written: tuple = ()
        if compute:
            reduction: set[str] = set()
            for clause in d.clauses:
                if clause.name == "reduction":
                    reduction.update(clause.variables())
            explicit = set(mappings) | privates
            cand_list = []
            seen: set[str] = set()
            written_list = []
            wseen: set[str] = set()
            if stmt.construct is not None:
                for e in ast.walk_expressions(stmt.construct):
                    if isinstance(e, ast.Identifier) and e.name not in seen:
                        seen.add(e.name)
                        if e.name not in explicit:
                            cand_list.append(self._ref(e.name))
                    if isinstance(e, ast.Assignment) and isinstance(e.target, ast.Identifier):
                        wname = e.target.name
                    elif (
                        isinstance(e, ast.UnaryOp)
                        and e.op in ("++", "--")
                        and isinstance(e.operand, ast.Identifier)
                    ):
                        wname = e.operand.name
                    else:
                        continue
                    if wname not in wseen:
                        wseen.add(wname)
                        if wname not in reduction and wname not in explicit:
                            written_list.append(self._ref(wname))
            candidates = tuple(cand_list)
            written = tuple(written_list)

        def make_action(rt, construct_c):
            interp = rt.interp
            gvars = rt.gvars

            def run(frame):
                device = interp.device
                entered = []
                overrides = []
                for name, slot, enter_copy, exit_copy, require_present in mapping_items:
                    value = frame[slot] if slot is not None else gvars.get(name)
                    if value is None or value is UNINIT:
                        raise segv_fault(f"mapping of uninitialized pointer '{name}'")
                    block = block_of(value)
                    if block is None:
                        continue  # scalar in a data clause: firstprivate-like
                    if require_present:
                        device_block = device.require_present(block, name)
                    else:
                        device_block = device.map_block(block, copyin=enter_copy)
                        entered.append((block, exit_copy))
                    if compute:
                        overrides.append((slot, name, value))
                        shadow = shadow_value(value, device_block)
                        if slot is not None:
                            frame[slot] = shadow
                        else:
                            gvars[name] = shadow
                snapshot = []
                if compute:
                    # implicit present-or-copy for referenced aggregates
                    for name, slot in candidates:
                        value = frame[slot] if slot is not None else gvars.get(name)
                        block = block_of(value)
                        if block is None or block.device:
                            continue
                        device_block = device.device_block(block)
                        if device_block is None:
                            device_block = device.map_block(block, copyin=True)
                            entered.append((block, True))  # implicit copy
                        overrides.append((slot, name, value))
                        shadow = shadow_value(value, device_block)
                        if slot is not None:
                            frame[slot] = shadow
                        else:
                            gvars[name] = shadow
                    # scalars written in the region default to firstprivate
                    for name, slot in written:
                        if slot is not None:
                            value = frame[slot]
                        elif name in gvars:
                            value = gvars[name]
                        else:
                            continue
                        if isinstance(value, (int, float)) and not isinstance(value, bool):
                            snapshot.append((slot, name, value))
                prev_compute = interp.in_compute_region
                if compute:
                    interp.in_compute_region = True
                try:
                    if construct_c is not None:
                        construct_c(frame)
                finally:
                    interp.in_compute_region = prev_compute
                    for slot, name, value in reversed(overrides):
                        if slot is not None:
                            frame[slot] = value
                        else:
                            gvars[name] = value
                    for block, copyout in reversed(entered):
                        device.unmap_block(block, copyout=copyout)
                    for slot, name, value in snapshot:
                        if slot is not None:
                            frame[slot] = value
                        else:
                            gvars[name] = value

            return run

        return make_action

    def _lower_host_parallel(self, stmt: ast.DirectiveStmt, d: Directive):
        priv_items = []
        for clause in d.clauses:
            if clause.name in ("private", "firstprivate"):
                for v in clause.variables():
                    priv_items.append((*self._ref(v), clause.name == "private"))
        lastprivate = frozenset(
            name
            for clause in d.clauses
            if clause.name == "lastprivate"
            for name in clause.variables()
        )
        flag_on = d.name.startswith(("parallel", "teams")) or " parallel" in d.name

        def make_action(rt, construct_c):
            interp = rt.interp
            gvars = rt.gvars

            def run(frame):
                saved: dict[str, tuple] = {}
                for name, slot, is_private in priv_items:
                    if slot is None and name not in gvars:
                        continue
                    value = frame[slot] if slot is not None else gvars[name]
                    saved[name] = (slot, value)
                    if is_private:
                        if isinstance(value, float):
                            if slot is not None:
                                frame[slot] = 0.0
                            else:
                                gvars[name] = 0.0
                        elif isinstance(value, int):
                            if slot is not None:
                                frame[slot] = 0
                            else:
                                gvars[name] = 0
                prev = interp.in_parallel_region
                if flag_on:
                    interp.in_parallel_region = True
                try:
                    if construct_c is not None:
                        construct_c(frame)
                finally:
                    interp.in_parallel_region = prev
                    for name, (slot, value) in saved.items():
                        if name not in lastprivate:
                            if slot is not None:
                                frame[slot] = value
                            else:
                                gvars[name] = value

            return run

        return make_action


# ---------------------------------------------------------------------------
# small shared builders
# ---------------------------------------------------------------------------


def _lower_fused_binary(op: str, left_plan, right_plan):
    """Both operands pure: batch the 3 ticks, read slots/consts inline."""
    is_cmp = op in _CMP_FNS
    fn = _CMP_FNS[op] if is_cmp else _ARITH_FNS[op]
    left_kind, left_val = left_plan
    right_kind, right_val = right_plan
    left_slot = left_val if left_kind == "slot" else None
    right_slot = right_val if right_kind == "slot" else None
    left_const = left_val if left_kind == "const" else None
    right_const = right_val if right_kind == "const" else None

    def make(rt):
        st, limit = rt.steps, rt.limit
        if is_cmp:
            def run(frame):
                st[0] = n = st[0] + 3
                if n > limit:
                    st[0] = limit + 1
                    raise StepLimitExceeded(limit)
                l = frame[left_slot] if left_slot is not None else left_const
                r = frame[right_slot] if right_slot is not None else right_const
                lc = l.__class__
                rc = r.__class__
                if (lc is int or lc is float) and (rc is int or rc is float):
                    return 1 if fn(l, r) else 0
                return combine_binary(op, l, r)
        else:
            def run(frame):
                st[0] = n = st[0] + 3
                if n > limit:
                    st[0] = limit + 1
                    raise StepLimitExceeded(limit)
                l = frame[left_slot] if left_slot is not None else left_const
                r = frame[right_slot] if right_slot is not None else right_const
                lc = l.__class__
                rc = r.__class__
                if (lc is int or lc is float) and (rc is int or rc is float):
                    return fn(l, r)
                return combine_binary(op, l, r)
        return run

    return make


def _passthrough_action(rt, construct_c):
    """Directive with no runtime effect: execute the construct, if any."""

    def run(frame):
        if construct_c is not None:
            construct_c(frame)

    return run


def _lower_const(value):
    def make(rt):
        st, limit = rt.steps, rt.limit

        def run(frame):
            st[0] = n = st[0] + 1
            if n > limit:
                raise StepLimitExceeded(limit)
            return value

        return run

    return make


def _lower_signal(signal_cls):
    def make(rt):
        st, limit = rt.steps, rt.limit

        def run(frame):
            st[0] = n = st[0] + 1
            if n > limit:
                raise StepLimitExceeded(limit)
            raise signal_cls()

        return run

    return make


def _lower_raiser(fault: RuntimeFault):
    message, returncode, stderr = str(fault), fault.returncode, fault.stderr

    def make(rt):
        st, limit = rt.steps, rt.limit

        def run(frame):
            st[0] = n = st[0] + 1
            if n > limit:
                raise StepLimitExceeded(limit)
            raise RuntimeFault(message, returncode, stderr)

        return run

    return make
