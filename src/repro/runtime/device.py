"""Simulated accelerator device and data environment.

Models the host/device split that OpenACC data clauses and OpenMP
``map`` clauses manage.  Mapped aggregates get a *device copy* of their
heap block; while a compute region executes, accesses to a mapped
variable are redirected to the device copy, and exit semantics
(``copyout``/``from``) write the device data back.

The fidelity that matters for the paper's experiments: a test whose
data movement is correct computes identical serial and device results
and exits 0; a test with broken movement (e.g. ``create`` where
``copyin`` is needed) sees stale device data and its self-check fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.values import CArray, HeapBlock, MemoryFault, Pointer


class DataMappingError(Exception):
    """Raised for present-table violations (acc present / use-after-unmap)."""


@dataclass
class _Mapping:
    host_block: HeapBlock
    device_block: HeapBlock
    refcount: int = 1
    copyout_on_delete: bool = False


@dataclass
class DeviceEnv:
    """The device's present table plus simple allocation statistics."""

    present: dict[int, _Mapping] = field(default_factory=dict)
    bytes_allocated: int = 0
    transfers_to_device: int = 0
    transfers_from_device: int = 0

    # ------------------------------------------------------------------

    def is_present(self, block: HeapBlock) -> bool:
        return id(block) in self.present

    def device_block(self, block: HeapBlock) -> HeapBlock | None:
        mapping = self.present.get(id(block))
        return mapping.device_block if mapping else None

    # ------------------------------------------------------------------

    def map_block(self, block: HeapBlock, copyin: bool, copyout_on_delete: bool = False) -> HeapBlock:
        """Enter-data semantics for one block (refcounted, per spec)."""
        key = id(block)
        mapping = self.present.get(key)
        if mapping is not None:
            mapping.refcount += 1
            return mapping.device_block
        device = HeapBlock(size=block.size, label="device", device=True)
        if copyin:
            device.cells = block.clone_cells()
            self.transfers_to_device += 1
        self.bytes_allocated += block.size
        self.present[key] = _Mapping(block, device, 1, copyout_on_delete)
        return device

    def unmap_block(self, block: HeapBlock, copyout: bool, finalize: bool = False) -> None:
        """Exit-data semantics for one block.

        Per OpenACC 2.7 §2.6.6 (and OpenMP map semantics) data is copied
        back to the host only when the structured reference count reaches
        zero — an inner region's copyout inside an enclosing data region
        does not transfer.
        """
        key = id(block)
        mapping = self.present.get(key)
        if mapping is None:
            # exit data on absent data is a no-op per OpenACC 2.7
            return
        mapping.refcount = 0 if finalize else mapping.refcount - 1
        if mapping.refcount <= 0:
            if copyout:
                mapping.host_block.cells = mapping.device_block.clone_cells()
                self.transfers_from_device += 1
            self.bytes_allocated -= mapping.host_block.size
            del self.present[key]

    def require_present(self, block: HeapBlock, name: str) -> HeapBlock:
        mapping = self.present.get(id(block))
        if mapping is None:
            raise DataMappingError(
                f"present clause failed: '{name}' is not present on the device"
            )
        return mapping.device_block

    def update_device(self, block: HeapBlock) -> None:
        mapping = self.present.get(id(block))
        if mapping is not None:
            mapping.device_block.cells = block.clone_cells()
            self.transfers_to_device += 1

    def update_host(self, block: HeapBlock) -> None:
        mapping = self.present.get(id(block))
        if mapping is not None:
            block.cells = mapping.device_block.clone_cells()
            self.transfers_from_device += 1


#: (enter-copies?, exit-copies?, require-present?) per OpenACC data clause.
ACC_CLAUSE_SEMANTICS = {
    "copy": (True, True, False),
    "copyin": (True, False, False),
    "copyout": (False, True, False),
    "create": (False, False, False),
    "no_create": (False, False, False),
    "present": (False, False, True),
    "deviceptr": (False, False, False),
    "attach": (False, False, False),
    "delete": (False, False, False),
    "detach": (False, False, False),
}

#: map-type -> (enter-copies?, exit-copies?) per OpenMP map clause.
OMP_MAP_SEMANTICS = {
    "to": (True, False),
    "from": (False, True),
    "tofrom": (True, True),
    "alloc": (False, False),
    "release": (False, False),
    "delete": (False, False),
}


def block_of(value) -> HeapBlock | None:
    """Extract the heap block behind an aggregate runtime value."""
    if isinstance(value, CArray):
        return value.block
    if isinstance(value, Pointer):
        return value.block
    return None


@dataclass
class RegionMapping:
    """Book-keeping for one structured data/compute region."""

    entered: list[tuple[HeapBlock, bool]] = field(default_factory=list)  # (block, copyout)
    redirected: list[tuple[str, object]] = field(default_factory=list)

    def record(self, block: HeapBlock, copyout: bool) -> None:
        self.entered.append((block, copyout))


class StructuredRegion:
    """Context manager applying data-clause semantics around a region.

    The interpreter supplies ``(name, value, enter_copy, exit_copy,
    require_present)`` tuples; on entry blocks are mapped, on exit they
    are unmapped with copy-back as required.
    """

    def __init__(self, device: DeviceEnv):
        self.device = device
        self._mapping = RegionMapping()

    def map_variable(self, name: str, value, enter_copy: bool, exit_copy: bool, require_present: bool) -> None:
        block = block_of(value)
        if block is None:
            return  # scalars: firstprivate semantics, nothing to map
        if require_present:
            self.device.require_present(block, name)
            return
        self.device.map_block(block, copyin=enter_copy)
        self._mapping.record(block, exit_copy)

    def __enter__(self) -> "StructuredRegion":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for block, copyout in reversed(self._mapping.entered):
            # On an abnormal exit data is still released, but copy-back
            # only happens on normal exit (matches nvc behaviour).
            self.device.unmap_block(block, copyout=copyout and exc_type is None)


__all__ = [
    "ACC_CLAUSE_SEMANTICS",
    "OMP_MAP_SEMANTICS",
    "DataMappingError",
    "DeviceEnv",
    "StructuredRegion",
    "block_of",
    "MemoryFault",
]
