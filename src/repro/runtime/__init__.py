"""Execution substrate: an AST interpreter with a simulated device.

Runs the "compiled" translation units the driver produces and yields
the observables a real test run yields: process return code, stdout,
stderr.  Parallel constructs execute with serial semantics against a
simulated device data environment (:mod:`repro.runtime.device`), which
preserves the corpus' self-checking behaviour (tests exit 0 iff the
serial and "device" results agree).
"""

from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.interpreter import (
    DEFAULT_BACKEND,
    EXECUTION_BACKENDS,
    Interpreter,
    RuntimeFault,
)

__all__ = [
    "DEFAULT_BACKEND",
    "EXECUTION_BACKENDS",
    "ExecutionResult",
    "Executor",
    "Interpreter",
    "RuntimeFault",
]
