"""The service wire contract.

Every request body the daemon accepts and every response it emits is
plain JSON; this module owns the (de)serialisation and validation so
the server, the client and the tests all speak from one definition.
Parsing failures raise :class:`ProtocolError`, which the server maps
to HTTP 400 — malformed input must never take the daemon down.

Verdict payloads are encoded from (and decode back to) the validator's
:class:`~repro.core.validator.JudgedFile`, so a service round-trip is
byte-comparable with a direct :class:`TestsuiteValidator` call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.validator import JudgedFile
from repro.runtime.interpreter import EXECUTION_BACKENDS

FLAVORS = ("acc", "omp")
JUDGE_KINDS = ("direct", "indirect")
#: derived from the runtime registry: a newly registered backend is
#: immediately requestable over the wire
BACKENDS = EXECUTION_BACKENDS

#: Per-request file cap: one request is one admission-queue slot, so a
#: giant request would starve the batch window for everyone else.
MAX_FILES_PER_REQUEST = 16


class ProtocolError(ValueError):
    """Client-side contract violation (server answers HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _choice(data: dict, field: str, choices: tuple[str, ...], default: str) -> str:
    value = data.get(field, default)
    _require(
        isinstance(value, str) and value in choices,
        f"{field!r} must be one of {list(choices)}, got {value!r}",
    )
    return value


@dataclass(frozen=True)
class ValidateOptions:
    """Pipeline knobs a request may set; everything else is server-side.

    Frozen and hashable on purpose: the options object itself is the
    batch-compatibility key — requests with equal options may share a
    pipeline run.
    """

    flavor: str = "acc"
    judge: str = "direct"
    early_exit: bool = True
    backend: str = "closure"

    def to_dict(self) -> dict:
        return {
            "flavor": self.flavor,
            "judge": self.judge,
            "early_exit": self.early_exit,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: object) -> "ValidateOptions":
        _require(isinstance(data, dict), f"'options' must be an object, got {type(data).__name__}")
        early_exit = data.get("early_exit", True)
        _require(isinstance(early_exit, bool), f"'early_exit' must be a boolean, got {early_exit!r}")
        return cls(
            flavor=_choice(data, "flavor", FLAVORS, "acc"),
            judge=_choice(data, "judge", JUDGE_KINDS, "direct"),
            early_exit=early_exit,
            backend=_choice(data, "backend", BACKENDS, "closure"),
        )


def _parse_files(data: dict) -> tuple[tuple[str, str], ...]:
    if "files" in data:
        raw = data["files"]
        if isinstance(raw, dict):
            pairs = list(raw.items())
        elif isinstance(raw, list):
            pairs = []
            for entry in raw:
                _require(
                    isinstance(entry, dict) and "name" in entry and "source" in entry,
                    "each 'files' entry must be an object with 'name' and 'source'",
                )
                pairs.append((entry["name"], entry["source"]))
        else:
            raise ProtocolError("'files' must be an object or a list")
    elif "name" in data or "source" in data:  # single-file shorthand
        _require(
            "name" in data and "source" in data,
            "single-file requests need both 'name' and 'source'",
        )
        pairs = [(data["name"], data["source"])]
    else:
        raise ProtocolError("request needs 'files' (or 'name' + 'source')")

    _require(len(pairs) > 0, "'files' must not be empty")
    _require(
        len(pairs) <= MAX_FILES_PER_REQUEST,
        f"at most {MAX_FILES_PER_REQUEST} files per request, got {len(pairs)}",
    )
    seen = set()
    for name, source in pairs:
        _require(isinstance(name, str) and name.strip(), f"file name must be a non-empty string, got {name!r}")
        _require(isinstance(source, str), f"source for {name!r} must be a string")
        _require(name not in seen, f"duplicate file name {name!r} in one request")
        seen.add(name)
    return tuple(pairs)


@dataclass(frozen=True)
class ValidateRequest:
    """``POST /v1/validate``: named sources plus pipeline options."""

    files: tuple[tuple[str, str], ...]
    options: ValidateOptions = ValidateOptions()

    def to_dict(self) -> dict:
        return {"files": dict(self.files), "options": self.options.to_dict()}

    @classmethod
    def from_dict(cls, data: object) -> "ValidateRequest":
        _require(isinstance(data, dict), f"request body must be a JSON object, got {type(data).__name__}")
        return cls(
            files=_parse_files(data),
            options=ValidateOptions.from_dict(data.get("options", {})),
        )


@dataclass(frozen=True)
class JudgeRequest:
    """``POST /v1/judge``: judge one file, optionally with a tool report.

    Without ``report`` the judge runs its own tools (compile + execute)
    before prompting, exactly like the agent pipeline's LLMJ stage.
    """

    name: str
    source: str
    flavor: str = "acc"
    judge: str = "direct"
    backend: str = "closure"
    report: dict | None = None

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "source": self.source,
            "flavor": self.flavor,
            "judge": self.judge,
            "backend": self.backend,
        }
        if self.report is not None:
            payload["report"] = dict(self.report)
        return payload

    @classmethod
    def from_dict(cls, data: object) -> "JudgeRequest":
        _require(isinstance(data, dict), f"request body must be a JSON object, got {type(data).__name__}")
        _require(
            isinstance(data.get("name"), str) and data["name"].strip(),
            "'name' must be a non-empty string",
        )
        _require(isinstance(data.get("source"), str), "'source' must be a string")
        report = data.get("report")
        if report is not None:
            _require(isinstance(report, dict), "'report' must be an object")
            _require(
                isinstance(report.get("compile_rc"), int),
                "report.compile_rc must be an integer",
            )
            run_rc = report.get("run_rc")
            _require(
                run_rc is None or isinstance(run_rc, int),
                f"report.run_rc must be an integer or null, got {run_rc!r}",
            )
            for text_field in (
                "compile_stderr", "compile_stdout",
                "run_stderr", "run_stdout",
            ):
                value = report.get(text_field)
                _require(
                    value is None or isinstance(value, str),
                    f"report.{text_field} must be a string or null",
                )
            codes = report.get("diagnostic_codes", [])
            _require(
                isinstance(codes, (list, tuple))
                and all(isinstance(code, str) for code in codes),
                "report.diagnostic_codes must be a list of strings",
            )
        return cls(
            name=data["name"],
            source=data["source"],
            flavor=_choice(data, "flavor", FLAVORS, "acc"),
            judge=_choice(data, "judge", JUDGE_KINDS, "direct"),
            backend=_choice(data, "backend", BACKENDS, "closure"),
            report=report,
        )


# ----------------------------------------------------------------------
# durable jobs (POST /v1/jobs)
# ----------------------------------------------------------------------

JOB_KINDS = ("campaign", "experiment")
JOB_STATES = ("queued", "running", "checkpointed", "done", "failed")

#: states a job never leaves
TERMINAL_JOB_STATES = ("done", "failed")


@dataclass(frozen=True)
class JobSpec:
    """``POST /v1/jobs``: a campaign or experiment to run durably.

    The wire shape is ``{"kind": "campaign"|"experiment", "spec":
    {...}}`` where ``spec`` is, respectively, a
    :class:`~repro.fuzz.campaign.CampaignConfig` JSON or a
    :class:`~repro.experiments.rundir.ExperimentRunSpec` JSON.  Both
    are validated *at submission*, so a bad spec is an HTTP 400 at
    POST time — never a job that sits queued and then fails.
    """

    kind: str
    spec: tuple  # canonicalised (key, value) pairs; dict via spec_dict()

    def spec_dict(self) -> dict:
        return dict(self.spec)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "spec": self.spec_dict()}

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        _require(isinstance(data, dict), f"request body must be a JSON object, got {type(data).__name__}")
        kind = data.get("kind")
        _require(
            isinstance(kind, str) and kind in JOB_KINDS,
            f"'kind' must be one of {list(JOB_KINDS)}, got {kind!r}",
        )
        spec = data.get("spec", {})
        _require(isinstance(spec, dict), f"'spec' must be an object, got {type(spec).__name__}")
        # deep-validate by constructing the real config objects (lazy
        # imports: the protocol module must stay importable without the
        # fuzz/experiment stacks)
        if kind == "campaign":
            from repro.fuzz.campaign import CampaignConfig

            try:
                CampaignConfig.from_json(spec)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid campaign spec: {exc}") from exc
        else:
            from repro.experiments.rundir import ExperimentRunSpec

            try:
                parsed = ExperimentRunSpec.from_json(spec)
                from repro.experiments.config import ExperimentConfig

                ExperimentConfig(
                    scale=parsed.scale,
                    seed=parsed.seed,
                    execution_backend=parsed.backend,
                    jobs=parsed.jobs,
                )
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid experiment spec: {exc}") from exc
            from repro.experiments.sharding import ARTIFACT_CELLS

            for name in parsed.artifacts:
                _require(
                    name in ARTIFACT_CELLS,
                    f"unknown artifact {name!r} (choose from {sorted(ARTIFACT_CELLS)})",
                )
        return cls(kind=kind, spec=tuple(sorted(spec.items(), key=lambda kv: kv[0])))


# ----------------------------------------------------------------------
# verdict encoding (JudgedFile <-> JSON)
# ----------------------------------------------------------------------


def encode_verdict(judged: JudgedFile) -> dict:
    return {
        "name": judged.name,
        "verdict": judged.verdict,
        "stage": judged.stage,
        "reason": judged.reason,
        "compile_rc": judged.compile_rc,
        "run_rc": judged.run_rc,
        "judge_response": judged.judge_response,
    }


def decode_verdict(data: dict) -> JudgedFile:
    try:
        return JudgedFile(
            name=data["name"],
            verdict=data["verdict"],
            stage=data["stage"],
            reason=data["reason"],
            compile_rc=data["compile_rc"],
            run_rc=data["run_rc"],
            judge_response=data.get("judge_response"),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed verdict payload: {exc}") from exc


def error_body(message: str, **extra: object) -> dict:
    return {"error": message, **extra}
