"""Pre-forked worker processes behind :class:`ValidationService`.

The daemon's micro-batcher solved admission; this module solves the
GIL.  One CPython process can run exactly one interpreter backend at a
time, so however well ``/v1/validate`` batches, validation throughput
was capped at a single core.  A :class:`WorkerPool` pre-forks N
processes at daemon start; the batcher's dispatcher threads hand each
formed micro-batch to an idle worker over a pipe, so up to N batches
validate truly in parallel while the parent's threads only block on
pipe I/O.

The protocol is deliberately tiny and picklable end to end:

* parent → worker: ``("batch", options, requests, trace_ctx)`` where
  ``options`` is the frozen
  :class:`~repro.service.protocol.ValidateOptions`, ``requests`` is
  one tuple of ``(name, source)`` pairs per admitted request, and
  ``trace_ctx`` is the dispatching span's
  :class:`~repro.obs.trace.TraceContext` (None with tracing off);
* worker → parent: ``("result", BatchResult)`` — the per-request
  response dicts, the batch's :class:`PipelineStats` (locks dropped in
  ``__getstate__``), the worker cache's hit/miss delta, the worker's
  finished spans (already parented under ``trace_ctx``), and the
  worker metrics registry's growth since its last report — or
  ``("error", traceback_text)`` for a worker-side exception with the
  worker still healthy.

Workers are rebuilt from a picklable :class:`WorkerConfig` by a
module-level, spawn-safe entrypoint (:func:`worker_main`), exactly the
shape :mod:`repro.experiments.sharding` established: each worker owns
its own judge model (pure function of seed — verdicts cannot drift),
its own validators, and its own :class:`PipelineCache` pointed at the
*shared* flock-safe ``--cache-dir``, so sibling workers exchange
compile/execute/judge results through the merge-on-save protocol from
PR 3 instead of clobbering each other.

Crash tolerance is first-class: a worker dying mid-batch (SIGKILL, OOM,
a bug) is detected by the pipe/liveness probe, the batch is retried
once on a freshly spawned replacement, and the event is counted in the
pool's snapshot (``/v1/stats`` → ``service.workers.restarts``).  Two
crashes on the same batch fail the batch's futures — the client sees an
error instead of a hang.  The ``worker:post-fork`` and
``worker:pre-result`` fault points make both paths testable with real
SIGKILLs (see :mod:`repro.testing.faultinject`).

``workers=0`` keeps the pool out of the loop entirely: the service runs
:func:`execute_batch` in-process, which is byte-for-byte the code the
workers run — the executable spec the scaling benchmark's identity gate
holds the pool to.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
import queue
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.experiments.sharding import (
    default_start_method,
    package_root_on_pythonpath,
)
from repro.obs import trace
from repro.obs.metrics import get_metrics
from repro.pipeline.stats import PipelineStats
from repro.service.protocol import encode_verdict
from repro.testing import faultinject
from repro.testing.faultinject import fault_point


class WorkerCrash(RuntimeError):
    """A worker process died while (or before) executing a batch."""


class WorkerBatchError(RuntimeError):
    """The batch raised inside a healthy worker; carries the traceback."""


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild the validation stack.

    Picklable on purpose (it crosses the spawn boundary).  ``threads``
    and ``judge_workers`` are the per-pipeline *thread* pools — the
    same knobs the in-process service uses — so a worker batch runs
    under exactly the configuration the parent would have used.
    """

    model_seed: int = 20240822
    threads: int = 2
    judge_workers: int = 1
    #: shared flock-safe cache directory, or None for a private
    #: in-memory cache (still correct, just cold per worker)
    cache_dir: str | None = None
    #: False disables caching inside workers entirely (--no-cache)
    use_cache: bool = True


@dataclass
class BatchResult:
    """What one batch execution hands back across the pipe.

    ``responses`` carries one response dict per admitted request, in
    request order, lacking only the ``queued_ms`` timing (which only
    the parent can know).  ``stats`` is the batch's aggregated
    :class:`PipelineStats`; ``cache_delta`` the worker cache's
    per-namespace hit/miss growth since its last report (None from the
    in-process path, whose validators update the parent cache live).
    ``spans`` are the worker tracer's finished span dicts (None with
    tracing off or in-process, where spans land in the ambient tracer
    directly); ``metrics_delta`` is the worker registry's growth since
    its last report, ready for ``MetricsRegistry.apply``.
    """

    responses: list
    stats: PipelineStats
    cache_delta: dict | None = None
    spans: list | None = None
    metrics_delta: dict | None = None


# ----------------------------------------------------------------------
# the batch execution core (shared by the in-process path and workers)
# ----------------------------------------------------------------------


def execute_batch(
    validator_for: Callable,
    options,
    requests: Sequence[Sequence[tuple[str, str]]],
) -> BatchResult:
    """One micro-batch -> one (or few) shared pipeline runs.

    All requests share ``options`` (the batcher groups by it), so their
    files fan through one validator — one StageScheduler run, shared
    worker pools, shared cache.  The only reason to split a batch is a
    file-name collision between requests: names must be unique within a
    pipeline run, so colliding requests go to a follow-up chunk
    (correctness over batching efficiency).

    This is the executable spec for the serving path: the in-process
    service (``workers=0``) and every pool worker run this exact
    function, which is what makes the ``workers=N`` vs ``workers=0``
    byte-identity gate meaningful.
    """
    validator = validator_for(options)
    batch_size = len(requests)
    responses: list[dict | None] = [None] * batch_size
    stats = PipelineStats()

    chunk: list[int] = []
    names: set[str] = set()

    def flush() -> None:
        if not chunk:
            return
        sources: dict[str, str] = {}
        for index in chunk:
            sources.update(dict(requests[index]))
        t0 = time.perf_counter()
        report = validator.validate_sources(sources)
        wall_ms = round((time.perf_counter() - t0) * 1000, 3)
        # chunks run one after another: walls sum in the batch aggregate
        stats.merge(report.stats, concurrent=False)
        stage_snapshot = report.stats.snapshot()["stages"]
        for index in chunk:
            verdicts = [
                encode_verdict(report.verdict_for(name))
                for name, _ in requests[index]
            ]
            valid = sum(1 for v in verdicts if v["verdict"] == "valid")
            responses[index] = {
                "verdicts": verdicts,
                "summary": {
                    "total": len(verdicts),
                    "valid": valid,
                    "invalid": len(verdicts) - valid,
                },
                "timings": {"wall_ms": wall_ms, "stages": stage_snapshot},
                "batch": {"size": batch_size, "chunk": len(chunk)},
            }
        chunk.clear()
        names.clear()

    for i, request in enumerate(requests):
        request_names = {name for name, _ in request}
        if names & request_names:
            flush()
        chunk.append(i)
        names.update(request_names)
    flush()
    return BatchResult(responses=responses, stats=stats)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


def worker_main(conn, config: WorkerConfig) -> None:
    """The worker process body (module-level: spawn-safe).

    Rebuilds model/cache/validators from the picklable ``config``,
    answers ``("batch", ...)`` messages until the parent sends
    ``("stop",)`` or the pipe closes, then flushes its cache into the
    shared store (flock-guarded merge-on-save) and exits.
    """
    # Re-arm fault points from the inherited environment: under fork the
    # parent's already-parsed (possibly test-cleared) state would
    # otherwise shadow REPRO_FAULT_POINTS, making worker faults
    # start-method-dependent.
    faultinject.reset()
    fault_point("worker:post-fork")

    from repro.core.validator import TestsuiteValidator
    from repro.llm.model import DeepSeekCoderSim

    model = DeepSeekCoderSim(seed=config.model_seed)
    cache = None
    if config.use_cache:
        from repro.cache.bundle import PipelineCache

        cache = PipelineCache(cache_dir=config.cache_dir)
        cache.load()

    validators: dict = {}
    reported = {"hits": {}, "misses": {}}

    def validator_for(options):
        validator = validators.get(options)
        if validator is None:
            validator = TestsuiteValidator(
                flavor=options.flavor,
                judge_kind=options.judge,
                early_exit=options.early_exit,
                workers=config.threads,
                judge_workers=config.judge_workers,
                model=model,
                cache=cache,
                execution_backend=options.backend,
            )
            validators[options] = validator
        return validator

    def cache_delta() -> dict | None:
        if cache is None:
            return None
        delta = {}
        for namespace in cache.namespaces:
            hits = namespace.hits - reported["hits"].get(namespace.name, 0)
            misses = namespace.misses - reported["misses"].get(namespace.name, 0)
            reported["hits"][namespace.name] = namespace.hits
            reported["misses"][namespace.name] = namespace.misses
            if hits or misses:
                delta[namespace.name] = {"hits": hits, "misses": misses}
        return delta or None

    # metrics ship like the cache delta: growth since the last report.
    # The baseline starts at the *current* state because under fork the
    # registry inherits the parent's counts, which must not re-ship.
    metrics_baseline = [get_metrics().export_state()]

    def metrics_delta() -> dict | None:
        delta, metrics_baseline[0] = get_metrics().diff(metrics_baseline[0])
        return delta or None

    parent = multiprocessing.parent_process()
    try:
        while True:
            try:
                # wait with a liveness probe instead of a bare recv():
                # under fork a worker inherits the parent's end of its
                # own pipe (it was live in the spawning frame), so a
                # SIGKILLed parent never produces EOF — orphans must
                # notice the death themselves and wind down
                while not conn.poll(1.0):
                    if parent is not None and not parent.is_alive():
                        return
                message = conn.recv()
            except (EOFError, OSError):
                break  # pipe closed: wind down
            if message[0] == "stop":
                break
            _, options, requests, *rest = message
            trace_ctx = rest[0] if rest else None
            try:
                if trace_ctx is not None:
                    # per-batch tracer: the root span opens from the
                    # dispatching span's shipped context, so everything
                    # the worker records is already parented correctly
                    # when the parent absorbs it
                    tracer = trace.Tracer()
                    trace.install(tracer)
                    try:
                        with tracer.span(
                            "worker.execute_batch",
                            parent=trace_ctx,
                            worker_pid=os.getpid(),
                            requests=len(requests),
                        ):
                            result = execute_batch(
                                validator_for, options, requests
                            )
                    finally:
                        trace.uninstall()
                    result.spans = [s.to_json() for s in tracer.drain()]
                else:
                    result = execute_batch(validator_for, options, requests)
                result.cache_delta = cache_delta()
                result.metrics_delta = metrics_delta()
                fault_point("worker:pre-result")
                conn.send(("result", result))
            except Exception:  # noqa: BLE001 - forwarded to the parent
                try:
                    conn.send(("error", traceback.format_exc()))
                except OSError:
                    break
    finally:
        if cache is not None:
            try:
                cache.save()
            except Exception:  # noqa: BLE001 - exiting anyway
                pass
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


@dataclass
class _Worker:
    index: int
    generation: int
    process: multiprocessing.process.BaseProcess
    conn: object = field(repr=False, default=None)

    @property
    def name(self) -> str:
        return f"validate-worker-{self.index}.{self.generation}"


class WorkerPool:
    """N pre-forked workers, one idle-queue, crash-retry dispatch.

    Thread-safe: the batcher's dispatcher threads call
    :meth:`run_batch` concurrently; each call checks out an idle worker
    (blocking until one frees up — the service sizes the dispatcher
    count to the pool, so this only briefly blocks during a respawn),
    round-trips the batch, and returns the worker.

    A :class:`WorkerCrash` during the round-trip respawns the worker
    and retries the batch exactly once; a second crash propagates (the
    batcher fails that batch's futures).  ``("error", ...)`` replies —
    a worker-side exception with the worker alive — are *not* retried:
    the batch is deterministic, so a clean failure would simply repeat.
    """

    def __init__(
        self,
        size: int,
        config: WorkerConfig,
        start_method: str | None = None,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.config = config
        self.start_method = start_method or default_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self._lock = threading.Lock()
        self._counters = {
            "restarts": 0,
            "retries": 0,
            "batches_dispatched": 0,
            "batch_errors": 0,
        }
        self._closed = False
        self._workers: list[_Worker] = []
        self._idle: queue.Queue[_Worker] = queue.Queue()
        with package_root_on_pythonpath():
            for index in range(size):
                worker = self._spawn(index, generation=0)
                self._workers.append(worker)
                self._idle.put(worker)

    # -- lifecycle ------------------------------------------------------

    def _spawn(self, index: int, generation: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.config),
            name=f"validate-worker-{index}.{generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(
            index=index, generation=generation, process=process, conn=parent_conn
        )

    def _replace(self, worker: _Worker) -> _Worker:
        """Respawn a dead (or dying) worker in its slot; counts the restart."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        with package_root_on_pythonpath():
            replacement = self._spawn(worker.index, worker.generation + 1)
        with self._lock:
            self._counters["restarts"] += 1
            for i, existing in enumerate(self._workers):
                if existing is worker:
                    self._workers[i] = replacement
                    break
        get_metrics().counter("service_worker_restarts_total").inc()
        return replacement

    def close(self, timeout: float | None = 10.0) -> bool:
        """Stop every worker: polite ``("stop",)`` first, SIGTERM after.

        The service calls this *after* the batcher has drained, so no
        batch is in flight and the polite path is the normal one — each
        worker flushes its cache to the shared dir and exits.  A worker
        that ignores the stop (wedged in a batch) is terminated when
        ``timeout`` runs out.  Returns True once every worker stopped.
        """
        with self._lock:
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass  # already dead: join below
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in workers:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            worker.process.join(timeout=remaining)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        return all(not worker.process.is_alive() for worker in workers)

    # -- dispatch -------------------------------------------------------

    def run_batch(self, options, requests) -> BatchResult:
        """Round-trip one batch on an idle worker, retrying one crash."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._counters["batches_dispatched"] += 1
        get_metrics().counter("service_worker_batches_total").inc()
        worker = self._idle.get()
        try:
            if not worker.process.is_alive():
                # died idle (crash-looped boot, external kill): no batch
                # was lost, but the slot needs a live process
                worker = self._replace(worker)
            try:
                return self._attempt(worker, options, requests, attempt=1)
            except WorkerCrash:
                with self._lock:
                    self._counters["retries"] += 1
                get_metrics().counter("service_worker_retries_total").inc()
                worker = self._replace(worker)
                try:
                    return self._attempt(worker, options, requests, attempt=2)
                except WorkerCrash:
                    # second death on the same batch: fail the batch,
                    # but heal the slot so the pool stays full-strength
                    worker = self._replace(worker)
                    raise
        finally:
            self._idle.put(worker)

    def _attempt(self, worker: _Worker, options, requests, attempt: int) -> BatchResult:
        """One dispatch attempt, wrapped in its own span so a crashed
        first attempt and its retry are both visible in the trace."""
        with trace.span(
            "pool.dispatch", worker=worker.name, attempt=attempt
        ) as span:
            try:
                return self._roundtrip(worker, options, requests)
            except WorkerCrash:
                span.attrs["crashed"] = True
                raise

    def _roundtrip(self, worker: _Worker, options, requests) -> BatchResult:
        try:
            worker.conn.send(
                ("batch", options, tuple(requests), trace.current())
            )
            # liveness-aware wait: EOF is unreliable under fork (later
            # siblings inherit earlier pipes), so poll the process too
            while not worker.conn.poll(0.05):
                if not worker.process.is_alive() and not worker.conn.poll(0):
                    raise WorkerCrash(
                        f"{worker.name} died mid-batch "
                        f"(exitcode {worker.process.exitcode})"
                    )
            kind, payload = worker.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerCrash(f"{worker.name} pipe failed: {exc}") from exc
        if kind == "result":
            return payload
        with self._lock:
            self._counters["batch_errors"] += 1
        raise WorkerBatchError(f"batch failed in {worker.name}:\n{payload}")

    # -- introspection --------------------------------------------------

    @property
    def alive(self) -> int:
        with self._lock:
            workers = list(self._workers)
        return sum(1 for worker in workers if worker.process.is_alive())

    def snapshot(self) -> dict:
        """The ``/v1/stats`` → ``service.workers`` payload."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "configured": self.size,
            "alive": self.alive,
            "start_method": self.start_method,
            **counters,
        }
