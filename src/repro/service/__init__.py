"""Validation-as-a-service: the stdlib HTTP serving layer.

The package turns the one-shot pipeline into a long-running daemon:

* :mod:`repro.service.protocol` — the JSON wire contract;
* :mod:`repro.service.batching` — micro-batching admission with
  bounded-queue backpressure and graceful drain;
* :mod:`repro.service.server` — :class:`ValidationService` plus the
  ``ThreadingHTTPServer`` front-end (``/v1/validate``, ``/v1/judge``,
  ``/healthz``, ``/v1/stats``);
* :mod:`repro.service.client` — a stdlib client with 429-aware retry.
"""

from repro.service.batching import BatchQueueFull, BatcherClosed, MicroBatcher
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.protocol import (
    JudgeRequest,
    ProtocolError,
    ValidateOptions,
    ValidateRequest,
)
from repro.service.server import ValidationServer, ValidationService, make_server

__all__ = [
    "BatchQueueFull",
    "BatcherClosed",
    "JudgeRequest",
    "MicroBatcher",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "ValidateOptions",
    "ValidateRequest",
    "ValidationServer",
    "ValidationService",
    "make_server",
]
