"""A stdlib client for the validation daemon.

:class:`ServiceClient` wraps ``http.client`` with the service's JSON
contract, one connection per call (``Connection: close``), and a
backpressure-aware retry loop: HTTP 429 sleeps for the server's
``Retry-After`` hint and retries up to ``max_retries`` times before
surfacing :class:`ServiceUnavailable` — so a load generator naturally
paces itself to the daemon's admission queue.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.service.protocol import JudgeRequest, ValidateOptions, ValidateRequest


class ServiceError(RuntimeError):
    """Non-2xx response from the daemon."""

    def __init__(self, status: int, message: str, body: dict | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body or {}


class ServiceUnavailable(ServiceError):
    """429 after exhausting retries, or 503 while draining."""


class ServiceClient:
    """Talk to one running daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8347,
        timeout: float = 60.0,
        max_retries: int = 3,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries

    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def fuzz_stats(self) -> dict:
        return self._request("GET", "/v1/fuzz/stats")

    def validate(
        self,
        sources: dict[str, str],
        flavor: str = "acc",
        judge: str = "direct",
        early_exit: bool = True,
        backend: str = "closure",
    ) -> dict:
        """Validate named sources; returns the verdict payload."""
        request = ValidateRequest(
            files=tuple(sources.items()),
            options=ValidateOptions(
                flavor=flavor, judge=judge, early_exit=early_exit, backend=backend
            ),
        )
        return self._request("POST", "/v1/validate", request.to_dict())

    def judge(
        self,
        name: str,
        source: str,
        flavor: str = "acc",
        judge: str = "direct",
        backend: str = "closure",
        report: dict | None = None,
    ) -> dict:
        request = JudgeRequest(
            name=name, source=source, flavor=flavor, judge=judge,
            backend=backend, report=report,
        )
        return self._request("POST", "/v1/judge", request.to_dict())

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        attempts = 0
        while True:
            status, headers, payload = self._roundtrip(method, path, body)
            if status == 429 and attempts < self.max_retries:
                attempts += 1
                time.sleep(_retry_after(headers, payload))
                continue
            if 200 <= status < 300:
                return payload
            message = payload.get("error", "") if isinstance(payload, dict) else ""
            if status in (429, 503):
                raise ServiceUnavailable(status, message or "service unavailable", payload)
            raise ServiceError(status, message or "request failed", payload)

    def _roundtrip(
        self, method: str, path: str, body: dict | None
    ) -> tuple[int, dict, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Connection": "close"}
            if encoded is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            return response.status, dict(response.headers), payload
        finally:
            connection.close()


def _retry_after(headers: dict, payload: dict) -> float:
    """The server's backoff hint (header first, body fallback)."""
    for source in (headers.get("Retry-After"), payload.get("retry_after")):
        try:
            if source is not None:
                return max(0.05, float(source))
        except (TypeError, ValueError):
            continue
    return 0.5
