"""A stdlib client for the validation daemon.

:class:`ServiceClient` wraps ``http.client`` with the service's JSON
contract, one connection per call (``Connection: close``), and a
retry loop that knows the daemon's three transient states:

* **429** (admission queue full) sleeps for the server's
  ``Retry-After`` hint — the daemon knows its own backlog better than
  any client-side guess;
* **503** (draining) and **connection errors** (daemon restarting, or
  not up yet) back off exponentially with jitter — ``backoff_base``
  doubled per attempt, capped at 2 s, multiplied by a random factor in
  [0.5, 1.0) so a fleet of pollers doesn't reconnect in lockstep.
  The jitter comes from the client's *own* ``random.Random`` instance
  (seedable via ``backoff_seed``), never the process-global generator:
  retry timing stays deterministic in tests (including forked
  test processes) and a client can't perturb application-level seeding;
* everything stops at ``max_retries`` attempts *or* ``max_elapsed``
  seconds, whichever comes first — then the last connection error
  re-raises as-is (callers already handle ``OSError``) and 429/503
  surface as :class:`ServiceUnavailable`.

This is what lets a job poller ride out a SIGTERM → restart cycle of
the daemon instead of failing its first poll into the gap.
"""

from __future__ import annotations

import http.client
import json
import random
import time

from repro.service.protocol import JudgeRequest, ValidateOptions, ValidateRequest


class ServiceError(RuntimeError):
    """Non-2xx response from the daemon."""

    def __init__(self, status: int, message: str, body: dict | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body or {}


class ServiceUnavailable(ServiceError):
    """429 after exhausting retries, or 503 while draining."""


class ServiceClient:
    """Talk to one running daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8347,
        timeout: float = 60.0,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        max_elapsed: float = 15.0,
        backoff_seed: int | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.max_elapsed = max_elapsed
        # a private RNG: `random.Random(None)` still self-seeds from the
        # OS, so production jitter stays independent across processes,
        # while an explicit seed makes the backoff sequence replayable
        self._backoff_rng = random.Random(backoff_seed)

    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def fuzz_stats(self) -> dict:
        return self._request("GET", "/v1/fuzz/stats")

    def validate(
        self,
        sources: dict[str, str],
        flavor: str = "acc",
        judge: str = "direct",
        early_exit: bool = True,
        backend: str = "closure",
    ) -> dict:
        """Validate named sources; returns the verdict payload."""
        request = ValidateRequest(
            files=tuple(sources.items()),
            options=ValidateOptions(
                flavor=flavor, judge=judge, early_exit=early_exit, backend=backend
            ),
        )
        return self._request("POST", "/v1/validate", request.to_dict())

    def judge(
        self,
        name: str,
        source: str,
        flavor: str = "acc",
        judge: str = "direct",
        backend: str = "closure",
        report: dict | None = None,
    ) -> dict:
        request = JudgeRequest(
            name=name, source=source, flavor=flavor, judge=judge,
            backend=backend, report=report,
        )
        return self._request("POST", "/v1/judge", request.to_dict())

    # -- durable jobs --------------------------------------------------

    def submit_job(self, kind: str, spec: dict) -> dict:
        """Submit a campaign/experiment job; returns its journal record."""
        return self._request("POST", "/v1/jobs", {"kind": kind, "spec": spec})

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job_artifacts(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/artifacts")

    def wait_for_job(self, job_id: str, timeout: float = 600.0,
                     poll: float = 0.25) -> dict:
        """Poll until the job reaches a terminal state (done/failed).

        ``checkpointed`` is *not* terminal — it means the daemon
        stopped (or is restarting) with the job resumable, so the wait
        keeps polling; the connection-error retry in :meth:`_request`
        rides out the restart gap itself.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.get('state')!r} after {timeout}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        attempts = 0
        started = time.monotonic()

        def may_retry() -> bool:
            return (
                attempts < self.max_retries
                and time.monotonic() - started < self.max_elapsed
            )

        while True:
            try:
                status, headers, payload = self._roundtrip(method, path, body)
            except (OSError, http.client.HTTPException):
                # includes ConnectionError and socket timeouts: the
                # daemon is down, restarting, or mid-accept — ride it
                # out, then re-raise the last failure unchanged
                if not may_retry():
                    raise
                attempts += 1
                time.sleep(self._backoff(attempts))
                continue
            if status == 429 and may_retry():
                attempts += 1
                time.sleep(_retry_after(headers, payload))
                continue
            if status == 503 and may_retry():
                attempts += 1
                time.sleep(self._backoff(attempts))
                continue
            if 200 <= status < 300:
                return payload
            message = payload.get("error", "") if isinstance(payload, dict) else ""
            if status in (429, 503):
                raise ServiceUnavailable(status, message or "service unavailable", payload)
            raise ServiceError(status, message or "request failed", payload)

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with jitter for attempt N (1-based)."""
        ceiling = min(2.0, self.backoff_base * (2 ** (attempt - 1)))
        return ceiling * (0.5 + self._backoff_rng.random() / 2)

    def _roundtrip(
        self, method: str, path: str, body: dict | None
    ) -> tuple[int, dict, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Connection": "close"}
            if encoded is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            return response.status, dict(response.headers), payload
        finally:
            connection.close()


def _retry_after(headers: dict, payload: dict) -> float:
    """The server's backoff hint (header first, body fallback)."""
    for source in (headers.get("Retry-After"), payload.get("retry_after")):
        try:
            if source is not None:
                return max(0.05, float(source))
        except (TypeError, ValueError):
            continue
    return 0.5
