"""Durable jobs: an on-disk journal plus a background runner.

The daemon's socket endpoints are built for second-scale work; a fuzz
campaign or a full artifact sweep runs for minutes.  Jobs close that
gap with a submit/poll contract:

* ``POST /v1/jobs`` validates the spec and appends a :class:`JobRecord`
  to the journal — one ``<jobs_dir>/<id>/job.json`` per job, every
  update written atomically.
* a single worker thread executes jobs in submission order, writing
  the underlying campaign/experiment durability checkpoints into
  ``<jobs_dir>/<id>/work``.
* ``GET /v1/jobs/<id>`` reads the state machine:
  ``queued → running → (checkpointed ↔ running) → done | failed``.

Because every observable fact lives in the journal and the work dir,
the daemon process is disposable: on restart the manager re-reads the
journal, flips interrupted ``running`` jobs to ``checkpointed`` (work
exists to resume) or back to ``queued`` (nothing landed yet), and
re-enqueues both.  SIGTERM runs "checkpoint then drain" — the manager
asks the active campaign/experiment to stop at its next round/cell
boundary (the checkpoint for everything before that boundary is
already on disk), journals the job as ``checkpointed``, and only then
lets the HTTP drain proceed.  ``kill -9`` skips the courtesy and still
loses nothing beyond the boundary — which is exactly what the
fault-injection tests prove.

Serial on purpose: campaigns already parallelise internally (stage
pools), experiments shard across processes; a second concurrent job
would fight the first for the same cores and make completion times
unpredictable.  Queue depth is visible in ``/v1/stats``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.atomicio import atomic_write_json
from repro.obs.metrics import get_metrics
from repro.service.protocol import JOB_STATES, TERMINAL_JOB_STATES

WORK_DIRNAME = "work"
JOURNAL_NAME = "job.json"


@dataclass
class JobRecord:
    """One job's journaled state (the ``GET /v1/jobs/<id>`` body)."""

    id: str
    kind: str  # 'campaign' | 'experiment'
    spec: dict
    state: str = "queued"
    created_at: float = 0.0
    updated_at: float = 0.0
    error: str | None = None
    #: summary of the finished work (digest etc.); None until done
    result: dict | None = None
    #: state-machine trail, e.g. ["queued", "running", "checkpointed"]
    history: list[str] = field(default_factory=lambda: ["queued"])
    #: the submitting request's X-Request-Id, journaled so an operator
    #: can correlate a job with its HTTP submission and span log
    request_id: str | None = None

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "spec": dict(self.spec),
            "state": self.state,
            "created_at": round(self.created_at, 3),
            "updated_at": round(self.updated_at, 3),
            "error": self.error,
            "result": self.result,
            "history": list(self.history),
            "request_id": self.request_id,
        }

    @classmethod
    def from_json(cls, data: dict) -> "JobRecord":
        state = data["state"]
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        return cls(
            id=data["id"],
            kind=data["kind"],
            spec=dict(data["spec"]),
            state=state,
            created_at=float(data.get("created_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
            error=data.get("error"),
            result=data.get("result"),
            history=list(data.get("history", [state])),
            request_id=data.get("request_id"),
        )


class JobManager:
    """The journal, the queue, and the worker thread behind /v1/jobs."""

    def __init__(self, jobs_dir: str | Path, cache=None):
        self.jobs_dir = Path(jobs_dir)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache = cache
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._queue: queue.Queue[str] = queue.Queue()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._active: str | None = None
        self._recover()

    # -- paths ----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def work_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / WORK_DIRNAME

    def _journal_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / JOURNAL_NAME

    # -- journal --------------------------------------------------------

    def _journal(self, record: JobRecord) -> None:
        record.updated_at = time.time()
        atomic_write_json(
            self._journal_path(record.id),
            record.to_json(),
            indent=2,
            sort_keys=True,
            fault_tag="job-journal",
        )

    def _transition(self, record: JobRecord, state: str) -> None:
        with self._lock:
            record.state = state
            record.history.append(state)
            self._journal(record)
        get_metrics().counter(
            "service_job_transitions_total", state=state
        ).inc()

    def _recover(self) -> None:
        """Rebuild queue + records from the journal (daemon restart).

        A ``running`` record means the previous daemon died mid-job:
        it becomes ``checkpointed`` when its work dir holds resumable
        state, else goes back to ``queued``.  Both re-enter the queue
        (in id order, preserving submission order).  Journals that
        cannot be parsed are skipped — atomic writes mean that takes
        external damage, and one damaged job must not take down the
        daemon's whole queue.
        """
        for path in sorted(self.jobs_dir.glob("job-*/" + JOURNAL_NAME)):
            try:
                record = JobRecord.from_json(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
                continue
            if record.state == "running":
                work = self.work_dir(record.id)
                resumable = any(
                    (work / name).exists()
                    for name in ("checkpoint.json", "progress.json")
                )
                record.state = "checkpointed" if resumable else "queued"
                record.history.append(record.state)
                self._journal(record)
            self._records[record.id] = record
            if record.state not in TERMINAL_JOB_STATES:
                self._queue.put(record.id)

    # -- public API -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run_loop, name="job-runner", daemon=True
        )
        self._thread.start()

    def submit(self, kind: str, spec: dict, request_id: str | None = None) -> JobRecord:
        now = time.time()
        with self._lock:
            indices = [
                int(job_id.split("-", 1)[1])
                for job_id in self._records
                if job_id.split("-", 1)[1].isdigit()
            ]
            record = JobRecord(
                id=f"job-{max(indices, default=0) + 1:04d}",
                kind=kind,
                spec=dict(spec),
                created_at=now,
                updated_at=now,
                request_id=request_id,
            )
            self._records[record.id] = record
            self._journal(record)
        self._queue.put(record.id)
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._records[job_id]  # KeyError -> HTTP 404

    def list(self) -> list[JobRecord]:
        with self._lock:
            return [self._records[job_id] for job_id in sorted(self._records)]

    def artifacts(self, job_id: str) -> dict:
        """What the job has produced so far (always readable — even a
        running or checkpointed job's partial work dir is listable)."""
        record = self.get(job_id)
        work = self.work_dir(job_id)
        files = []
        if work.is_dir():
            for path in sorted(work.rglob("*")):
                if path.is_file() and not path.name.endswith(".tmp"):
                    files.append(
                        {
                            "path": str(path.relative_to(work)),
                            "bytes": path.stat().st_size,
                        }
                    )
        return {
            "id": record.id,
            "state": record.state,
            "result": record.result,
            "dir": str(work),
            "files": files,
        }

    def snapshot(self) -> dict:
        with self._lock:
            counts = Counter(record.state for record in self._records.values())
            return {
                "dir": str(self.jobs_dir),
                "total": len(self._records),
                "by_state": {state: counts.get(state, 0) for state in JOB_STATES},
                "active": self._active,
            }

    def checkpoint_and_stop(self, timeout: float | None = 60.0) -> bool:
        """The SIGTERM path: stop at the next checkpoint boundary.

        Sets the stop event the active campaign/experiment polls at its
        round/cell boundaries, then joins the worker thread — by the
        time this returns True, the active job (if any) is journaled as
        ``checkpointed`` and its work dir holds everything needed to
        resume.  Queued jobs simply stay ``queued`` in the journal.
        """
        self._stop.set()
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    # -- worker thread --------------------------------------------------

    def _run_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if self._stop.is_set():
                # leave the record as journaled (queued/checkpointed);
                # the restarted daemon's _recover() re-enqueues it
                return
            self._execute(job_id)

    def _execute(self, job_id: str) -> None:
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.state in TERMINAL_JOB_STATES:
                return
            self._active = job_id
        self._transition(record, "running")
        try:
            if record.kind == "campaign":
                self._run_campaign(record)
            else:
                self._run_experiment(record)
        except InterruptedError:
            # stopped at a boundary: state through it is checkpointed
            self._transition(record, "checkpointed")
        except Exception as exc:  # noqa: BLE001 - journaled, not raised
            record.error = f"{type(exc).__name__}: {exc}"
            self._transition(record, "failed")
        finally:
            with self._lock:
                self._active = None

    def _run_campaign(self, record: JobRecord) -> None:
        from repro.fuzz.campaign import Campaign, CampaignConfig
        from repro.fuzz.checkpoint import CheckpointError, load_checkpoint
        from repro.fuzz.manifest import save_campaign

        config = CampaignConfig.from_json(record.spec)
        work = self.work_dir(record.id)
        work.mkdir(parents=True, exist_ok=True)
        try:
            resume = load_checkpoint(work)
        except CheckpointError:
            resume = None  # externally damaged: recompute from scratch
        campaign = Campaign(config, cache=self.cache)
        result = campaign.run(
            checkpoint_dir=str(work), resume=resume, stop=self._stop
        )
        if result.interrupted:
            raise InterruptedError(f"campaign stopped at round {result.stats.rounds}")
        save_campaign(result, work)
        record.result = {
            "digest": result.digest(),
            "rounds": result.stats.rounds,
            "corpus": len(result.corpus),
            "findings": len(result.findings),
            "triage_flags": len(result.triage_flags),
        }
        self._transition(record, "done")

    def _run_experiment(self, record: JobRecord) -> None:
        from repro.experiments.rundir import ExperimentRunSpec, run_artifacts

        spec = ExperimentRunSpec.from_json(record.spec)
        outcome = run_artifacts(
            spec, self.work_dir(record.id), cache=self.cache, stop=self._stop
        )
        record.result = {
            "digest": outcome.digest,
            "artifacts": list(outcome.texts),
            "reused_cells": outcome.reused_cells,
            "computed_cells": outcome.computed_cells,
        }
        self._transition(record, "done")
