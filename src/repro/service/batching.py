"""Micro-batching admission: bounded queue, collector thread, futures.

The serving layer's core economics live here.  A request costs one
queue slot; a collector thread pops slots and groups *compatible*
requests (equal grouping keys — the service passes the frozen
:class:`~repro.service.protocol.ValidateOptions` itself) into batches
bounded by
two knobs:

* ``max_batch_size`` — a full batch dispatches immediately;
* ``max_latency`` — an open batch never waits longer than this for
  company, so a lone request still answers promptly.

One batch becomes one pipeline run, so concurrent clients share the
StageScheduler's worker pools and the PipelineCache instead of paying
per-request pipeline setup.  When the queue is full, :meth:`submit`
raises :class:`BatchQueueFull` — the server's HTTP 429 — which is the
backpressure contract: the daemon sheds load at admission instead of
accumulating unbounded work.

:meth:`close` is the graceful-drain half: no new admissions, every
queued request still gets its answer (or, with ``drain=False``, a
:class:`BatcherClosed` error), then the collector parks.

The batcher is deliberately generic — payloads are opaque, grouping is
by an opaque key, and the ``runner`` callback maps one batch of
payloads to one result per payload — so tests can drive the cutoff
logic with toy runners and no HTTP anywhere.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.obs.metrics import get_metrics


class BatchQueueFull(RuntimeError):
    """Admission queue at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, capacity: int, retry_after: float):
        super().__init__(f"admission queue full ({depth}/{capacity})")
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


class BatcherClosed(RuntimeError):
    """The batcher is draining or closed; no new work is admitted."""


@dataclass
class _Pending:
    key: Any
    payload: Any
    future: Future


class MicroBatcher:
    """Group submitted payloads into batches for a runner callback.

    Parameters
    ----------
    runner:
        ``runner(key, payloads) -> results`` with exactly one result
        per payload, in order.  An exception fails every future in the
        batch.  With ``dispatch_workers=1`` (the default) it runs on
        the collector thread: batches execute one at a time
        (parallelism lives *inside* a batch, in the pipeline's worker
        pools — the single-GPU serving model).
    max_batch_size / max_latency:
        The two cutoff knobs described above.
    capacity:
        Bound of the admission queue (the 429 threshold).
    retry_after:
        Advisory client backoff carried by :class:`BatchQueueFull`.
    dispatch_workers:
        How many batches may be *in flight* at once.  1 keeps the
        historical inline path.  Above 1, formed batches go to a
        bounded hand-off queue drained by this many dispatcher threads
        — the shape the service uses over a process
        :class:`~repro.service.workers.WorkerPool`, where each
        dispatcher blocks on pipe I/O while a worker process does the
        actual validation.  The hand-off queue is bounded at the
        dispatcher count, so when every worker is busy the collector
        blocks, the admission queue fills, and the 429 backpressure
        contract survives unchanged.
    """

    def __init__(
        self,
        runner: Callable[[Any, Sequence[Any]], Sequence[Any]],
        max_batch_size: int = 8,
        max_latency: float = 0.02,
        capacity: int = 64,
        retry_after: float = 1.0,
        dispatch_workers: int = 1,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_latency < 0:
            raise ValueError(f"max_latency must be >= 0, got {max_latency}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if dispatch_workers < 1:
            raise ValueError(f"dispatch_workers must be >= 1, got {dispatch_workers}")
        self.runner = runner
        self.dispatch_workers = dispatch_workers
        self.max_batch_size = max_batch_size
        self.max_latency = max_latency
        self.capacity = capacity
        self.retry_after = retry_after

        self._queue: queue.Queue[_Pending] = queue.Queue(maxsize=capacity)
        # admissions and close() serialise on this lock so no payload can
        # slip into the queue after the collector's final drain sweep
        self._admit_lock = threading.Lock()
        self._closed = threading.Event()
        self._drained = threading.Event()
        self._drain_mode = True
        self._counter_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "batches": 0,
            "size_cutoffs": 0,
            "latency_cutoffs": 0,
            "key_cutoffs": 0,
            "largest_batch": 0,
        }
        # dispatch_workers > 1: formed batches hand off through a small
        # bounded queue to dispatcher threads, so several batches can be
        # in flight (each typically parked on a worker-process pipe)
        self._dispatch_queue: queue.Queue | None = None
        self._dispatchers: list[threading.Thread] = []
        if dispatch_workers > 1:
            self._dispatch_queue = queue.Queue(maxsize=dispatch_workers)
            for i in range(dispatch_workers):
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"microbatch-dispatch-{i}",
                    daemon=True,
                )
                thread.start()
                self._dispatchers.append(thread)
        self._collector = threading.Thread(
            target=self._collect, name="microbatch-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def submit(self, key: Any, payload: Any) -> Future:
        """Admit one payload; returns the future carrying its result."""
        with self._admit_lock:
            if self._closed.is_set():
                raise BatcherClosed("batcher is draining; not accepting work")
            pending = _Pending(key=key, payload=payload, future=Future())
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                self._bump("rejected")
                raise BatchQueueFull(
                    self._queue.qsize(), self.capacity, self.retry_after
                ) from None
        self._bump("submitted")
        return pending.future

    @property
    def depth(self) -> int:
        """Current admission-queue depth (approximate, lock-free)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def snapshot(self) -> dict[str, int]:
        """Live counters plus queue geometry, safe to call any time."""
        with self._counter_lock:
            counters = dict(self._counters)
        counters["queue_depth"] = self.depth
        counters["queue_capacity"] = self.capacity
        counters["max_batch_size"] = self.max_batch_size
        counters["dispatch_workers"] = self.dispatch_workers
        counters["draining"] = self._closed.is_set()
        return counters

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> bool:
        """Stop admitting; finish (or fail) queued work; park the collector.

        With ``drain=True`` every already-admitted request completes
        normally.  With ``drain=False`` queued requests fail fast with
        :class:`BatcherClosed`.  Returns True once the collector parked
        within ``timeout`` seconds.
        """
        self._drain_mode = drain
        with self._admit_lock:
            self._closed.set()
        self._drained.wait(timeout)
        self._collector.join(timeout)
        return not self._collector.is_alive()

    # ------------------------------------------------------------------
    # collector
    # ------------------------------------------------------------------

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._counter_lock:
            self._counters[counter] += by
        # mirror every lifetime counter into the metrics registry so
        # /v1/metrics exposes the batcher without a second bookkeeping path
        get_metrics().counter(f"service_batcher_{counter}_total").inc(by)

    def _next(self, timeout: float) -> _Pending | None:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def _collect(self) -> None:
        holdover: _Pending | None = None
        while True:
            if self._closed.is_set() and not self._drain_mode:
                break  # fail-fast close: leftovers are rejected below
            first = holdover
            holdover = None
            if first is None:
                first = self._next(timeout=0.05)
            if first is None:
                if self._closed.is_set():
                    break
                continue

            batch = [first]
            deadline = time.monotonic() + self.max_latency
            cutoff = "size"
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    cutoff = "latency"
                    break
                item = self._next(timeout=remaining)
                if item is None:
                    cutoff = "latency"
                    break
                if item.key != first.key:
                    # incompatible request: close this batch, open the next
                    holdover = item
                    cutoff = "key"
                    break
                batch.append(item)

            self._bump(f"{cutoff}_cutoffs")
            self._dispatch(first.key, batch)

        # closed: no new admissions can arrive; flush what remains
        leftovers = [] if holdover is None else [holdover]
        while True:
            item = self._next(timeout=0.0)
            if item is None:
                break
            leftovers.append(item)
        if self._drain_mode:
            for item in leftovers:
                self._dispatch(item.key, [item])
        else:
            for item in leftovers:
                item.future.set_exception(BatcherClosed("batcher closed before dispatch"))
                self._bump("failed")
        # park the dispatchers after their queue is empty: every formed
        # batch (drain or not) already owns its futures and must finish
        if self._dispatch_queue is not None:
            for _ in self._dispatchers:
                self._dispatch_queue.put(None)
            for thread in self._dispatchers:
                thread.join()
        self._drained.set()

    def _dispatch(self, key: Any, batch: list[_Pending]) -> None:
        self._bump("batches")
        with self._counter_lock:
            self._counters["largest_batch"] = max(
                self._counters["largest_batch"], len(batch)
            )
        get_metrics().histogram(
            "service_batch_size", buckets=(1, 2, 4, 8, 16, 32, 64)
        ).observe(len(batch))
        if self._dispatch_queue is None:
            self._execute(key, batch)
        else:
            # blocks when every dispatcher is busy — intentional: the
            # admission queue then fills and submit() starts raising 429s
            self._dispatch_queue.put((key, batch))

    def _dispatch_loop(self) -> None:
        while True:
            item = self._dispatch_queue.get()
            if item is None:
                return
            self._execute(*item)

    def _execute(self, key: Any, batch: list[_Pending]) -> None:
        try:
            results = self.runner(key, [item.payload for item in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"runner returned {len(results)} results for a "
                    f"batch of {len(batch)}"
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            for item in batch:
                item.future.set_exception(exc)
            self._bump("failed", len(batch))
        else:
            for item, result in zip(batch, results):
                item.future.set_result(result)
            self._bump("completed", len(batch))
