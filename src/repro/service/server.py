"""The validation daemon: HTTP front-end over the batched pipeline.

:class:`ValidationService` owns the domain side — one
:class:`TestsuiteValidator` per distinct option set (all sharing one
simulated model and one :class:`PipelineCache`), the micro-batcher
that admission-controls ``/v1/validate``, optionally a pre-forked
:class:`~repro.service.workers.WorkerPool` that batches fan out to
(``workers=N``; ``workers=0`` validates in-process), and the lifetime
aggregates ``/v1/stats`` exposes.  :class:`ValidationServer` is a thin
``ThreadingHTTPServer``: each connection gets a handler thread that
parses JSON, submits to the service and blocks on its future, so
concurrency is bounded by the admission queue, not by socket count.

Endpoints
---------
* ``POST /v1/validate``  — batched full-pipeline validation;
* ``POST /v1/judge``     — one synchronous judge-only call;
* ``POST /v1/jobs``      — submit a durable campaign/experiment job
  (requires ``--jobs-dir``; see :mod:`repro.service.jobs`);
* ``GET  /v1/jobs``      — list journaled jobs;
* ``GET  /v1/jobs/<id>`` — one job's state machine record;
* ``GET  /v1/jobs/<id>/artifacts`` — what the job has produced;
* ``GET  /healthz``      — liveness + drain state (+ job counts);
* ``GET  /v1/stats``     — live batching/pipeline/cache counters;
* ``GET  /v1/metrics``   — the metrics registry in Prometheus text
  format (counters/gauges/histograms from every layer, including
  deltas shipped home by pool workers);
* ``GET  /v1/fuzz/stats`` — lifetime fuzzing-campaign counters for this
  process (campaigns, executions, discrepancies, acceptance).

Load shedding is explicit: a full admission queue answers HTTP 429
with a ``Retry-After`` header; a draining daemon answers 503.  SIGTERM
handling lives in the CLI (``llm4vv serve``), which calls
:meth:`ValidationServer.drain_and_shutdown` — now *checkpoint then
drain*: the active job checkpoints at its next round/cell boundary and
is journaled, queued requests finish, the cache flushes to disk, then
the listener stops.  Jobs survive the restart through the journal.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.compiler.driver import testfile_language
from repro.core.validator import TestsuiteValidator
from repro.corpus.generator import TestFile
from repro.judge.agent import ToolReport
from repro.judge.llmj import AgentLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.obs import trace
from repro.obs.metrics import get_metrics
from repro.pipeline.stats import PipelineStats
from repro.service.batching import BatcherClosed, BatchQueueFull, MicroBatcher
from repro.service.protocol import (
    JobSpec,
    JudgeRequest,
    ProtocolError,
    ValidateRequest,
    error_body,
)
from repro.testing.faultinject import fault_point


@dataclass
class _Admitted:
    """One admitted validate request, stamped for queue-delay timing.

    ``trace_ctx``/``request_id`` carry the handler thread's span
    context into the collector/dispatcher threads, where contextvars
    do not propagate — the batch span re-attaches to them explicitly.
    """

    request: ValidateRequest
    enqueued_at: float = field(default_factory=time.monotonic)
    request_id: str | None = None
    trace_ctx: trace.TraceContext | None = None


class ValidationService:
    """The domain half of the daemon (no HTTP anywhere in here)."""

    def __init__(
        self,
        cache=None,
        model_seed: int = 20240822,
        threads: int = 2,
        judge_workers: int = 1,
        max_batch_size: int = 8,
        max_latency: float = 0.02,
        queue_capacity: int = 64,
        retry_after: float = 1.0,
        jobs_dir: str | None = None,
        workers: int = 0,
        worker_start_method: str | None = None,
        trace_log: str | None = None,
    ):
        self.cache = cache
        # --trace-log: install a process-ambient tracer; every request,
        # batch, stage, and worker span lands in it, and drain() writes
        # the JSON-lines span log.  Without it the trace module no-ops.
        self.trace_log = trace_log
        self._tracer = None
        if trace_log is not None:
            self._tracer = trace.Tracer()
            trace.install(self._tracer)
        self.jobs = None
        if jobs_dir is not None:
            # lazy import: a daemon without --jobs-dir never loads the
            # fuzz/experiment stacks
            from repro.service.jobs import JobManager

            self.jobs = JobManager(jobs_dir, cache=cache)
            self.jobs.start()
        self.model_seed = model_seed
        self.model = DeepSeekCoderSim(seed=model_seed)
        self.threads = threads
        self.judge_workers = judge_workers
        self.started_at = time.monotonic()
        #: lifetime aggregate over every batch's pipeline run
        self.pipeline_stats = PipelineStats()
        self._stats_lock = threading.Lock()
        self._validators: dict[object, TestsuiteValidator] = {}
        self._validators_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters = {"validate_requests": 0, "judge_requests": 0}
        # workers >= 1: pre-fork a process pool and size the batcher's
        # dispatcher threads to it, so up to ``workers`` micro-batches
        # validate in parallel across cores.  workers == 0 keeps the
        # in-process path — the executable spec the pool must match
        # byte for byte.
        self.pool = None
        if workers >= 1:
            from repro.service.workers import WorkerConfig, WorkerPool

            self.pool = WorkerPool(
                workers,
                WorkerConfig(
                    model_seed=model_seed,
                    threads=threads,
                    judge_workers=judge_workers,
                    cache_dir=(
                        None
                        if cache is None or cache.cache_dir is None
                        else str(cache.cache_dir)
                    ),
                    use_cache=cache is not None,
                ),
                start_method=worker_start_method,
            )
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=max_batch_size,
            max_latency=max_latency,
            capacity=queue_capacity,
            retry_after=retry_after,
            dispatch_workers=workers if workers >= 1 else 1,
        )

    # ------------------------------------------------------------------
    # request entry points
    # ------------------------------------------------------------------

    def submit(self, request: ValidateRequest, request_id: str | None = None) -> Future:
        """Admit one validate request (raises BatchQueueFull on pressure)."""
        admitted = _Admitted(
            request, request_id=request_id, trace_ctx=trace.current()
        )
        future = self.batcher.submit(request.options, admitted)
        self._bump("validate_requests")
        return future

    def judge(self, request: JudgeRequest) -> dict:
        """One synchronous judge-only call (not batched: no pipeline)."""
        judge = AgentLLMJ(
            self.model,
            request.flavor,
            kind=request.judge,
            execution_backend=request.backend,
        )
        if self.cache is not None:
            from repro.cache.wrappers import CachingAgentJudge

            judge = CachingAgentJudge(judge, self.cache.judge)
        test = TestFile(
            name=request.name,
            language=testfile_language(request.name),
            model=request.flavor,
            source=request.source,
            template="user",
        )
        report = None
        if request.report is not None:
            report = ToolReport(
                compile_rc=request.report["compile_rc"],
                compile_stderr=request.report.get("compile_stderr") or "",
                compile_stdout=request.report.get("compile_stdout") or "",
                run_rc=request.report.get("run_rc"),
                run_stderr=request.report.get("run_stderr"),
                run_stdout=request.report.get("run_stdout"),
                diagnostic_codes=tuple(request.report.get("diagnostic_codes", ())),
            )
        t0 = time.perf_counter()
        result = judge.judge(test, report)
        self._bump("judge_requests")
        return {
            "result": result.to_json(),
            "says_valid": result.says_valid,
            "timings": {
                "wall_ms": round((time.perf_counter() - t0) * 1000, 3),
                "simulated_seconds": round(result.simulated_seconds, 4),
            },
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def health(self) -> dict:
        body = {
            "status": "draining" if self.batcher.closed else "ok",
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "queue_depth": self.batcher.depth,
        }
        if self.jobs is not None:
            body["jobs"] = self.jobs.snapshot()
        return body

    def fuzz_stats(self) -> dict:
        """Lifetime fuzz-campaign counters (``GET /v1/fuzz/stats``).

        Campaigns register with a process-wide registry when they
        finish, so a daemon co-hosting campaign runs (or a test driving
        both in one process) surfaces discovery progress over HTTP.
        """
        from repro.fuzz.campaign import fuzz_stats_snapshot

        return fuzz_stats_snapshot()

    def metrics_text(self) -> str:
        """The ``GET /v1/metrics`` body (Prometheus text format).

        Point-in-time gauges are refreshed at exposition time — they
        also guarantee a fresh daemon serves non-empty output before
        any request has incremented a counter.
        """
        registry = get_metrics()
        registry.gauge("service_uptime_seconds").set(
            time.monotonic() - self.started_at
        )
        registry.gauge("service_queue_depth").set(self.batcher.depth)
        registry.gauge("service_queue_capacity").set(self.batcher.capacity)
        registry.gauge("service_workers_configured").set(
            self.pool.size if self.pool is not None else 0
        )
        registry.gauge("service_workers_alive").set(
            self.pool.alive if self.pool is not None else 0
        )
        if self.jobs is not None:
            for state, count in self.jobs.snapshot()["by_state"].items():
                registry.gauge("service_jobs", state=state).set(count)
        if self.cache is not None:
            for namespace in self.cache.namespaces:
                total = namespace.hits + namespace.misses
                registry.gauge(
                    "service_cache_hit_ratio", namespace=namespace.name
                ).set(namespace.hits / total if total else 0.0)
        return registry.render_prometheus()

    def stats_snapshot(self) -> dict:
        """Everything ``/v1/stats`` serves, copied under the right locks."""
        from repro.runtime.interpreter import DEFAULT_BACKEND, EXECUTION_BACKENDS

        with self._counter_lock:
            counters = dict(self._counters)
        with self._validators_lock:
            active = sorted({options.backend for options in self._validators})
        return {
            "service": {
                "uptime_seconds": round(time.monotonic() - self.started_at, 3),
                "model_seed": self.model_seed,
                **counters,
                "batching": self.batcher.snapshot(),
                "workers": (
                    self.pool.snapshot()
                    if self.pool is not None
                    else {
                        "configured": 0,
                        "alive": 0,
                        "restarts": 0,
                        "batches_dispatched": 0,
                    }
                ),
                # which backend produced served verdicts: the execute
                # cache is backend-agnostic by design, so operators
                # read this (not cache keys) to attribute a run
                "backends": {
                    "registered": list(EXECUTION_BACKENDS),
                    "default": DEFAULT_BACKEND,
                    "active": active,
                },
            },
            "pipeline": self.pipeline_stats.snapshot(),
            "cache": self.cache.summary() if self.cache is not None else None,
            "jobs": self.jobs.snapshot() if self.jobs is not None else None,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful wind-down: *checkpoint*, then drain, then flush.

        Order matters: the active job checkpoints and journals first
        (its state must survive even if the process dies later in the
        drain), then queued HTTP requests finish, then the cache
        flushes.  The ``drain:mid`` fault point sits between the two
        halves — a SIGKILL there must still leave a resumable journal,
        which is exactly what the crash-recovery tests inject.
        """
        if self.jobs is not None:
            self.jobs.checkpoint_and_stop(timeout=timeout)
        fault_point("drain:mid")
        parked = self.batcher.close(drain=True, timeout=timeout)
        # the batcher has drained: no batch is in flight, so the pool's
        # polite stop runs clean (each worker flushes its cache into the
        # shared dir before exiting, ahead of the parent's own flush)
        if self.pool is not None:
            self.pool.close(timeout=timeout)
        if self.cache is not None:
            self.cache.save()
        if self._tracer is not None:
            from repro.obs.export import write_span_log

            write_span_log(self._tracer.spans, self.trace_log)
            # the ambient tracer was installed by __init__; a drained
            # service must not keep collecting into a flushed log (or
            # leak its tracer into the next service in this process)
            if trace.active() is self._tracer:
                trace.uninstall()
        return parked

    # ------------------------------------------------------------------
    # batch execution (collector / dispatcher threads)
    # ------------------------------------------------------------------

    def _bump(self, counter: str) -> None:
        with self._counter_lock:
            self._counters[counter] += 1

    def _validator_for(self, options) -> TestsuiteValidator:
        with self._validators_lock:
            validator = self._validators.get(options)
            if validator is None:
                validator = TestsuiteValidator(
                    flavor=options.flavor,
                    judge_kind=options.judge,
                    early_exit=options.early_exit,
                    workers=self.threads,
                    judge_workers=self.judge_workers,
                    model=self.model,
                    cache=self.cache,
                    execution_backend=options.backend,
                )
                self._validators[options] = validator
            return validator

    def _run_batch(self, options, payloads: list[_Admitted]) -> list[dict]:
        """One micro-batch -> one (or few) shared pipeline runs.

        The batch-execution logic itself lives in
        :func:`repro.service.workers.execute_batch` — this method only
        decides *where* it runs (a pool worker process, or in-process
        when ``workers=0``), then merges the result back: the batch's
        pipeline stats into the lifetime aggregate, worker cache
        counters into the parent's summary, and the queue-delay stamp
        (which only the parent knows) into each response.
        """
        from repro.service.workers import execute_batch

        requests = [payload.request.files for payload in payloads]
        # the batch span re-attaches to the first admitted request's
        # context (contextvars don't cross into dispatcher threads);
        # sibling request ids ride along as an attribute so any one of
        # them finds this batch in the exported log
        parent_ctx = next(
            (p.trace_ctx for p in payloads if p.trace_ctx is not None), None
        )
        request_ids = [p.request_id for p in payloads if p.request_id]
        dispatched_at = time.monotonic()
        t0 = time.perf_counter()
        with trace.span(
            "service.batch",
            parent=parent_ctx,
            requests=len(payloads),
            request_ids=",".join(request_ids),
            pooled=self.pool is not None,
        ):
            if self.pool is not None:
                result = self.pool.run_batch(options, requests)
            else:
                result = execute_batch(self._validator_for, options, requests)
        get_metrics().histogram("service_batch_seconds").observe(
            time.perf_counter() - t0
        )
        # telemetry shipped home by a pool worker: spans into the
        # ambient tracer, metric growth into the parent registry
        tracer = trace.active()
        if tracer is not None and result.spans:
            tracer.absorb(result.spans)
        if result.metrics_delta:
            get_metrics().apply(result.metrics_delta)
        # several dispatcher threads can land here at once; walls still
        # sum (concurrent=False) so the aggregate reads as total
        # validation compute, matching the single-process meaning
        with self._stats_lock:
            self.pipeline_stats.merge(result.stats, concurrent=False)
            if result.cache_delta and self.cache is not None:
                for namespace in self.cache.namespaces:
                    delta = result.cache_delta.get(namespace.name)
                    if delta:
                        namespace.hits += delta["hits"]
                        namespace.misses += delta["misses"]
        for payload, response in zip(payloads, result.responses):
            response["timings"]["queued_ms"] = round(
                (dispatched_at - payload.enqueued_at) * 1000, 3
            )
        return result.responses


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------


class ValidationServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to one :class:`ValidationService`.

    ``daemon_threads`` is off on purpose: ``server_close`` then joins
    handler threads, so a drained shutdown cannot cut a response off
    mid-write.  The listen backlog is raised from the stdlib's 5: a
    burst of concurrent clients must queue in the kernel, not lose
    SYNs to a full backlog and stall ~1s in retransmission.
    """

    daemon_threads = False
    allow_reuse_address = True
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], service: ValidationService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    def drain_and_shutdown(self, timeout: float | None = 30.0) -> None:
        """Graceful stop: drain the batcher, flush the cache, stop serving.

        Callable from any thread (the CLI calls it from a signal-driven
        path while ``serve_forever`` runs in the main thread).
        """
        self.service.drain(timeout=timeout)
        self.shutdown()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache=None,
    quiet: bool = True,
    **service_knobs,
) -> ValidationServer:
    """Build a ready-to-serve daemon; ``port=0`` picks an ephemeral port."""
    service = ValidationService(cache=cache, **service_knobs)
    return ValidationServer((host, port), service, quiet=quiet)


class _Handler(BaseHTTPRequestHandler):
    server_version = "llm4vv-service/1.0"

    # -- helpers -------------------------------------------------------

    def _send(self, status: int, body: dict, headers: dict[str, str] | None = None) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ProtocolError("request body required")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from exc

    @property
    def _service(self) -> ValidationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            if self.path == "/healthz":
                self._send(200, self._service.health())
            elif self.path == "/v1/metrics":
                self._send_text(200, self._service.metrics_text())
            elif self.path == "/v1/stats":
                self._send(200, self._service.stats_snapshot())
            elif self.path == "/v1/fuzz/stats":
                self._send(200, self._service.fuzz_stats())
            elif self.path == "/v1/jobs":
                jobs = self._require_jobs()
                if jobs is not None:
                    self._send(200, {"jobs": [r.to_json() for r in jobs.list()]})
            elif self.path.startswith("/v1/jobs/"):
                self._get_job(self.path[len("/v1/jobs/"):])
            else:
                self._send(404, error_body(f"unknown path {self.path!r}"))
        except ConnectionError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            self._error(500, f"internal error: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            if self.path == "/v1/validate":
                self._post_validate()
            elif self.path == "/v1/judge":
                self._post_judge()
            elif self.path == "/v1/jobs":
                self._post_job()
            else:
                self._send(404, error_body(f"unknown path {self.path!r}"))
        except ProtocolError as exc:
            self._error(400, str(exc))
        except ConnectionError:
            pass  # client went away (possibly mid-response): nothing to answer
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            self._error(500, f"internal error: {exc}")

    def _error(self, status: int, message: str) -> None:
        """Best-effort error response; the socket may already be dead."""
        try:
            self._send(status, error_body(message))
        except OSError:
            pass

    def _request_id(self) -> str:
        """The client's X-Request-Id, or a fresh one; always echoed."""
        return self.headers.get("X-Request-Id") or trace.new_id()

    def _post_validate(self) -> None:
        request = ValidateRequest.from_dict(self._read_json())
        request_id = self._request_id()
        headers = {"X-Request-Id": request_id}
        status = 200
        t0 = time.perf_counter()
        # the root span of everything this request causes: the batch
        # span (collector thread), pool dispatch, worker-side pipeline
        # spans — all reachable from this request_id in the span log
        with trace.span(
            "service.request",
            request_id=request_id,
            endpoint="validate",
            files=len(request.files),
        ):
            try:
                future = self._service.submit(request, request_id=request_id)
            except BatchQueueFull as exc:
                status = 429
                self._send(
                    429,
                    error_body(
                        "admission queue full; retry later",
                        queue_depth=exc.depth,
                        queue_capacity=exc.capacity,
                        retry_after=exc.retry_after,
                    ),
                    headers={
                        **headers,
                        "Retry-After": str(max(1, round(exc.retry_after))),
                    },
                )
            except BatcherClosed:
                status = 503
                self._send(
                    503,
                    error_body("service is draining; not accepting work"),
                    headers=headers,
                )
            else:
                self._send(200, future.result(), headers=headers)
        registry = get_metrics()
        registry.counter(
            "service_requests_total", endpoint="validate", status=str(status)
        ).inc()
        registry.histogram(
            "service_request_seconds", endpoint="validate"
        ).observe(time.perf_counter() - t0)

    def _post_judge(self) -> None:
        request = JudgeRequest.from_dict(self._read_json())
        request_id = self._request_id()
        with trace.span(
            "service.request", request_id=request_id, endpoint="judge"
        ):
            body = self._service.judge(request)
        get_metrics().counter(
            "service_requests_total", endpoint="judge", status="200"
        ).inc()
        self._send(200, body, headers={"X-Request-Id": request_id})

    # -- jobs ----------------------------------------------------------

    def _require_jobs(self):
        """The job manager, or answer 503 and return None.

        503 (not 404): the route exists, this daemon instance just was
        not started with a journal directory — a deployment state, not
        a client error.
        """
        jobs = self._service.jobs
        if jobs is None:
            self._send(
                503,
                error_body("jobs API disabled; start the daemon with --jobs-dir"),
            )
        return jobs

    def _get_job(self, rest: str) -> None:
        jobs = self._require_jobs()
        if jobs is None:
            return
        job_id, _, tail = rest.partition("/")
        try:
            if tail == "":
                self._send(200, jobs.get(job_id).to_json())
            elif tail == "artifacts":
                self._send(200, jobs.artifacts(job_id))
            else:
                self._send(404, error_body(f"unknown path {self.path!r}"))
        except KeyError:
            self._send(404, error_body(f"unknown job {job_id!r}"))

    def _post_job(self) -> None:
        jobs = self._require_jobs()
        if jobs is None:
            return
        if self._service.batcher.closed:
            self._send(503, error_body("service is draining; not accepting work"))
            return
        spec = JobSpec.from_dict(self._read_json())
        request_id = self._request_id()
        record = jobs.submit(spec.kind, spec.spec_dict(), request_id=request_id)
        self._send(200, record.to_json(), headers={"X-Request-Id": request_id})
