"""Command-line interface: ``llm4vv``.

Subcommands:

* ``validate <files...>`` — run the validation pipeline on source files;
* ``generate`` — emit a synthetic V&V corpus to a directory;
* ``probe`` — apply negative probing to a saved suite;
* ``experiment <tableN|figN|all>`` — regenerate paper artifacts;
* ``report`` — write EXPERIMENTS.md (paper-vs-measured).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="llm4vv",
        description="LLM-as-a-Judge validation of OpenACC/OpenMP compiler tests",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persist execute/judge results as JSON under DIR "
                 "(warm-starts later runs)",
        )
        sub_parser.add_argument(
            "--no-cache", action="store_true",
            help="disable content-addressed result caching",
        )

    def add_backend_flag(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--backend", choices=("walk", "closure"), default="closure",
            help="interpreter execution backend: 'closure' (lowered "
                 "closures, 5-10x faster) or 'walk' (tree-walking "
                 "reference evaluator)",
        )

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_jobs_flag(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--jobs", type=positive_int, default=1, metavar="N",
            help="worker processes for the experiment matrix: fan "
                 "independent (part x flavor) cells over N processes "
                 "sharing execute/judge results via the on-disk cache "
                 "(1 = sequential)",
        )

    p_validate = sub.add_parser("validate", help="validate candidate test files")
    p_validate.add_argument("files", nargs="+", help="source files to validate")
    p_validate.add_argument("--flavor", choices=("acc", "omp"), default="acc")
    p_validate.add_argument("--judge", choices=("direct", "indirect"), default="direct")
    p_validate.add_argument("--no-early-exit", action="store_true")
    p_validate.add_argument("--workers", type=int, default=2)
    add_cache_flags(p_validate)
    add_backend_flag(p_validate)

    p_generate = sub.add_parser("generate", help="generate a synthetic V&V corpus")
    p_generate.add_argument("--flavor", choices=("acc", "omp"), default="acc")
    p_generate.add_argument("--count", type=int, default=50)
    p_generate.add_argument("--languages", default="c,cpp")
    p_generate.add_argument("--seed", type=int, default=1234)
    p_generate.add_argument("--out", default="corpus-out")
    add_backend_flag(p_generate)

    p_probe = sub.add_parser("probe", help="negative-probe a saved suite")
    p_probe.add_argument("suite", help="directory produced by 'generate'")
    p_probe.add_argument("--seed", type=int, default=42)
    p_probe.add_argument("--out", default="probed-out")

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("artifact", help="table1..table9, fig3..fig6, or 'all'")
    p_exp.add_argument("--scale", choices=("paper", "small", "tiny"), default="small")
    p_exp.add_argument("--seed", type=int, default=20240822)
    add_cache_flags(p_exp)
    add_backend_flag(p_exp)
    add_jobs_flag(p_exp)

    p_report = sub.add_parser("report", help="write EXPERIMENTS.md")
    p_report.add_argument("--scale", choices=("paper", "small", "tiny"), default="paper")
    p_report.add_argument("--out", default="EXPERIMENTS.md")
    add_cache_flags(p_report)
    add_backend_flag(p_report)
    add_jobs_flag(p_report)

    args = parser.parse_args(argv)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "probe":
        return _cmd_probe(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "report":
        return _cmd_report(args)
    return 2  # pragma: no cover - argparse enforces choices


def _make_cache(args: argparse.Namespace):
    """Build the PipelineCache an invocation asked for (or None)."""
    if getattr(args, "no_cache", False):
        return None
    from repro.cache.bundle import PipelineCache

    cache = PipelineCache(cache_dir=getattr(args, "cache_dir", None))
    loaded = cache.load()
    if loaded:
        print(f"cache: warm-started {loaded} entries from {args.cache_dir}")
    return cache


def _finish_cache(cache) -> None:
    """Persist (if configured) and summarise cache effectiveness."""
    if cache is None:
        return
    cache.save()
    parts = ", ".join(
        f"{ns.name} {ns.hits}/{ns.hits + ns.misses}" for ns in cache.namespaces
    )
    print(f"cache: {cache.hits} hits, {cache.misses} misses ({parts})")


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core import TestsuiteValidator

    sources = {}
    for path in args.files:
        sources[Path(path).name] = Path(path).read_text()
    cache = _make_cache(args)
    validator = TestsuiteValidator(
        flavor=args.flavor,
        judge_kind=args.judge,
        early_exit=not args.no_early_exit,
        workers=args.workers,
        cache=cache,
        execution_backend=args.backend,
    )
    report = validator.validate_sources(sources)
    for judged in report.files:
        marker = "PASS" if judged.is_valid else "FAIL"
        print(f"[{marker}] {judged.name} ({judged.stage}): {judged.reason}")
    summary = report.summary()
    print(f"\n{summary['valid']}/{summary['total']} files judged valid")
    _finish_cache(cache)
    return 0 if not report.invalid_files else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.corpus.generator import CorpusGenerator
    from repro.corpus.suite import TestSuite

    languages = tuple(args.languages.split(","))
    generator = CorpusGenerator(seed=args.seed, execution_backend=args.backend)
    files = generator.generate(args.flavor, args.count, languages=languages)
    suite = TestSuite(f"{args.flavor}-generated", args.flavor, files)
    out = suite.save(args.out)
    print(f"wrote {len(files)} tests to {out}")
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.corpus.suite import TestSuite
    from repro.probing.prober import NegativeProber

    suite = TestSuite.load(args.suite)
    probed = NegativeProber(seed=args.seed).probe(suite)
    out_suite = TestSuite(probed.name, probed.model, list(probed))
    out = out_suite.save(args.out)
    counts = probed.issue_counts()
    print(f"wrote {len(probed)} probed tests to {out}")
    print("issue counts:", {k: v for k, v in counts.items() if v})
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, Experiments

    cache = _make_cache(args)
    exp = Experiments(
        ExperimentConfig(
            scale=args.scale, seed=args.seed, cache_enabled=cache is not None,
            cache_dir=args.cache_dir, execution_backend=args.backend, jobs=args.jobs,
        ),
        cache=cache,
    )
    names = (
        [f"table{i}" for i in range(1, 10)] + [f"fig{i}" for i in range(3, 7)]
        if args.artifact == "all"
        else [args.artifact]
    )
    for name in names:
        if getattr(exp, name, None) is None:
            print(f"unknown artifact {name!r}", file=sys.stderr)
            return 2
    if args.jobs > 1:
        exp.prefetch(artifacts=names)
        _print_shard_summary(exp)
    for name in names:
        print(getattr(exp, name)().text)
        print()
    _finish_cache(cache)
    return 0


def _print_shard_summary(exp) -> None:
    stats = exp.shard_stats
    if stats is None:
        return
    cells = ", ".join(f"{name} {seconds:.1f}s" for name, seconds in exp.shard_cells)
    line = f"sharding: {exp.config.jobs} jobs ({cells})"
    if stats.files_total:
        busy = sum(stage.busy_seconds for stage in stats.stages)
        line += f"; {stats.files_total} pipeline files, {busy:.1f}s stage-busy"
    print(line)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, Experiments
    from repro.experiments.report import write_experiments_md

    cache = _make_cache(args)
    exp = Experiments(
        ExperimentConfig(
            scale=args.scale, cache_enabled=cache is not None,
            cache_dir=args.cache_dir, execution_backend=args.backend, jobs=args.jobs,
        ),
        cache=cache,
    )
    path = write_experiments_md(exp, args.out)
    _print_shard_summary(exp)
    print(f"wrote {path}")
    _finish_cache(cache)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
