"""Command-line interface: ``llm4vv``.

Subcommands:

* ``validate <files...>`` — run the validation pipeline on source files;
* ``generate`` — emit a synthetic V&V corpus to a directory;
* ``probe`` — apply negative probing to a saved suite;
* ``experiment <tableN|figN|all>`` — regenerate paper artifacts
  (``--run-dir``/``--resume`` make the run durable: per-cell
  checkpoints plus a progress record that a rerun picks up);
* ``report`` — write EXPERIMENTS.md (paper-vs-measured);
* ``serve`` — run the validation daemon (HTTP, batched admission;
  ``--jobs-dir`` enables the durable job queue);
* ``client`` — validate files against a running daemon;
* ``jobs`` — submit/inspect durable jobs on a running daemon;
* ``cache`` — inspect or purge an on-disk ``--cache-dir``;
* ``fuzz`` — coverage-guided differential fuzzing campaigns
  (``run`` / ``replay`` / ``minimize`` / ``report``); ``run``
  checkpoints every round and ``run --resume DIR`` continues an
  interrupted campaign to a digest-identical manifest;
* ``coverage`` — print the feature-coverage matrix for a suite or
  campaign corpus.

Every command shuts down gracefully: SIGTERM is mapped onto
``KeyboardInterrupt``, in-flight schedulers drain via their sentinel
path, and any configured cache flushes to disk before the process
exits (so an interrupted sweep still warm-starts the next one).
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    with _graceful_sigterm():
        try:
            return _main(argv)
        except KeyboardInterrupt:
            print("\ninterrupted — state flushed, exiting", file=sys.stderr)
            return 130


@contextlib.contextmanager
def _graceful_sigterm():
    """Map SIGTERM onto KeyboardInterrupt for the duration of a command.

    One code path then covers Ctrl-C and a supervisor's TERM: the
    scheduler's abort/drain runs, each command's ``finally`` persists
    its cache, and the process exits 130 instead of dying mid-write.
    Signal handlers only work on the main thread; elsewhere (tests
    driving ``main()`` from workers) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _on_term(signum, frame):
        raise KeyboardInterrupt
    previous = signal.signal(signal.SIGTERM, _on_term)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="llm4vv",
        description="LLM-as-a-Judge validation of OpenACC/OpenMP compiler tests",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persist execute/judge results as JSON under DIR "
                 "(warm-starts later runs)",
        )
        sub_parser.add_argument(
            "--no-cache", action="store_true",
            help="disable content-addressed result caching",
        )

    def add_backend_flag(sub_parser: argparse.ArgumentParser) -> None:
        # choices and help derive from the registry so a newly
        # registered backend reaches the CLI without touching this file
        from repro.runtime.interpreter import (
            BACKEND_SUMMARIES,
            DEFAULT_BACKEND,
            EXECUTION_BACKENDS,
        )

        summary = "; ".join(
            f"'{name}' ({BACKEND_SUMMARIES[name]})" for name in EXECUTION_BACKENDS
        )
        sub_parser.add_argument(
            "--backend", choices=EXECUTION_BACKENDS, default=DEFAULT_BACKEND,
            help=f"interpreter execution backend: {summary}",
        )

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_jobs_flag(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--jobs", type=positive_int, default=1, metavar="N",
            help="worker processes for the experiment matrix: fan "
                 "independent (part x flavor) cells over N processes "
                 "sharing execute/judge results via the on-disk cache "
                 "(1 = sequential)",
        )

    p_validate = sub.add_parser("validate", help="validate candidate test files")
    p_validate.add_argument("files", nargs="+", help="source files to validate")
    p_validate.add_argument("--flavor", choices=("acc", "omp"), default="acc")
    p_validate.add_argument("--judge", choices=("direct", "indirect"), default="direct")
    p_validate.add_argument("--no-early-exit", action="store_true")
    p_validate.add_argument("--workers", type=int, default=2)
    p_validate.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a JSON-lines span log of the run (inspect with "
             "'llm4vv trace summarize|export|gantt FILE')",
    )
    add_cache_flags(p_validate)
    add_backend_flag(p_validate)

    p_generate = sub.add_parser("generate", help="generate a synthetic V&V corpus")
    p_generate.add_argument("--flavor", choices=("acc", "omp"), default="acc")
    p_generate.add_argument("--count", type=int, default=50)
    p_generate.add_argument("--languages", default="c,cpp")
    p_generate.add_argument("--seed", type=int, default=1234)
    p_generate.add_argument("--out", default="corpus-out")
    add_backend_flag(p_generate)

    p_probe = sub.add_parser("probe", help="negative-probe a saved suite")
    p_probe.add_argument("suite", help="directory produced by 'generate'")
    p_probe.add_argument("--seed", type=int, default=42)
    p_probe.add_argument("--out", default="probed-out")

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "artifact", nargs="?", default=None,
        help="table1..table9, fig3..fig6, or 'all' "
             "(optional when resuming a --run-dir)",
    )
    p_exp.add_argument("--scale", choices=("paper", "small", "tiny"), default="small")
    p_exp.add_argument("--seed", type=int, default=20240822)
    p_exp.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="make the run durable: checkpoint each matrix cell under "
             "DIR and record progress + artifact digest there",
    )
    p_exp.add_argument(
        "--resume", default=None, metavar="DIR",
        help="continue an interrupted --run-dir run: reuse its recorded "
             "spec and every checkpointed cell, compute only the rest",
    )
    add_cache_flags(p_exp)
    add_backend_flag(p_exp)
    add_jobs_flag(p_exp)

    p_report = sub.add_parser("report", help="write EXPERIMENTS.md")
    p_report.add_argument("--scale", choices=("paper", "small", "tiny"), default="paper")
    p_report.add_argument("--out", default="EXPERIMENTS.md")
    add_cache_flags(p_report)
    add_backend_flag(p_report)
    add_jobs_flag(p_report)

    p_serve = sub.add_parser(
        "serve", help="run the validation daemon (POST /v1/validate)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8347,
        help="listen port (0 = pick an ephemeral port and print it)",
    )
    p_serve.add_argument(
        "--max-batch", type=positive_int, default=8, metavar="N",
        help="micro-batch size cutoff: a full batch dispatches at once",
    )
    p_serve.add_argument(
        "--max-latency-ms", type=float, default=20.0, metavar="MS",
        help="micro-batch latency cutoff: an open batch waits at most "
             "MS milliseconds for company",
    )
    p_serve.add_argument(
        "--queue-capacity", type=positive_int, default=64, metavar="N",
        help="admission queue bound; beyond it requests get HTTP 429",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="pre-forked validation worker processes; micro-batches fan "
             "out across them (0 = validate in-process, the default)",
    )
    p_serve.add_argument(
        "--threads", type=positive_int, default=2,
        help="compile/execute worker threads per pipeline (per process)",
    )
    p_serve.add_argument(
        "--judge-workers", type=positive_int, default=1,
        help="judge worker threads per pipeline",
    )
    p_serve.add_argument("--model-seed", type=int, default=20240822)
    p_serve.add_argument(
        "--jobs-dir", default=None, metavar="DIR",
        help="enable the durable job queue (POST /v1/jobs): journal and "
             "work dirs live under DIR and survive daemon restarts",
    )
    p_serve.add_argument(
        "--trace-log", default=None, metavar="FILE",
        help="collect spans for every request/batch/stage and write a "
             "JSON-lines span log to FILE on drain",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    add_cache_flags(p_serve)

    p_client = sub.add_parser(
        "client", help="validate files against a running daemon"
    )
    p_client.add_argument("files", nargs="*", help="source files to validate")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=8347)
    p_client.add_argument("--flavor", choices=("acc", "omp"), default="acc")
    p_client.add_argument("--judge", choices=("direct", "indirect"), default="direct")
    p_client.add_argument("--no-early-exit", action="store_true")
    add_backend_flag(p_client)
    p_client.add_argument(
        "--stats", action="store_true",
        help="print the daemon's /v1/stats after (or instead of) validating",
    )

    p_jobs = sub.add_parser(
        "jobs", help="submit/inspect durable jobs on a running daemon"
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    def add_jobs_conn(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--host", default="127.0.0.1")
        sub_parser.add_argument("--port", type=int, default=8347)

    pj_submit = jobs_sub.add_parser(
        "submit", help="submit a campaign/experiment job from a spec file"
    )
    pj_submit.add_argument(
        "spec",
        help='JSON file: {"kind": "campaign"|"experiment", "spec": {...}}',
    )
    pj_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches done/failed",
    )
    pj_submit.add_argument("--timeout", type=float, default=600.0, metavar="S")
    add_jobs_conn(pj_submit)

    pj_status = jobs_sub.add_parser("status", help="print one job's record")
    pj_status.add_argument("id")
    add_jobs_conn(pj_status)

    pj_list = jobs_sub.add_parser("list", help="list every journaled job")
    add_jobs_conn(pj_list)

    pj_wait = jobs_sub.add_parser(
        "wait", help="poll a job until it is done or failed"
    )
    pj_wait.add_argument("id")
    pj_wait.add_argument("--timeout", type=float, default=600.0, metavar="S")
    add_jobs_conn(pj_wait)

    pj_artifacts = jobs_sub.add_parser(
        "artifacts", help="list what a job has produced so far"
    )
    pj_artifacts.add_argument("id")
    add_jobs_conn(pj_artifacts)

    p_fuzz = sub.add_parser(
        "fuzz", help="coverage-guided differential fuzzing campaigns"
    )
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_command", required=True)

    pf_run = fuzz_sub.add_parser("run", help="run a fuzzing campaign")
    pf_run.add_argument("--flavor", choices=("acc", "omp"), default="acc")
    pf_run.add_argument("--seed", type=int, default=1)
    pf_run.add_argument("--rounds", type=positive_int, default=4)
    pf_run.add_argument("--batch", type=positive_int, default=24, metavar="N",
                        help="candidates scheduled per round")
    pf_run.add_argument("--corpus-seeds", type=positive_int, default=12, metavar="N",
                        help="template-rendered seed tests")
    pf_run.add_argument("--languages", default="c,cpp")
    pf_run.add_argument("--step-limit", type=positive_int, default=300_000)
    pf_run.add_argument("--workers", type=positive_int, default=2,
                        help="mutate/differential worker threads per stage")
    pf_run.add_argument("--judge-workers", type=positive_int, default=2)
    pf_run.add_argument(
        "--triage", choices=("divergent", "all", "off"), default="divergent",
        help="LLM-judge policy: divergent candidates only (default), "
             "every compiled candidate, or never",
    )
    from repro.runtime.interpreter import EXECUTION_BACKENDS

    pf_run.add_argument(
        "--arms", default=",".join(EXECUTION_BACKENDS), metavar="A,B[,C...]",
        help="comma-separated oracle arms (execution backends to cross-check; "
             f"default: all of {','.join(EXECUTION_BACKENDS)})",
    )
    pf_run.add_argument("--model-seed", type=int, default=20240822)
    pf_run.add_argument("--max-corpus", type=positive_int, default=512, metavar="N",
                        help="corpus size cap (divergent witnesses bypass it; "
                             "drops are counted in the report)")
    pf_run.add_argument("--out", default="fuzz-out", metavar="DIR",
                        help="campaign output dir (manifest + corpus + report)")
    pf_run.add_argument(
        "--checkpoint-every", type=positive_int, default=1, metavar="N",
        help="write the resumable checkpoint after every N rounds "
             "(the final round always checkpoints)",
    )
    pf_run.add_argument(
        "--resume", default=None, metavar="DIR",
        help="continue an interrupted campaign from DIR's checkpoint.json; "
             "config flags are ignored (the checkpoint records them) and "
             "the finished manifest is digest-identical to an "
             "uninterrupted run",
    )
    add_cache_flags(pf_run)

    pf_replay = fuzz_sub.add_parser(
        "replay", help="re-execute a campaign manifest and verify the digest"
    )
    pf_replay.add_argument("manifest", help="campaign.json (or its directory)")
    pf_replay.add_argument("--out", default=None, metavar="DIR",
                           help="also save the replayed campaign to DIR")
    add_cache_flags(pf_replay)

    pf_min = fuzz_sub.add_parser(
        "minimize", help="greedy-minimize a campaign corpus, keeping coverage"
    )
    pf_min.add_argument("campaign", help="campaign output dir")
    pf_min.add_argument("--out", default=None, metavar="DIR",
                        help="write the minimized suite to DIR")

    pf_report = fuzz_sub.add_parser(
        "report", help="print a saved campaign's findings and coverage"
    )
    pf_report.add_argument("campaign", help="campaign output dir")

    p_coverage = sub.add_parser(
        "coverage", help="print the feature-coverage matrix for a suite"
    )
    p_coverage.add_argument(
        "suite", help="a 'generate' suite dir or a fuzz campaign output dir"
    )
    p_coverage.add_argument(
        "--uncovered", action="store_true",
        help="also list each uncovered catalog feature with its description",
    )

    p_trace = sub.add_parser(
        "trace", help="inspect or convert a JSON-lines span log"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    pt_summarize = trace_sub.add_parser(
        "summarize", help="per-span-name latency table + request ids"
    )
    pt_summarize.add_argument("log", help="span log written by --trace-out/--trace-log")

    pt_export = trace_sub.add_parser(
        "export", help="convert a span log to Chrome trace-event JSON "
                       "(open in Perfetto / chrome://tracing)"
    )
    pt_export.add_argument("log", help="span log written by --trace-out/--trace-log")
    pt_export.add_argument("--out", default="chrome-trace.json", metavar="FILE")

    pt_gantt = trace_sub.add_parser(
        "gantt", help="text Gantt chart of the pipeline stage spans"
    )
    pt_gantt.add_argument("log", help="span log written by --trace-out/--trace-log")
    pt_gantt.add_argument("--width", type=positive_int, default=60)

    p_cache = sub.add_parser("cache", help="inspect or purge an on-disk cache")
    p_cache.add_argument("action", choices=("stats", "purge"))
    p_cache.add_argument("--cache-dir", required=True, metavar="DIR")
    p_cache.add_argument(
        "--namespace", default=None, metavar="NS",
        help="restrict 'purge' to one namespace (default: all); "
             "validated against the cache bundle's namespaces",
    )

    args = parser.parse_args(argv)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "probe":
        return _cmd_probe(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "coverage":
        return _cmd_coverage(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return 2  # pragma: no cover - argparse enforces choices


def _make_cache(args: argparse.Namespace):
    """Build the PipelineCache an invocation asked for (or None)."""
    if getattr(args, "no_cache", False):
        return None
    from repro.cache.bundle import PipelineCache

    cache = PipelineCache(cache_dir=getattr(args, "cache_dir", None))
    loaded = cache.load()
    if loaded:
        print(f"cache: warm-started {loaded} entries from {args.cache_dir}")
    return cache


def _finish_cache(cache, backend: str | None = None) -> None:
    """Persist (if configured) and summarise cache effectiveness.

    ``backend`` names the execution backend the run used; the cache
    itself is backend-agnostic (all backends produce byte-identical
    results), so this is provenance for the operator, not a cache key.
    """
    if cache is None:
        return
    cache.save()
    parts = ", ".join(
        f"{ns.name} {ns.hits}/{ns.hits + ns.misses}" for ns in cache.namespaces
    )
    line = f"cache: {cache.hits} hits, {cache.misses} misses ({parts})"
    if backend is not None:
        line += f"; backend {backend}"
    print(line)


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core import TestsuiteValidator
    from repro.obs import trace as obs_trace

    sources = {}
    for path in args.files:
        sources[Path(path).name] = Path(path).read_text()
    cache = _make_cache(args)
    tracer = obs_trace.Tracer() if args.trace_out else None
    try:
        validator = TestsuiteValidator(
            flavor=args.flavor,
            judge_kind=args.judge,
            early_exit=not args.no_early_exit,
            workers=args.workers,
            cache=cache,
            execution_backend=args.backend,
        )
        if tracer is not None:
            with obs_trace.installed(tracer):
                report = validator.validate_sources(sources)
        else:
            report = validator.validate_sources(sources)
        for judged in report.files:
            marker = "PASS" if judged.is_valid else "FAIL"
            print(f"[{marker}] {judged.name} ({judged.stage}): {judged.reason}")
        summary = report.summary()
        print(
            f"\n{summary['valid']}/{summary['total']} files judged valid"
            f" (backend {args.backend})"
        )
        return 0 if not report.invalid_files else 1
    finally:
        # also reached on KeyboardInterrupt/SIGTERM: the scheduler has
        # drained by now, so persist whatever work completed
        _finish_cache(cache, backend=args.backend)
        if tracer is not None:
            from repro.obs.export import write_span_log

            write_span_log(tracer.spans, args.trace_out)
            print(f"trace: wrote {len(tracer)} span(s) to {args.trace_out}")


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.corpus.generator import CorpusGenerator
    from repro.corpus.suite import TestSuite

    languages = tuple(args.languages.split(","))
    generator = CorpusGenerator(seed=args.seed, execution_backend=args.backend)
    files = generator.generate(args.flavor, args.count, languages=languages)
    suite = TestSuite(f"{args.flavor}-generated", args.flavor, files)
    out = suite.save(args.out)
    print(f"wrote {len(files)} tests to {out}")
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.corpus.suite import TestSuite
    from repro.probing.prober import NegativeProber

    suite = TestSuite.load(args.suite)
    probed = NegativeProber(seed=args.seed).probe(suite)
    out_suite = TestSuite(probed.name, probed.model, list(probed))
    out = out_suite.save(args.out)
    counts = probed.issue_counts()
    print(f"wrote {len(probed)} probed tests to {out}")
    print("issue counts:", {k: v for k, v in counts.items() if v})
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, Experiments

    if args.run_dir or args.resume:
        return _cmd_experiment_durable(args)
    if args.artifact is None:
        print("experiment: need an artifact name (or --resume DIR)", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    try:
        exp = Experiments(
            ExperimentConfig(
                scale=args.scale, seed=args.seed, cache_enabled=cache is not None,
                cache_dir=args.cache_dir, execution_backend=args.backend, jobs=args.jobs,
            ),
            cache=cache,
        )
        names = (
            [f"table{i}" for i in range(1, 10)] + [f"fig{i}" for i in range(3, 7)]
            if args.artifact == "all"
            else [args.artifact]
        )
        for name in names:
            if getattr(exp, name, None) is None:
                print(f"unknown artifact {name!r}", file=sys.stderr)
                return 2
        if args.jobs > 1:
            exp.prefetch(artifacts=names)
            _print_shard_summary(exp)
        for name in names:
            print(getattr(exp, name)().text)
            print()
        print(f"experiment: {len(names)} artifact(s), backend {args.backend}")
        return 0
    finally:
        _finish_cache(cache, backend=args.backend)


def _cmd_experiment_durable(args: argparse.Namespace) -> int:
    """The ``--run-dir``/``--resume`` path: checkpointed artifact runs."""
    from repro.experiments.rundir import (
        ALL_ARTIFACTS,
        ExperimentRunSpec,
        RunDirError,
        load_run_spec,
        run_artifacts,
    )

    run_dir = args.resume or args.run_dir
    if args.resume:
        try:
            spec = load_run_spec(args.resume)
        except RunDirError as exc:
            print(f"experiment: {exc}", file=sys.stderr)
            return 2
        if spec is None:
            print(f"experiment: no run to resume under {args.resume} "
                  "(missing progress.json)", file=sys.stderr)
            return 2
        print(f"resuming experiment run in {args.resume} "
              f"({len(spec.artifacts)} artifact(s), scale {spec.scale})")
    else:
        if args.artifact is None:
            print("experiment: need an artifact name (or --resume DIR)",
                  file=sys.stderr)
            return 2
        names = (
            list(ALL_ARTIFACTS) if args.artifact == "all" else [args.artifact]
        )
        spec = ExperimentRunSpec(
            scale=args.scale, seed=args.seed, artifacts=tuple(names),
            backend=args.backend, jobs=args.jobs,
        )
    cache = _make_cache(args)
    try:
        outcome = run_artifacts(spec, run_dir, cache=cache, progress=print)
        for name in spec.artifacts:
            print(outcome.texts[name])
            print()
        print(
            f"experiment: {len(spec.artifacts)} artifact(s) in {outcome.run_dir} "
            f"({outcome.reused_cells} cell(s) reused, "
            f"{outcome.computed_cells} computed; digest {outcome.digest[:16]})"
        )
        return 0
    except ValueError as exc:  # unknown artifact in spec
        print(f"experiment: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"\nexperiment: interrupted — finished cells are checkpointed; "
            f"rerun with --resume {run_dir}",
            file=sys.stderr,
        )
        raise
    finally:
        _finish_cache(cache, backend=spec.backend)


def _print_shard_summary(exp) -> None:
    stats = exp.shard_stats
    if stats is None:
        return
    # one consistent snapshot rather than live counter reads
    snap = stats.snapshot()
    cells = ", ".join(f"{name} {seconds:.1f}s" for name, seconds in exp.shard_cells)
    line = f"sharding: {exp.config.jobs} jobs ({cells})"
    if snap["files_total"]:
        busy = sum(stage["busy_seconds"] for stage in snap["stages"].values())
        line += f"; {snap['files_total']} pipeline files, {busy:.1f}s stage-busy"
    print(line)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, Experiments
    from repro.experiments.report import write_experiments_md

    cache = _make_cache(args)
    try:
        exp = Experiments(
            ExperimentConfig(
                scale=args.scale, cache_enabled=cache is not None,
                cache_dir=args.cache_dir, execution_backend=args.backend, jobs=args.jobs,
            ),
            cache=cache,
        )
        path = write_experiments_md(exp, args.out)
        _print_shard_summary(exp)
        print(f"wrote {path} (backend {args.backend})")
        return 0
    finally:
        _finish_cache(cache, backend=args.backend)


def _bind_server(args: argparse.Namespace, cache):
    from repro.service.server import make_server

    return make_server(
        host=args.host,
        port=args.port,
        cache=cache,
        quiet=not args.verbose,
        model_seed=args.model_seed,
        workers=args.workers,
        threads=args.threads,
        judge_workers=args.judge_workers,
        max_batch_size=args.max_batch,
        max_latency=args.max_latency_ms / 1000.0,
        queue_capacity=args.queue_capacity,
        jobs_dir=args.jobs_dir,
        trace_log=args.trace_log,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    try:
        server = _bind_server(args, cache)
    except OSError as exc:
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    endpoints = "POST /v1/validate, GET /v1/stats"
    if args.jobs_dir:
        endpoints += f", POST /v1/jobs (journal: {args.jobs_dir})"
    pool = f", workers={args.workers}" if args.workers else ""
    print(
        f"serving on http://{host}:{port} "
        f"(batch<={args.max_batch}, latency<={args.max_latency_ms:g}ms, "
        f"queue<={args.queue_capacity}{pool}) — {endpoints}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Ctrl-C or SIGTERM: finish queued requests, flush the cache,
        # then stop the listener — never die mid-batch or mid-write.
        # The drain runs on a helper thread while the listener keeps
        # answering (new POSTs get the documented 503, /healthz shows
        # "draining"); a second interrupt stops the listener at once.
        print("draining...", file=sys.stderr, flush=True)
        drainer = threading.Thread(target=server.drain_and_shutdown, daemon=True)
        drainer.start()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            server.shutdown()
        drainer.join(timeout=30.0)
    finally:
        server.server_close()
        snap = server.service.batcher.snapshot()
        print(
            f"served {snap['completed']} request(s) in {snap['batches']} "
            f"batch(es), rejected {snap['rejected']}",
            file=sys.stderr,
        )
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    if not args.files and not args.stats:
        print("client: need source files and/or --stats", file=sys.stderr)
        return 2
    try:
        sources = {Path(path).name: Path(path).read_text() for path in args.files}
    except OSError as exc:
        print(f"client: cannot read source file: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(host=args.host, port=args.port)
    try:
        exit_code = 0
        if args.files:
            response = client.validate(
                sources,
                flavor=args.flavor,
                judge=args.judge,
                early_exit=not args.no_early_exit,
                backend=args.backend,
            )
            for verdict in response["verdicts"]:
                marker = "PASS" if verdict["verdict"] == "valid" else "FAIL"
                print(f"[{marker}] {verdict['name']} ({verdict['stage']}): {verdict['reason']}")
            summary = response["summary"]
            timings = response["timings"]
            print(
                f"\n{summary['valid']}/{summary['total']} files judged valid "
                f"(queued {timings['queued_ms']:.1f}ms, "
                f"pipeline {timings['wall_ms']:.1f}ms, "
                f"batch of {response['batch']['size']})"
            )
            exit_code = 0 if summary["invalid"] == 0 else 1
        if args.stats:
            import json as _json

            print(_json.dumps(client.stats(), indent=2))
        return exit_code
    except ServiceError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 3
    except OSError as exc:
        print(f"client: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 3


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.jobs_command == "submit":
            try:
                payload = _json.loads(Path(args.spec).read_text())
            except (OSError, _json.JSONDecodeError) as exc:
                print(f"jobs submit: cannot read spec file: {exc}", file=sys.stderr)
                return 2
            if not isinstance(payload, dict) or "kind" not in payload:
                print('jobs submit: spec file must be {"kind": ..., "spec": {...}}',
                      file=sys.stderr)
                return 2
            record = client.submit_job(payload["kind"], payload.get("spec", {}))
            print(f"submitted {record['id']} ({record['kind']}, "
                  f"state {record['state']})")
            if args.wait:
                record = client.wait_for_job(record["id"], timeout=args.timeout)
                return _print_job_outcome(record)
            return 0
        if args.jobs_command == "status":
            print(_json.dumps(client.job(args.id), indent=2, sort_keys=True))
            return 0
        if args.jobs_command == "list":
            records = client.jobs()
            if not records:
                print("no jobs journaled")
            for record in records:
                result = record.get("result") or {}
                digest = result.get("digest", "")
                suffix = f" digest {digest[:16]}" if digest else ""
                print(f"{record['id']}  {record['state']:12s} "
                      f"{record['kind']}{suffix}")
            return 0
        if args.jobs_command == "wait":
            record = client.wait_for_job(args.id, timeout=args.timeout)
            return _print_job_outcome(record)
        if args.jobs_command == "artifacts":
            artifacts = client.job_artifacts(args.id)
            print(f"{artifacts['id']} ({artifacts['state']}) — {artifacts['dir']}")
            for entry in artifacts["files"]:
                print(f"  {entry['path']} ({entry['bytes']} bytes)")
            if not artifacts["files"]:
                print("  (no artifacts yet)")
            return 0
        return 2  # pragma: no cover - argparse enforces choices
    except TimeoutError as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 3
    except OSError as exc:
        print(f"jobs: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 3


def _print_job_outcome(record: dict) -> int:
    import json as _json

    print(_json.dumps(record, indent=2, sort_keys=True))
    if record["state"] == "failed":
        print(f"job {record['id']} failed: {record.get('error')}", file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.fuzz_command == "run":
        return _cmd_fuzz_run(args)
    if args.fuzz_command == "replay":
        return _cmd_fuzz_replay(args)
    if args.fuzz_command == "minimize":
        return _cmd_fuzz_minimize(args)
    if args.fuzz_command == "report":
        return _cmd_fuzz_report(args)
    return 2  # pragma: no cover - argparse enforces choices


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import Campaign
    from repro.fuzz.checkpoint import CheckpointError, load_checkpoint
    from repro.fuzz.manifest import save_campaign

    resume = None
    if args.resume:
        try:
            resume = load_checkpoint(args.resume)
        except CheckpointError as exc:
            print(f"fuzz run: {exc}", file=sys.stderr)
            return 2
        if resume is None:
            print(f"fuzz run: no checkpoint under {args.resume}", file=sys.stderr)
            return 2
        # the checkpoint is authoritative for both config and output dir
        config = resume.config
        out = args.resume
        print(f"resuming campaign from {args.resume} "
              f"(round {resume.next_round}/{config.rounds})")
    else:
        languages = tuple(
            part.strip() for part in args.languages.split(",") if part.strip()
        )
        unknown = [lang for lang in languages if lang not in ("c", "cpp", "f90")]
        if unknown or not languages:
            print(
                f"fuzz run: unknown languages {unknown or args.languages!r} "
                "(choose from c, cpp, f90)",
                file=sys.stderr,
            )
            return 2
        arms = tuple(part.strip() for part in args.arms.split(",") if part.strip())
        try:
            config = _fuzz_config(args, languages, arms)
        except ValueError as exc:
            print(f"fuzz run: {exc}", file=sys.stderr)
            return 2
        out = args.out
    cache = _make_cache(args)
    try:
        result = Campaign(config, cache=cache).run(
            progress=print,
            checkpoint_dir=out,
            checkpoint_every=args.checkpoint_every,
            resume=resume,
        )
        save_campaign(result, out)
        print(result.render_report())
        print(f"\nwrote campaign to {out} (digest {result.digest()[:16]}; "
              f"oracle arms {'+'.join(config.arms)})")
        return 1 if result.findings else 0
    except KeyboardInterrupt:
        print(
            f"\nfuzz run: interrupted — the last round boundary is "
            f"checkpointed; rerun with --resume {out}",
            file=sys.stderr,
        )
        raise
    finally:
        _finish_cache(cache)


def _fuzz_config(args: argparse.Namespace, languages: tuple, arms: tuple):
    from repro.fuzz.campaign import CampaignConfig

    return CampaignConfig(
        flavor=args.flavor,
        languages=languages,
        seed=args.seed,
        rounds=args.rounds,
        batch_size=args.batch,
        seed_count=args.corpus_seeds,
        step_limit=args.step_limit,
        workers=args.workers,
        judge_workers=args.judge_workers,
        triage=args.triage,
        model_seed=args.model_seed,
        max_corpus=args.max_corpus,
        arms=arms,
    )


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.manifest import CampaignManifest, ReplayError, replay_manifest, save_campaign

    path = Path(args.manifest)
    if path.is_dir():
        path = path / "campaign.json"
    try:
        manifest = CampaignManifest.load(path)
    except (OSError, ValueError, KeyError, ReplayError) as exc:
        print(f"fuzz replay: cannot load manifest: {exc}", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    try:
        result, identical = replay_manifest(manifest, cache=cache, progress=print)
        if args.out:
            save_campaign(result, args.out)
            print(f"wrote replayed campaign to {args.out}")
        print(
            f"recorded digest {manifest.digest[:16]}, "
            f"replayed digest {result.digest()[:16]}"
        )
        if identical:
            print("replay: byte-identical")
            return 0
        print("replay: MISMATCH — substrate drifted since the manifest was written",
              file=sys.stderr)
        return 1
    finally:
        _finish_cache(cache)


def _cmd_fuzz_minimize(args: argparse.Namespace) -> int:
    from repro.corpus.suite import TestSuite
    from repro.fuzz.manifest import load_campaign_dir
    from repro.fuzz.minimize import minimize_corpus

    try:
        manifest, suite = load_campaign_dir(args.campaign)
    except (OSError, ValueError, KeyError) as exc:
        print(f"fuzz minimize: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    by_name = {test.name: test for test in suite}
    entries = [
        (by_name[meta["name"]], tuple(meta["keys"]))
        for meta in manifest.corpus_meta
        if meta["name"] in by_name
    ]
    result = minimize_corpus(entries)
    kept_set = set(result.kept)
    print(
        f"minimized {len(entries)} -> {len(result.kept)} tests "
        f"({result.reduction:.0%} dropped) preserving {result.covered_keys} "
        f"frontier keys"
    )
    for name in result.kept:
        print(f"  keep {name}")
    if args.out:
        minimized = TestSuite(
            f"{suite.name}-min", suite.model,
            [test for test in suite if test.name in kept_set],
        )
        out = minimized.save(args.out)
        print(f"wrote minimized suite to {out}")
    return 0


def _cmd_fuzz_report(args: argparse.Namespace) -> int:
    from repro.fuzz.manifest import load_campaign_dir

    try:
        manifest, suite = load_campaign_dir(args.campaign)
    except (OSError, ValueError, KeyError) as exc:
        print(f"fuzz report: cannot load campaign: {exc}", file=sys.stderr)
        return 2
    report = Path(args.campaign) / "report.txt"
    if report.exists():
        print(report.read_text().rstrip())
    stats = manifest.stats
    print(
        f"\ncorpus {len(suite)} tests; "
        f"{stats.get('discrepancies', 0)} discrepancies, "
        f"{stats.get('accepted', 0)} accepted / {stats.get('applied', 0)} applied; "
        f"digest {manifest.digest[:16]}"
    )
    return 1 if manifest.findings else 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.corpus.coverage import measure_coverage, uncovered_features
    from repro.corpus.suite import TestSuite

    root = Path(args.suite)
    corpus = root / "corpus"
    try:
        suite = TestSuite.load(corpus if (corpus / "manifest.json").exists() else root)
    except (OSError, ValueError, KeyError) as exc:
        print(f"coverage: cannot load suite from {root}: {exc}", file=sys.stderr)
        return 2
    report = measure_coverage(suite.model, list(suite))
    print(report.render())
    if args.uncovered:
        gaps = uncovered_features(suite.model, list(suite))
        if gaps:
            print("\nuncovered catalog features:")
            for feature in gaps:
                print(f"  {feature.ident:30s} [{feature.category}] {feature.description}")
        else:
            print("\nno uncovered catalog features")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache.bundle import disk_summary, purge_dir

    directory = Path(args.cache_dir)
    if args.action == "stats":
        if not directory.is_dir():
            print(f"cache: no such directory {directory}", file=sys.stderr)
            return 2
        total = 0
        for name, snap in disk_summary(directory).items():
            if snap is None:
                print(f"{name}: no persisted file")
                continue
            state = " (corrupt)" if snap["corrupt"] else ""
            print(f"{name}: {snap['entries']} entries, {snap['bytes']} bytes{state}")
            total += snap["entries"]
        print(f"total: {total} persisted entries in {directory}")
        return 0
    try:
        purged = purge_dir(directory, namespace=args.namespace)
    except ValueError as exc:  # unknown namespace, per the bundle's list
        print(f"cache: {exc}", file=sys.stderr)
        return 2
    scope = args.namespace or "all namespaces"
    if purged:
        print(f"purged {', '.join(purged)} from {directory}")
    else:
        print(f"nothing to purge for {scope} in {directory}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import (
        chrome_trace,
        load_span_log,
        render_gantt,
        render_summary,
        summarize_spans,
    )

    try:
        spans = load_span_log(args.log)
    except (OSError, ValueError) as exc:
        print(f"trace: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"trace: {args.log} holds no spans", file=sys.stderr)
        return 1
    if args.trace_command == "summarize":
        print(render_summary(summarize_spans(spans)))
        return 0
    if args.trace_command == "gantt":
        print(render_gantt(spans, width=args.width))
        return 0
    from repro.core.atomicio import atomic_write_json

    payload = chrome_trace(spans)
    atomic_write_json(Path(args.out), payload, fault_tag="trace-export")
    print(
        f"trace: wrote {len(payload['traceEvents'])} event(s) to {args.out} "
        "(open in Perfetto or chrome://tracing)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
