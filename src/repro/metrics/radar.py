"""Radar-figure data (paper Figures 3-6) and an ASCII renderer.

The paper's radar plots collapse the six issue rows onto axes:

* **model errors** — issue 0 (broken/removed directive constructs);
* **improper syntax** — issues 1 and 2 (brackets, undeclared variables);
* **no directives** — issue 3 (random non-directive code);
* **test logic** — issue 4 (removed last bracketed section);
* **valid tests** — issue 5 (unchanged files; present on the LLMJ
  figures 5/6).

Figures 3/4 use the first four axes for Pipelines 1 and 2; figures 5/6
add the fifth axis and plot all three judges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.metrics.accuracy import MetricsReport

RADAR_CATEGORIES = [
    ("model errors", (0,)),
    ("improper syntax", (1, 2)),
    ("no directives", (3,)),
    ("test logic", (4,)),
]

RADAR_CATEGORIES_WITH_VALID = RADAR_CATEGORIES + [("valid tests", (5,))]


@dataclass(frozen=True)
class RadarSeries:
    """One polygon on a radar figure."""

    label: str
    axes: tuple[str, ...]
    values: tuple[float, ...]  # accuracies in [0, 1]

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.axes, self.values))


def radar_series(
    report: MetricsReport, include_valid_axis: bool = False
) -> RadarSeries:
    """Collapse a per-issue report onto the figure's radar axes."""
    categories = RADAR_CATEGORIES_WITH_VALID if include_valid_axis else RADAR_CATEGORIES
    axes: list[str] = []
    values: list[float] = []
    for name, issues in categories:
        total = 0
        correct = 0
        for issue in issues:
            row = report.row_for(issue)
            if row is not None:
                total += row.count
                correct += row.correct
        axes.append(name)
        values.append(correct / total if total else 0.0)
    return RadarSeries(label=report.label, axes=tuple(axes), values=tuple(values))


def render_ascii_radar(series_list: list[RadarSeries], width: int = 41) -> str:
    """A terminal rendering of a radar figure.

    Each series plots one marker per axis along a spoke from the
    center; the caption lists exact values (the plot is qualitative,
    the caption quantitative — like the paper's figures plus tables).
    """
    if not series_list:
        return "(empty radar)"
    axes = series_list[0].axes
    n_axes = len(axes)
    height = width // 2 + 1
    cx, cy = width // 2, height // 2
    radius = min(cx, cy) - 1
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def plot(x: float, y: float, ch: str) -> None:
        col = int(round(cx + x))
        row = int(round(cy - y / 2))  # terminal cells are ~2:1
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = ch

    # spokes and rings
    for k in range(n_axes):
        angle = math.pi / 2 - 2 * math.pi * k / n_axes
        for r10 in range(0, radius * 10, 3):
            r = r10 / 10
            plot(r * math.cos(angle), r * math.sin(angle), ".")
        plot(radius * math.cos(angle), radius * math.sin(angle), "+")
    markers = "ox*#@"
    for idx, series in enumerate(series_list):
        ch = markers[idx % len(markers)]
        for k, value in enumerate(series.values):
            angle = math.pi / 2 - 2 * math.pi * k / n_axes
            r = value * radius
            plot(r * math.cos(angle), r * math.sin(angle), ch)
    plot(0, 0, "·")

    lines = ["".join(row).rstrip() for row in grid]
    lines.append("")
    lines.append("axes (clockwise from top): " + ", ".join(axes))
    for idx, series in enumerate(series_list):
        ch = markers[idx % len(markers)]
        values = ", ".join(
            f"{axis}={value:.0%}" for axis, value in zip(series.axes, series.values)
        )
        lines.append(f"  {ch} {series.label}: {values}")
    return "\n".join(line for line in lines if line is not None)
