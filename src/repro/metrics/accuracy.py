"""Accuracy and bias computation (paper §IV).

An :class:`EvaluationSet` pairs ground truth (is each file valid?) with
a judge's verdicts (did it say valid?), plus each file's issue id.
Metrics follow the paper exactly:

* **per-issue accuracy** — fraction of correct evaluations per issue id;
* **overall accuracy** — fraction of correct evaluations, all files;
* **bias** — over mistaken evaluations only: +1 for passing an invalid
  file, −1 for failing a valid file, summed and divided by the number
  of mistakes.  Range [−1, 1]; positive = permissive, negative =
  restrictive; defined as 0.0 when there are no mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.probing.mutators import ISSUE_DESCRIPTIONS


@dataclass
class EvaluationSet:
    """Integer-coded evaluation outcomes for one judge over one suite.

    Arrays are aligned; ``issues`` uses 5 for unchanged files, matching
    the paper's issue ids.
    """

    issues: np.ndarray  # int, 0-5
    truth_valid: np.ndarray  # bool: ground truth
    judged_valid: np.ndarray  # bool: the judge's verdict
    names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.issues = np.asarray(self.issues, dtype=np.int64)
        self.truth_valid = np.asarray(self.truth_valid, dtype=bool)
        self.judged_valid = np.asarray(self.judged_valid, dtype=bool)
        if not (len(self.issues) == len(self.truth_valid) == len(self.judged_valid)):
            raise ValueError("evaluation arrays must be aligned")

    def __len__(self) -> int:
        return len(self.issues)

    @property
    def correct(self) -> np.ndarray:
        return self.truth_valid == self.judged_valid

    @classmethod
    def from_records(cls, files, verdicts_valid, names=None) -> "EvaluationSet":
        """Build from TestFile-like objects and boolean verdicts."""
        issues = [5 if f.issue in (None, 5) else int(f.issue) for f in files]
        truth = [f.is_valid for f in files]
        return cls(
            issues=np.array(issues),
            truth_valid=np.array(truth),
            judged_valid=np.array(list(verdicts_valid)),
            names=names if names is not None else [f.name for f in files],
        )

    def concat(self, other: "EvaluationSet") -> "EvaluationSet":
        return EvaluationSet(
            issues=np.concatenate([self.issues, other.issues]),
            truth_valid=np.concatenate([self.truth_valid, other.truth_valid]),
            judged_valid=np.concatenate([self.judged_valid, other.judged_valid]),
            names=self.names + other.names,
        )


@dataclass(frozen=True)
class IssueRow:
    """One row of a per-issue table (Tables I/II/IV/V/VII/VIII)."""

    issue: int
    description: str
    count: int
    correct: int
    incorrect: int
    accuracy: float


def per_issue_rows(evals: EvaluationSet) -> list[IssueRow]:
    """Per-issue accuracy rows, issue ids ascending (0-5)."""
    rows: list[IssueRow] = []
    correct = evals.correct
    for issue in range(6):
        mask = evals.issues == issue
        count = int(mask.sum())
        if count == 0:
            continue
        n_correct = int(correct[mask].sum())
        rows.append(
            IssueRow(
                issue=issue,
                description=ISSUE_DESCRIPTIONS[issue],
                count=count,
                correct=n_correct,
                incorrect=count - n_correct,
                accuracy=n_correct / count,
            )
        )
    return rows


def overall_accuracy(evals: EvaluationSet) -> float:
    if len(evals) == 0:
        return 0.0
    return float(evals.correct.mean())


def bias(evals: EvaluationSet) -> float:
    """The paper's bias metric over mistaken evaluations."""
    mistakes = ~evals.correct
    n_mistakes = int(mistakes.sum())
    if n_mistakes == 0:
        return 0.0
    # +1: invalid file judged valid (permissive mistake)
    permissive = int((mistakes & ~evals.truth_valid).sum())
    # -1: valid file judged invalid (restrictive mistake)
    restrictive = int((mistakes & evals.truth_valid).sum())
    return (permissive - restrictive) / n_mistakes


@dataclass
class MetricsReport:
    """The paper's full metric set for one judge/pipeline on one suite."""

    label: str
    rows: list[IssueRow]
    total_count: int
    total_mistakes: int
    overall_accuracy: float
    bias: float

    @classmethod
    def from_evaluations(cls, label: str, evals: EvaluationSet) -> "MetricsReport":
        rows = per_issue_rows(evals)
        mistakes = int((~evals.correct).sum())
        return cls(
            label=label,
            rows=rows,
            total_count=len(evals),
            total_mistakes=mistakes,
            overall_accuracy=overall_accuracy(evals),
            bias=bias(evals),
        )

    def row_for(self, issue: int) -> IssueRow | None:
        for row in self.rows:
            if row.issue == issue:
                return row
        return None

    def accuracy_for(self, issue: int) -> float | None:
        row = self.row_for(issue)
        return row.accuracy if row is not None else None


def score_evaluations(label: str, files, verdicts_valid) -> MetricsReport:
    """One-call scoring: files + verdicts → full metrics report."""
    evals = EvaluationSet.from_records(files, verdicts_valid)
    return MetricsReport.from_evaluations(label, evals)
