"""Confusion matrices and per-dimension breakdowns (extension).

The paper reports accuracy/bias; downstream users of a judge usually
also want the full confusion matrix (precision/recall over "invalid" as
the positive class — the class you are trying to catch) and breakdowns
by language or template family to find systematic blind spots.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.corpus.generator import TestFile
from repro.metrics.accuracy import EvaluationSet


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion over 'invalid' as the positive class.

    * true positive  — invalid file judged invalid (caught);
    * false negative — invalid file judged valid (slipped through);
    * false positive — valid file judged invalid (wrongly rejected);
    * true negative  — valid file judged valid.
    """

    true_positive: int
    false_negative: int
    false_positive: int
    true_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive + self.false_negative
            + self.false_positive + self.true_negative
        )

    @property
    def accuracy(self) -> float:
        return (self.true_positive + self.true_negative) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """Of the files rejected, how many deserved it?"""
        denom = self.true_positive + self.false_positive
        return self.true_positive / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """Of the invalid files, how many were caught?"""
        denom = self.true_positive + self.false_negative
        return self.true_positive / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_pass_rate(self) -> float:
        """Invalid tests admitted into the suite — the costly mistake."""
        denom = self.true_positive + self.false_negative
        return self.false_negative / denom if denom else 0.0

    def render(self) -> str:
        return "\n".join(
            [
                "                 judged invalid   judged valid",
                f"  truly invalid  {self.true_positive:14d}   {self.false_negative:12d}",
                f"  truly valid    {self.false_positive:14d}   {self.true_negative:12d}",
                f"  precision {self.precision:.1%}  recall {self.recall:.1%}  "
                f"F1 {self.f1:.1%}  false-pass {self.false_pass_rate:.1%}",
            ]
        )


def confusion_matrix(evals: EvaluationSet) -> ConfusionMatrix:
    """Confusion matrix from an evaluation set."""
    truly_invalid = ~evals.truth_valid
    judged_invalid = ~evals.judged_valid
    return ConfusionMatrix(
        true_positive=int((truly_invalid & judged_invalid).sum()),
        false_negative=int((truly_invalid & ~judged_invalid).sum()),
        false_positive=int((~truly_invalid & judged_invalid).sum()),
        true_negative=int((~truly_invalid & ~judged_invalid).sum()),
    )


@dataclass
class BreakdownRow:
    key: str
    count: int
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.count if self.count else 0.0


def breakdown_by(
    files: list[TestFile], verdicts_valid: list[bool], key: str
) -> list[BreakdownRow]:
    """Per-dimension accuracy: ``key`` in {'language', 'template', 'model'}."""
    if key not in ("language", "template", "model"):
        raise ValueError(f"unsupported breakdown key {key!r}")
    counts: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for test, judged in zip(files, verdicts_valid):
        bucket = counts[getattr(test, key)]
        bucket[0] += 1
        if judged == test.is_valid:
            bucket[1] += 1
    return [
        BreakdownRow(key=name, count=total, correct=correct)
        for name, (total, correct) in sorted(counts.items())
    ]


def render_breakdown(rows: list[BreakdownRow], title: str = "") -> str:
    lines = [title] if title else []
    width = max((len(r.key) for r in rows), default=8)
    for row in rows:
        lines.append(
            f"  {row.key.ljust(width)}  {row.correct:4d}/{row.count:<4d}  {row.accuracy:6.1%}"
        )
    return "\n".join(lines)
