"""Metrics (paper §IV): per-issue accuracy, overall accuracy, bias.

The paper's coding maps "Correct/Passing/Valid" to 0 and
"Incorrect/Failing/Invalid" to 1; all metric computation here is
vectorized numpy over those integer codes.
"""

from repro.metrics.accuracy import (
    EvaluationSet,
    IssueRow,
    MetricsReport,
    bias,
    overall_accuracy,
    per_issue_rows,
    score_evaluations,
)
from repro.metrics.radar import RADAR_CATEGORIES, radar_series
from repro.metrics.tables import render_comparison_table, render_issue_table, render_overall_table

__all__ = [
    "EvaluationSet",
    "IssueRow",
    "MetricsReport",
    "bias",
    "overall_accuracy",
    "per_issue_rows",
    "score_evaluations",
    "RADAR_CATEGORIES",
    "radar_series",
    "render_comparison_table",
    "render_issue_table",
    "render_overall_table",
]
