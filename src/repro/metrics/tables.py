"""Rendering of paper-style tables as aligned text.

Three shapes cover Tables I-IX:

* :func:`render_issue_table` — single judge, per-issue rows
  (Tables I, II);
* :func:`render_comparison_table` — two judges/pipelines side by side,
  per-issue rows (Tables IV, V, VII, VIII);
* :func:`render_overall_table` — the overall accuracy/bias datapoint
  tables (Tables III, VI, IX).
"""

from __future__ import annotations

from repro.metrics.accuracy import MetricsReport


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), sep]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_issue_table(report: MetricsReport, title: str = "") -> str:
    """Per-issue table for one judge (Tables I / II shape)."""
    headers = ["Issue Type", "Total Count", "Correct", "Incorrect", "Accuracy"]
    rows = [
        [
            row.description,
            str(row.count),
            str(row.correct),
            str(row.incorrect),
            f"{row.accuracy:.0%}",
        ]
        for row in report.rows
    ]
    body = _format_table(headers, rows)
    return f"{title}\n{body}" if title else body


def render_comparison_table(
    report_a: MetricsReport, report_b: MetricsReport, title: str = ""
) -> str:
    """Side-by-side per-issue table (Tables IV / V / VII / VIII shape)."""
    headers = [
        "Issue Type",
        "Total Count",
        f"{report_a.label} Correct",
        f"{report_b.label} Correct",
        f"{report_a.label} Accuracy",
        f"{report_b.label} Accuracy",
    ]
    rows = []
    for row_a in report_a.rows:
        row_b = report_b.row_for(row_a.issue)
        rows.append(
            [
                row_a.description,
                str(row_a.count),
                str(row_a.correct),
                str(row_b.correct) if row_b else "-",
                f"{row_a.accuracy:.0%}",
                f"{row_b.accuracy:.0%}" if row_b else "-",
            ]
        )
    body = _format_table(headers, rows)
    return f"{title}\n{body}" if title else body


def render_overall_table(
    reports_by_column: dict[str, list[MetricsReport]], title: str = ""
) -> str:
    """Overall datapoint table (Tables III / VI / IX shape).

    ``reports_by_column`` maps a column label (e.g. "OpenACC") to the
    reports appearing in that column (one per judge/pipeline).
    """
    columns = list(reports_by_column.keys())
    headers = ["Datapoint"] + columns
    first_col_reports = reports_by_column[columns[0]]
    rows: list[list[str]] = []
    rows.append(
        ["Total Count"]
        + [str(reports_by_column[c][0].total_count) for c in columns]
    )
    for idx, report in enumerate(first_col_reports):
        rows.append(
            [f"Total {report.label} Mistakes"]
            + [str(reports_by_column[c][idx].total_mistakes) for c in columns]
        )
    for idx, report in enumerate(first_col_reports):
        rows.append(
            [f"Overall {report.label} Accuracy"]
            + [f"{reports_by_column[c][idx].overall_accuracy:.2%}" for c in columns]
        )
    for idx, report in enumerate(first_col_reports):
        rows.append(
            [f"{report.label} Bias"]
            + [f"{reports_by_column[c][idx].bias:+.3f}" for c in columns]
        )
    body = _format_table(headers, rows)
    return f"{title}\n{body}" if title else body
