"""Simulated code-generation model for compiler tests.

``CodeGenSim`` stands in for an instruction-tuned code LLM asked to
*write* a V&V test for a given feature.  Mechanically it samples a
matching template (the patterns such a model has seen thousands of
times) and then, with calibrated probabilities, injects the defect
classes the authors' prior generation study measured in real LLM
output: code that does not compile, code that compiles but fails at
run time, and code that runs clean but never verifies its result.

The defect rates default to the deepseek-coder-33B figures reported in
arXiv:2310.04963's evaluation band (roughly 10-20% compile failures and
a further slice of runtime/logic defects); they are constructor knobs
so experiments can sweep them.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.corpus.generator import TestFile
from repro.corpus.templates import TemplateContext, TemplateSpec, templates_for
from repro.probing.mutators import (
    DirectiveOrAllocationMutator,
    LastSectionMutator,
    MutationError,
    OpeningBracketMutator,
    UndeclaredVariableMutator,
)


class GenerationDefect(enum.Enum):
    """Defect classes observed in LLM-generated compiler tests."""

    NONE = "none"
    COMPILE_SYNTAX = "compile-syntax"  # malformed code / bad directive
    COMPILE_SEMANTIC = "compile-semantic"  # undeclared identifiers
    RUNTIME = "runtime"  # compiles, crashes or self-check fails
    MISSING_VERIFICATION = "missing-verification"  # runs clean, checks nothing


@dataclass(frozen=True)
class CandidateTest:
    """One generated candidate plus its (hidden) injected defect."""

    test: TestFile
    target_feature: str
    defect: GenerationDefect
    prompt: str

    @property
    def truly_valid(self) -> bool:
        return self.defect is GenerationDefect.NONE


#: Default defect mix for the simulated generator.
DEFAULT_DEFECT_RATES: dict[GenerationDefect, float] = {
    GenerationDefect.COMPILE_SYNTAX: 0.10,
    GenerationDefect.COMPILE_SEMANTIC: 0.06,
    GenerationDefect.RUNTIME: 0.08,
    GenerationDefect.MISSING_VERIFICATION: 0.10,
}


@dataclass
class CodeGenSim:
    """Seeded test-generation model for one programming model flavor."""

    flavor: str = "acc"
    seed: int = 7
    language: str = "c"
    defect_rates: dict[GenerationDefect, float] = field(
        default_factory=lambda: dict(DEFAULT_DEFECT_RATES)
    )

    def __post_init__(self) -> None:
        if self.flavor not in ("acc", "omp"):
            raise ValueError(f"flavor must be 'acc' or 'omp', got {self.flavor!r}")
        self._rng = random.Random(f"gen:{self.seed}:{self.flavor}:{self.language}")
        self._counter = 0

    # ------------------------------------------------------------------

    def build_prompt(self, feature_ident: str) -> str:
        """The generation prompt (for the record; the sampler is local)."""
        name = {"acc": "OpenACC", "omp": "OpenMP"}[self.flavor]
        return (
            f"Write a complete, self-checking {name} compiler test in "
            f"{'C' if self.language != 'f90' else 'Fortran'} that exercises the "
            f"feature '{feature_ident}'. The test must initialize its inputs, "
            f"compute a serial reference, perform the same computation using "
            f"{name} directives, compare the results, print a pass/fail "
            f"message, and return 0 on success and a nonzero code on failure."
        )

    def generate(self, feature_ident: str) -> CandidateTest:
        """One candidate test targeting ``feature_ident``."""
        spec = self._pick_template(feature_ident)
        ctx = TemplateContext(rng=self._rng, model=self.flavor, language=self.language)
        source = spec.render(ctx)
        self._counter += 1
        ext = {"c": ".c", "cpp": ".cpp", "f90": ".f90"}[self.language]
        name = f"gen_{self.flavor}_{spec.name}_{self._counter:04d}{ext}"
        defect = self._sample_defect()
        source = self._inject(source, defect)
        test = TestFile(
            name=name,
            language=self.language,
            model=self.flavor,
            source=source,
            template=spec.name,
            features=spec.features,
        )
        return CandidateTest(
            test=test,
            target_feature=feature_ident,
            defect=defect,
            prompt=self.build_prompt(feature_ident),
        )

    def generate_batch(self, feature_ident: str, count: int) -> list[CandidateTest]:
        return [self.generate(feature_ident) for _ in range(count)]

    # ------------------------------------------------------------------

    def _pick_template(self, feature_ident: str) -> TemplateSpec:
        pool = templates_for(self.flavor, self.language)
        matching = [spec for spec in pool if feature_ident in spec.features]
        if matching:
            return self._rng.choice(matching)
        # the model improvises with the nearest pattern it knows
        return self._rng.choice(pool)

    def _sample_defect(self) -> GenerationDefect:
        roll = self._rng.random()
        cumulative = 0.0
        for defect, rate in self.defect_rates.items():
            cumulative += rate
            if roll < cumulative:
                return defect
        return GenerationDefect.NONE

    def _inject(self, source: str, defect: GenerationDefect) -> str:
        try:
            if defect is GenerationDefect.COMPILE_SYNTAX:
                if self._rng.random() < 0.5:
                    return OpeningBracketMutator().mutate_c(source, self._rng)
                return DirectiveOrAllocationMutator().mutate_c(source, self._rng)
            if defect is GenerationDefect.COMPILE_SEMANTIC:
                return UndeclaredVariableMutator().mutate_c(source, self._rng)
            if defect is GenerationDefect.RUNTIME:
                return self._break_at_runtime(source)
            if defect is GenerationDefect.MISSING_VERIFICATION:
                return LastSectionMutator().mutate_c(source, self._rng)
        except MutationError:
            return source  # pattern not injectable here: candidate stays clean
        return source

    def _break_at_runtime(self, source: str) -> str:
        """Make the test compile but fail when run.

        Preferred: corrupt the expected-value computation so the
        self-check trips (the most common real LLM failure: plausible
        code, wrong reference).  Fallback: drop an allocation.
        """
        for wrong, right in (("expected[i] =", "expected[i] = 1.0 +"),
                             ("ref[i] =", "ref[i] = 1.0 +"),
                             ("expected +=", "expected += 1.0 +"),
                             ("expected =", "expected = 1.0 +")):
            if wrong in source:
                return source.replace(wrong, right, 1)
        import re

        broken = re.sub(
            r"=\s*\([A-Za-z_][\w ]*\*+\s*\)\s*malloc\s*\([^;]*\)\s*;", ";", source, count=1
        )
        return broken
