"""Automated suite construction: generate → validate → accept.

``AutomatedSuiteBuilder`` is the closed loop the LLM4VV project aims
for: a generation model proposes candidate tests per catalog feature,
the validation pipeline (the paper's contribution) filters them, and
the accepted suite ships with yield statistics and a coverage report —
no human in the loop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.validator import TestsuiteValidator
from repro.corpus.coverage import CoverageReport, measure_coverage
from repro.corpus.features import catalog
from repro.corpus.generator import TestFile
from repro.corpus.suite import TestSuite
from repro.generation.model import CandidateTest, CodeGenSim, GenerationDefect


@dataclass
class BuildReport:
    """Outcome of one automated build."""

    flavor: str
    candidates_total: int = 0
    accepted: list[TestFile] = field(default_factory=list)
    rejected_by_stage: Counter = field(default_factory=Counter)
    false_accepts: int = 0  # defective candidates the pipeline passed
    false_rejects: int = 0  # clean candidates the pipeline rejected
    defects_seen: Counter = field(default_factory=Counter)

    @property
    def yield_fraction(self) -> float:
        return len(self.accepted) / self.candidates_total if self.candidates_total else 0.0

    def coverage(self) -> CoverageReport:
        return measure_coverage(self.flavor, self.accepted)

    def suite(self, name: str = "auto-generated") -> TestSuite:
        return TestSuite(name, self.flavor, list(self.accepted))

    def render(self) -> str:
        lines = [
            f"Automated build ({self.flavor}): {len(self.accepted)}/"
            f"{self.candidates_total} candidates accepted "
            f"({self.yield_fraction:.0%} yield)",
            f"  rejected by stage: {dict(self.rejected_by_stage)}",
            f"  defect mix generated: "
            f"{ {d.value: n for d, n in self.defects_seen.items()} }",
            f"  false accepts (defective but admitted): {self.false_accepts}",
            f"  false rejects (clean but rejected):     {self.false_rejects}",
        ]
        lines.append(self.coverage().render())
        return "\n".join(lines)


@dataclass
class AutomatedSuiteBuilder:
    """Drives candidate generation and pipeline filtering."""

    flavor: str = "acc"
    seed: int = 7
    candidates_per_feature: int = 2
    judge_kind: str = "direct"
    generator: CodeGenSim | None = None
    validator: TestsuiteValidator | None = None

    def __post_init__(self) -> None:
        if self.generator is None:
            self.generator = CodeGenSim(flavor=self.flavor, seed=self.seed)
        if self.validator is None:
            self.validator = TestsuiteValidator(
                flavor=self.flavor,
                judge_kind=self.judge_kind,
                early_exit=True,
                model_seed=self.seed,
            )

    # ------------------------------------------------------------------

    def build(self, feature_idents: list[str] | None = None) -> BuildReport:
        """Generate and validate candidates for each target feature."""
        assert self.generator is not None and self.validator is not None
        if feature_idents is None:
            feature_idents = sorted(catalog(self.flavor))
        candidates: list[CandidateTest] = []
        for ident in feature_idents:
            candidates.extend(
                self.generator.generate_batch(ident, self.candidates_per_feature)
            )
        report = BuildReport(flavor=self.flavor, candidates_total=len(candidates))
        for candidate in candidates:
            report.defects_seen[candidate.defect] += 1

        validation = self.validator.validate([c.test for c in candidates])
        by_name = {judged.name: judged for judged in validation.files}
        for candidate in candidates:
            judged = by_name[candidate.test.name]
            if judged.is_valid:
                report.accepted.append(candidate.test)
                if not candidate.truly_valid:
                    report.false_accepts += 1
            else:
                report.rejected_by_stage[judged.stage] += 1
                if candidate.truly_valid:
                    report.false_rejects += 1
        return report
