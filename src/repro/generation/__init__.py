"""Automated compiler-test generation with LLMJ filtering (extension).

The paper's conclusion names "automation of compiler test generation
based on lessons learnt" as future work, building on the authors' prior
LLM4VV generation study (arXiv:2310.04963).  This package closes that
loop with the pieces this repository already has:

* :class:`~repro.generation.model.CodeGenSim` — a simulated
  code-generation model: prompted with a target feature, it emits a
  candidate compiler test with the *defect profile* the prior study
  measured (a configurable fraction of candidates fail to compile,
  fail at run time, or silently lack verification logic);
* :class:`~repro.generation.builder.AutomatedSuiteBuilder` — drives
  generation per catalog feature, pushes every candidate through the
  validation pipeline (the paper's method), and assembles the accepted
  suite with yield and coverage reporting.
"""

from repro.generation.builder import AutomatedSuiteBuilder, BuildReport
from repro.generation.model import CandidateTest, CodeGenSim, GenerationDefect

__all__ = [
    "AutomatedSuiteBuilder",
    "BuildReport",
    "CandidateTest",
    "CodeGenSim",
    "GenerationDefect",
]
