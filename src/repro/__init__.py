"""LLM4VV reproduction: LLM-as-a-Judge for compiler V&V testsuites.

Public API (see README for the tour):

* :class:`repro.core.TestsuiteValidator` — the paper's end product: a
  compile → execute → LLM-judge validation pipeline behind one call;
* :mod:`repro.corpus` — synthetic OpenACC/OpenMP V&V test generation;
* :mod:`repro.probing` — negative probing (the five issue types);
* :mod:`repro.compiler` / :mod:`repro.runtime` — the simulated
  toolchain and execution substrate;
* :mod:`repro.llm` / :mod:`repro.judge` — the simulated
  deepseek-coder-33B judge and the three prompting strategies;
* :mod:`repro.pipeline` — the staged, parallel validation pipeline;
* :mod:`repro.metrics` — per-issue accuracy, overall accuracy, bias;
* :mod:`repro.experiments` — regenerate every table and figure;
* :mod:`repro.service` — the validation daemon (HTTP, micro-batched
  admission) and its client;
* :mod:`repro.fuzz` — coverage-guided differential fuzzing campaigns
  over both execution backends.
"""

from repro.core import JudgedFile, TestsuiteValidator, ValidationReport

__version__ = "1.0.0"

__all__ = ["TestsuiteValidator", "ValidationReport", "JudgedFile", "__version__"]
