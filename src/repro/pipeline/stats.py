"""Pipeline instrumentation: per-stage counters and timing.

Wall-clock timings measure the Python substrate; *simulated* time
additionally charges the LLM stage with the 33B service-rate cost model
so the early-exit ablation shows the effect the paper argues for
(skipping the judge for already-failed files).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class StageStats:
    """Counters for one stage, updated by its workers."""

    name: str
    processed: int = 0
    passed: int = 0
    failed: int = 0
    skipped: int = 0
    busy_seconds: float = 0.0
    simulated_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, passed: bool, busy: float, simulated: float = 0.0) -> None:
        with self._lock:
            self.processed += 1
            if passed:
                self.passed += 1
            else:
                self.failed += 1
            self.busy_seconds += busy
            self.simulated_seconds += simulated

    def record_skip(self) -> None:
        with self._lock:
            self.skipped += 1

    def merge(self, other: "StageStats") -> None:
        """Fold another shard's counters into this one (same stage name)."""
        with self._lock:
            self.processed += other.processed
            self.passed += other.passed
            self.failed += other.failed
            self.skipped += other.skipped
            self.busy_seconds += other.busy_seconds
            self.simulated_seconds += other.simulated_seconds

    # Locks cannot cross process boundaries; shard workers return their
    # stats by pickle, so drop the lock on the way out and mint a fresh
    # one on the way in.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "processed": self.processed,
                "passed": self.passed,
                "failed": self.failed,
                "skipped": self.skipped,
                "busy_seconds": round(self.busy_seconds, 4),
                "simulated_seconds": round(self.simulated_seconds, 4),
            }


@dataclass
class PipelineStats:
    """Whole-run statistics.

    The three canonical stages are first-class attributes; pipelines
    extended with additional stages (see ``ValidationPipeline.stages``)
    register their counters in ``extra`` so they surface through
    :attr:`stages` and :meth:`summary` like the built-ins.
    """

    compile: StageStats = field(default_factory=lambda: StageStats("compile"))
    execute: StageStats = field(default_factory=lambda: StageStats("execute"))
    judge: StageStats = field(default_factory=lambda: StageStats("judge"))
    extra: dict[str, StageStats] = field(default_factory=dict)
    wall_seconds: float = 0.0
    files_total: int = 0

    @property
    def stages(self) -> list[StageStats]:
        return [self.compile, self.execute, self.judge, *self.extra.values()]

    def merge(self, other: "PipelineStats") -> None:
        """Aggregate another run's (or shard's) stats into this one.

        Wall-clock seconds take the max, not the sum: shards run
        concurrently, so the fleet's wall time is the slowest shard's.
        Busy/simulated seconds still sum (they measure work done).
        """
        for stage in other.stages:
            self.for_stage(stage.name).merge(stage)
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.files_total += other.files_total

    def for_stage(self, name: str) -> StageStats:
        """The stats slot for ``name``, creating an extra slot if new."""
        for stage in (self.compile, self.execute, self.judge):
            if stage.name == name:
                return stage
        if name not in self.extra:
            self.extra[name] = StageStats(name)
        return self.extra[name]

    @property
    def throughput(self) -> float:
        """Files per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.files_total / self.wall_seconds

    @property
    def simulated_seconds(self) -> float:
        """Total simulated stage time (the GPU-bound judge dominates)."""
        return sum(stage.simulated_seconds for stage in self.stages)

    @property
    def judge_invocations_saved(self) -> int:
        """Files the early-exit policy kept away from the LLM."""
        return self.judge.skipped

    def summary(self) -> dict[str, object]:
        return {
            "files_total": self.files_total,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_files_per_second": round(self.throughput, 3),
            "simulated_seconds": round(self.simulated_seconds, 2),
            "judge_invocations_saved": self.judge_invocations_saved,
            "stages": {stage.name: stage.snapshot() for stage in self.stages},
        }
