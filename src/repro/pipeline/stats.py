"""Pipeline instrumentation: per-stage counters and timing.

Wall-clock timings measure the Python substrate; *simulated* time
additionally charges the LLM stage with the 33B service-rate cost model
so the early-exit ablation shows the effect the paper argues for
(skipping the judge for already-failed files).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class StageStats:
    """Counters for one stage, updated by its workers."""

    name: str
    processed: int = 0
    passed: int = 0
    failed: int = 0
    skipped: int = 0
    busy_seconds: float = 0.0
    simulated_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, passed: bool, busy: float, simulated: float = 0.0) -> None:
        with self._lock:
            self.processed += 1
            if passed:
                self.passed += 1
            else:
                self.failed += 1
            self.busy_seconds += busy
            self.simulated_seconds += simulated

    def record_skip(self) -> None:
        with self._lock:
            self.skipped += 1

    def merge(self, other: "StageStats") -> None:
        """Fold another shard's counters into this one (same stage name)."""
        with self._lock:
            self.processed += other.processed
            self.passed += other.passed
            self.failed += other.failed
            self.skipped += other.skipped
            self.busy_seconds += other.busy_seconds
            self.simulated_seconds += other.simulated_seconds

    # Locks cannot cross process boundaries; shard workers return their
    # stats by pickle, so drop the lock on the way out and mint a fresh
    # one on the way in.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "processed": self.processed,
                "passed": self.passed,
                "failed": self.failed,
                "skipped": self.skipped,
                "busy_seconds": round(self.busy_seconds, 4),
                "simulated_seconds": round(self.simulated_seconds, 4),
            }


@dataclass
class PipelineStats:
    """Whole-run statistics.

    The three canonical stages are first-class attributes; pipelines
    extended with additional stages (see ``ValidationPipeline.stages``)
    register their counters in ``extra`` so they surface through
    :attr:`stages` and :meth:`summary` like the built-ins.
    """

    compile: StageStats = field(default_factory=lambda: StageStats("compile"))
    execute: StageStats = field(default_factory=lambda: StageStats("execute"))
    judge: StageStats = field(default_factory=lambda: StageStats("judge"))
    extra: dict[str, StageStats] = field(default_factory=dict)
    wall_seconds: float = 0.0
    files_total: int = 0
    #: serialises merge() against snapshot() so an aggregate reader (the
    #: service's /v1/stats) never sees a batch half-folded-in
    _merge_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def stages(self) -> list[StageStats]:
        return [self.compile, self.execute, self.judge, *self.extra.values()]

    def merge(self, other: "PipelineStats", concurrent: bool = True) -> None:
        """Aggregate another run's (or shard's) stats into this one.

        With ``concurrent=True`` (shards racing each other) wall-clock
        seconds take the max — the fleet's wall time is the slowest
        shard's.  With ``concurrent=False`` (the service folding in
        one batch after another) walls sum, so derived throughput
        reflects the whole serving period, not the slowest batch.
        Busy/simulated seconds always sum (they measure work done).
        """
        with self._merge_lock:
            for stage in other.stages:
                self.for_stage(stage.name).merge(stage)
            if concurrent:
                self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
            else:
                self.wall_seconds += other.wall_seconds
            self.files_total += other.files_total

    # Like StageStats, the lock cannot cross process boundaries (shard
    # workers return PipelineStats by pickle): drop it on the way out,
    # mint a fresh one on the way in.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_merge_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._merge_lock = threading.Lock()

    def for_stage(self, name: str) -> StageStats:
        """The stats slot for ``name``, creating an extra slot if new."""
        for stage in (self.compile, self.execute, self.judge):
            if stage.name == name:
                return stage
        if name not in self.extra:
            self.extra[name] = StageStats(name)
        return self.extra[name]

    @property
    def throughput(self) -> float:
        """Files per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.files_total / self.wall_seconds

    @property
    def simulated_seconds(self) -> float:
        """Total simulated stage time (the GPU-bound judge dominates)."""
        return sum(stage.simulated_seconds for stage in self.stages)

    @property
    def judge_invocations_saved(self) -> int:
        """Files the early-exit policy kept away from the LLM."""
        return self.judge.skipped

    def snapshot(self) -> dict[str, object]:
        """One consistent copy of every counter.

        Each stage's counters are copied under that stage's lock, the
        whole copy is serialised against :meth:`merge` (so an aggregate
        reader like the service's ``/v1/stats`` never sees a batch
        half-folded-in), and every derived figure (throughput,
        simulated totals, judge savings) is computed from the copies —
        never from counters read at two different instants.
        """
        with self._merge_lock:
            stages = {stage.name: stage.snapshot() for stage in self.stages}
            wall = self.wall_seconds
            files = self.files_total
        simulated = sum(snap["simulated_seconds"] for snap in stages.values())
        judge = stages.get("judge", {})
        return {
            "files_total": files,
            "wall_seconds": round(wall, 4),
            "throughput_files_per_second": (
                round(files / wall, 3) if wall > 0 else 0.0
            ),
            "simulated_seconds": round(simulated, 2),
            "judge_invocations_saved": judge.get("skipped", 0),
            "stages": stages,
        }

    def summary(self) -> dict[str, object]:
        return self.snapshot()
